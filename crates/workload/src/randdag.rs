//! Random derivation nets for planner scaling experiments (Exp Q2).
//!
//! Layered DAGs: layer 0 holds base places, each subsequent layer holds
//! derived places produced by one or more alternative transitions drawing
//! inputs (with thresholds) from the previous layer. Shapes are controlled
//! by depth/width/alternatives so benchmarks can sweep the parameters the
//! paper's schema would grow along (classes, processes per class, input
//! fan-in).

use gaea_petri::{Marking, PetriNet, PlaceId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Shape parameters for a random derivation net.
#[derive(Debug, Clone, Copy)]
pub struct RandDagSpec {
    /// Number of derived layers (≥ 1).
    pub depth: usize,
    /// Places per layer.
    pub width: usize,
    /// Alternative producing transitions per derived place.
    pub alternatives: usize,
    /// Maximum inputs per transition (drawn 1..=fan_in).
    pub fan_in: usize,
    /// Maximum arc threshold (drawn 1..=threshold_max).
    pub threshold_max: u64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for RandDagSpec {
    fn default() -> RandDagSpec {
        RandDagSpec {
            depth: 4,
            width: 4,
            alternatives: 2,
            fan_in: 3,
            threshold_max: 2,
            seed: 0x6AEA,
        }
    }
}

/// A generated net: base places, per-layer places, and the goal place
/// (first place of the last layer).
#[derive(Debug, Clone)]
pub struct RandomDerivation {
    /// The net.
    pub net: PetriNet,
    /// Base (layer 0) places.
    pub base: Vec<PlaceId>,
    /// All layers including layer 0.
    pub layers: Vec<Vec<PlaceId>>,
    /// The canonical goal.
    pub goal: PlaceId,
}

impl RandomDerivation {
    /// Marking with `tokens` objects in every base place.
    pub fn base_marking(&self, tokens: u64) -> Marking {
        let pairs: Vec<(PlaceId, u64)> = self.base.iter().map(|p| (*p, tokens)).collect();
        Marking::from_counts(&self.net, &pairs)
    }
}

/// Generate a random layered derivation net.
pub fn random_derivation_catalog(spec: RandDagSpec) -> RandomDerivation {
    assert!(spec.depth >= 1 && spec.width >= 1, "degenerate spec");
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut net = PetriNet::new();
    let mut layers: Vec<Vec<PlaceId>> = Vec::with_capacity(spec.depth + 1);
    let base: Vec<PlaceId> = (0..spec.width)
        .map(|i| net.add_base_place(&format!("base_{i}")))
        .collect();
    layers.push(base.clone());
    for layer in 1..=spec.depth {
        let places: Vec<PlaceId> = (0..spec.width)
            .map(|i| net.add_place(&format!("derived_{layer}_{i}")))
            .collect();
        for (i, place) in places.iter().enumerate() {
            for alt in 0..spec.alternatives.max(1) {
                let prev = &layers[layer - 1];
                let n_inputs = rng.gen_range(1..=spec.fan_in.min(prev.len()));
                // Sample distinct input places from the previous layer.
                let mut pool: Vec<PlaceId> = prev.clone();
                let mut inputs = Vec::with_capacity(n_inputs);
                for _ in 0..n_inputs {
                    let k = rng.gen_range(0..pool.len());
                    let p = pool.swap_remove(k);
                    let threshold = rng.gen_range(1..=spec.threshold_max.max(1));
                    inputs.push((p, threshold));
                }
                net.add_transition(&format!("proc_{layer}_{i}_{alt}"), &inputs, &[*place])
                    .expect("layered construction is well-formed");
            }
        }
        layers.push(places);
    }
    let goal = layers[spec.depth][0];
    RandomDerivation {
        net,
        base,
        layers,
        goal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaea_petri::backward::plan_derivation;
    use gaea_petri::reachability::derivable;

    #[test]
    fn generation_shape() {
        let spec = RandDagSpec {
            depth: 3,
            width: 4,
            alternatives: 2,
            ..RandDagSpec::default()
        };
        let rd = random_derivation_catalog(spec);
        assert_eq!(rd.net.place_count(), 4 * 4); // 3 derived layers + base
        assert_eq!(rd.net.transition_count(), 3 * 4 * 2);
        assert_eq!(rd.layers.len(), 4);
        assert!(rd.net.place(rd.base[0]).unwrap().is_base);
        assert!(!rd.net.place(rd.goal).unwrap().is_base);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = random_derivation_catalog(RandDagSpec::default());
        let b = random_derivation_catalog(RandDagSpec::default());
        assert_eq!(a.net.to_string(), b.net.to_string());
    }

    #[test]
    fn fully_stocked_bases_make_goal_derivable() {
        // With threshold_max tokens in every base place, every layer-1
        // transition is enabled, hence by induction everything saturates.
        let spec = RandDagSpec::default();
        let rd = random_derivation_catalog(spec);
        let marking = rd.base_marking(spec.threshold_max);
        let target = Marking::from_counts(&rd.net, &[(rd.goal, 1)]);
        assert!(derivable(&rd.net, &marking, &target));
        let plan = plan_derivation(&rd.net, &marking, rd.goal, 1).unwrap();
        assert!(plan.cost() >= 1);
        let end = plan.execute(&rd.net, &marking);
        assert!(end.get(rd.goal) >= 1);
    }

    #[test]
    fn empty_bases_make_goal_underivable() {
        let rd = random_derivation_catalog(RandDagSpec::default());
        let marking = rd.base_marking(0);
        let err = plan_derivation(&rd.net, &marking, rd.goal, 1).unwrap_err();
        assert!(!err.missing_base.is_empty());
    }

    #[test]
    fn plans_scale_with_depth() {
        let shallow = random_derivation_catalog(RandDagSpec {
            depth: 2,
            ..RandDagSpec::default()
        });
        let deep = random_derivation_catalog(RandDagSpec {
            depth: 8,
            ..RandDagSpec::default()
        });
        let ps = plan_derivation(&shallow.net, &shallow.base_marking(2), shallow.goal, 1).unwrap();
        let pd = plan_derivation(&deep.net, &deep.base_marking(2), deep.goal, 1).unwrap();
        assert!(pd.cost() >= ps.cost(), "deeper nets need longer plans");
    }
}
