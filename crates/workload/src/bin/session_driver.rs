//! `session-driver` — hammer a running `gaea-server` with K concurrent
//! reader sessions and print a JSON latency/error report.
//!
//! ```text
//! session-driver --addr 127.0.0.1:7878 --sessions 16 --reads 50
//! session-driver --addr … --writer            # readers race a writer
//! session-driver --addr … --shutdown          # …then stop the server
//! ```
//!
//! Exit status: 0 when every statement succeeded, 1 when any errored —
//! CI's `server` job treats a nonzero exit (or a nonzero `"errors"`
//! field) as a broken concurrency seam. With `--shutdown` the driver
//! sends a graceful `Shutdown` over the wire after the run, so a shell
//! script can wait for the server process and inspect its exit status.

use gaea_workload::driver::{drive, DriveSpec};
use std::process::ExitCode;

fn parse_args() -> Result<(DriveSpec, bool), String> {
    let mut spec = DriveSpec::default();
    let mut shutdown = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => spec.addr = value("--addr")?,
            "--sessions" => {
                spec.sessions = value("--sessions")?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?
            }
            "--reads" => {
                spec.reads_per_session = value("--reads")?
                    .parse()
                    .map_err(|e| format!("--reads: {e}"))?
            }
            "--query" => spec.query = value("--query")?,
            "--writer" => spec.writer = true,
            "--writer-class" => spec.writer_class = value("--writer-class")?,
            "--shutdown" => shutdown = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok((spec, shutdown))
}

fn main() -> ExitCode {
    let (spec, shutdown) = match parse_args() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("session-driver: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = drive(&spec);
    println!("{}", report.to_json());
    let mut code = ExitCode::SUCCESS;
    if report.errors > 0 || report.reads == 0 {
        eprintln!(
            "session-driver: {} errors across {} reads",
            report.errors, report.reads
        );
        code = ExitCode::FAILURE;
    }
    if shutdown {
        let stop = gaea_server::Client::connect(&spec.addr, "driver-shutdown")
            .and_then(|c| c.shutdown_server());
        if let Err(e) = stop {
            eprintln!("session-driver: shutdown request failed: {e}");
            code = ExitCode::FAILURE;
        }
    }
    code
}
