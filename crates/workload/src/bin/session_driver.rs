//! `session-driver` — hammer a running `gaea-server` with K concurrent
//! reader sessions and print a JSON latency/error report.
//!
//! ```text
//! session-driver --addr 127.0.0.1:7878 --sessions 16 --reads 50
//! session-driver --addr … --writer            # readers race a writer
//! session-driver --addr … --shutdown          # …then stop the server
//! session-driver --addr … --stats             # print live server stats
//! ```
//!
//! Exit status: 0 when every statement succeeded, 1 when any errored —
//! CI's `server` job treats a nonzero exit (or a nonzero `"errors"`
//! field) as a broken concurrency seam. With `--shutdown` the driver
//! sends a graceful `Shutdown` over the wire after the run, so a shell
//! script can wait for the server process and inspect its exit status.

use gaea_workload::driver::{drive, DriveSpec};
use std::process::ExitCode;

fn parse_args() -> Result<(DriveSpec, bool, bool), String> {
    let mut spec = DriveSpec::default();
    let mut shutdown = false;
    let mut stats_only = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => spec.addr = value("--addr")?,
            "--sessions" => {
                spec.sessions = value("--sessions")?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?
            }
            "--reads" => {
                spec.reads_per_session = value("--reads")?
                    .parse()
                    .map_err(|e| format!("--reads: {e}"))?
            }
            "--query" => spec.query = value("--query")?,
            "--writer" => spec.writer = true,
            "--writer-class" => spec.writer_class = value("--writer-class")?,
            "--shutdown" => shutdown = true,
            "--stats" => stats_only = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok((spec, shutdown, stats_only))
}

/// `--stats`: one `Stats` round-trip, printed as sorted `key: value`
/// lines (server counters first, then the process-wide metrics
/// snapshot) so shell scripts can grep single keys.
fn print_stats(addr: &str) -> Result<(), gaea_server::ClientError> {
    let mut c = gaea_server::Client::connect(addr, "driver-stats")?;
    let s = c.stats()?;
    println!("clock: {}", s.clock);
    println!("protocol_errors: {}", s.protocol_errors);
    println!("reads_pinned: {}", s.reads_pinned);
    println!("sessions_live: {}", s.sessions_live);
    println!("sessions_opened: {}", s.sessions_opened);
    println!("sessions_refused: {}", s.sessions_refused);
    println!("writes_serialized: {}", s.writes_serialized);
    for (k, v) in &s.metrics {
        println!("{k}: {v}");
    }
    let _ = c.goodbye();
    Ok(())
}

fn main() -> ExitCode {
    let (spec, shutdown, stats_only) = match parse_args() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("session-driver: {e}");
            return ExitCode::FAILURE;
        }
    };
    if stats_only {
        return match print_stats(&spec.addr) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("session-driver: stats request failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let report = drive(&spec);
    println!("{}", report.to_json());
    let mut code = ExitCode::SUCCESS;
    if report.errors > 0 || report.reads == 0 {
        eprintln!(
            "session-driver: {} errors across {} reads",
            report.errors, report.reads
        );
        code = ExitCode::FAILURE;
    }
    if shutdown {
        let stop = gaea_server::Client::connect(&spec.addr, "driver-shutdown")
            .and_then(|c| c.shutdown_server());
        if let Err(e) = stop {
            eprintln!("session-driver: shutdown request failed: {e}");
            code = ExitCode::FAILURE;
        }
    }
    code
}
