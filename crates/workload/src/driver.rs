//! The K-concurrent-session driver: hammer a running `gaea-server` with
//! parallel reader sessions (optionally racing a continuous writer) and
//! report latency percentiles, throughput, and error counts.
//!
//! This is the measurement half of the multi-session tentpole: the
//! server claims snapshot-pinned reads never block behind the commit
//! path, and the driver is what checks it — run once with the writer
//! off and once with it on; reader p99 should barely move. The
//! `q12_server` bench and the CI `server` job both run on this module,
//! and the `session_driver` binary exposes it on the command line.

use gaea_server::{Client, ClientError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One driver run's shape.
#[derive(Debug, Clone)]
pub struct DriveSpec {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent reader sessions.
    pub sessions: usize,
    /// Statements per reader session.
    pub reads_per_session: usize,
    /// The `RETRIEVE` statement every reader issues.
    pub query: String,
    /// Run a continuous writer session alongside the readers, inserting
    /// into `writer_class` until the readers finish.
    pub writer: bool,
    /// Class the writer inserts into (attribute `v = int4`).
    pub writer_class: String,
}

impl Default for DriveSpec {
    fn default() -> DriveSpec {
        DriveSpec {
            addr: "127.0.0.1:7878".into(),
            sessions: 16,
            reads_per_session: 50,
            query: "RETRIEVE * FROM obs".into(),
            writer: false,
            writer_class: "obs".into(),
        }
    }
}

/// What a driver run measured.
#[derive(Debug, Clone)]
pub struct DriveReport {
    /// Reader sessions that ran.
    pub sessions: usize,
    /// Successful reads across all sessions.
    pub reads: u64,
    /// Failed statements (kernel or transport) across all sessions.
    pub errors: u64,
    /// Writer commits completed while the readers ran (0 with the
    /// writer off).
    pub writes: u64,
    /// Median read latency.
    pub p50: Duration,
    /// 99th-percentile read latency.
    pub p99: Duration,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
}

impl DriveReport {
    /// Reads per second over the run.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.reads as f64 / secs
        } else {
            0.0
        }
    }

    /// The report as one JSON object (the driver binary's output).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"sessions\":{},\"reads\":{},\"errors\":{},\"writes\":{},\
             \"p50_us\":{},\"p99_us\":{},\"elapsed_ms\":{},\"reads_per_sec\":{:.1}}}",
            self.sessions,
            self.reads,
            self.errors,
            self.writes,
            self.p50.as_micros(),
            self.p99.as_micros(),
            self.elapsed.as_millis(),
            self.throughput(),
        )
    }
}

/// Percentile over a sorted slice (nearest-rank).
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Run the driver against a live server. Connects `spec.sessions`
/// reader sessions (plus one writer when asked), runs them all
/// concurrently, and aggregates.
pub fn drive(spec: &DriveSpec) -> DriveReport {
    let errors = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));
    let stop_writer = Arc::new(AtomicBool::new(false));
    let started = Instant::now();

    let writer_handle = if spec.writer {
        let addr = spec.addr.clone();
        let class = spec.writer_class.clone();
        let stop = Arc::clone(&stop_writer);
        let writes = Arc::clone(&writes);
        let errors = Arc::clone(&errors);
        Some(std::thread::spawn(move || {
            let mut c = match Client::connect(&addr, "driver-writer") {
                Ok(c) => c,
                Err(_) => {
                    errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            };
            // One insert, then a continuous update stream against it:
            // every iteration is a full serialized commit (version bump,
            // WAL record, invalidation sweep) but the store — and with
            // it the readers' scan and snapshot-copy cost — stays a
            // constant size, so the interference measured is the commit
            // path itself, not an ever-growing table.
            let target = match c.insert(&class, vec![("v".into(), gaea_adt::Value::Int4(0))]) {
                Ok(oid) => {
                    writes.fetch_add(1, Ordering::Relaxed);
                    oid
                }
                Err(_) => {
                    errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            };
            let mut v: i32 = 1;
            while !stop.load(Ordering::Acquire) {
                match c.update(target, vec![("v".into(), gaea_adt::Value::Int4(v))]) {
                    Ok(()) => {
                        writes.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(ClientError::Server(_)) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                v = v.wrapping_add(1);
            }
            let _ = c.goodbye();
        }))
    } else {
        None
    };

    let readers: Vec<_> = (0..spec.sessions)
        .map(|i| {
            let addr = spec.addr.clone();
            let query = spec.query.clone();
            let n = spec.reads_per_session;
            let errors = Arc::clone(&errors);
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(n);
                let mut c = match Client::connect(&addr, &format!("driver-reader-{i}")) {
                    Ok(c) => c,
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        return latencies;
                    }
                };
                for _ in 0..n {
                    let t0 = Instant::now();
                    match c.retrieve(&query) {
                        Ok(_) => latencies.push(t0.elapsed()),
                        Err(ClientError::Server(_)) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            return latencies;
                        }
                    }
                }
                let _ = c.goodbye();
                latencies
            })
        })
        .collect();

    let mut all: Vec<Duration> = Vec::new();
    for r in readers {
        all.extend(r.join().unwrap_or_default());
    }
    stop_writer.store(true, Ordering::Release);
    if let Some(w) = writer_handle {
        let _ = w.join();
    }

    all.sort_unstable();
    DriveReport {
        sessions: spec.sessions,
        reads: all.len() as u64,
        errors: errors.load(Ordering::Relaxed),
        writes: writes.load(Ordering::Relaxed),
        p50: percentile(&all, 50.0),
        p99: percentile(&all, 99.0),
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        assert_eq!(percentile(&sorted, 50.0), Duration::from_micros(50));
        assert_eq!(percentile(&sorted, 99.0), Duration::from_micros(99));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
        let one = [Duration::from_micros(7)];
        assert_eq!(percentile(&one, 99.0), Duration::from_micros(7));
    }

    #[test]
    fn report_json_is_well_formed() {
        let r = DriveReport {
            sessions: 4,
            reads: 100,
            errors: 0,
            writes: 12,
            p50: Duration::from_micros(250),
            p99: Duration::from_micros(900),
            elapsed: Duration::from_millis(50),
        };
        let json = r.to_json();
        assert!(json.contains("\"sessions\":4"));
        assert!(json.contains("\"p99_us\":900"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
