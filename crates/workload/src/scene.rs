//! Synthetic multi-band satellite scenes with known ground truth.
//!
//! A scene is generated from a hidden land-cover map (spatially coherent
//! patches produced by seeded Voronoi growth) plus per-class spectral
//! signatures per band and additive noise. Because the ground truth is
//! known, tests can *score* classification output rather than eyeball it.

use gaea_adt::{GeoBox, Image, PixType};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic scene.
#[derive(Debug, Clone)]
pub struct SceneSpec {
    /// Raster rows.
    pub rows: u32,
    /// Raster columns.
    pub cols: u32,
    /// Number of spectral bands (Landsat TM has 7; 3 suffices for P20).
    pub bands: usize,
    /// Number of latent land-cover classes.
    pub classes: usize,
    /// Noise standard deviation added to each signature.
    pub noise: f64,
    /// PRNG seed.
    pub seed: u64,
    /// Spatial extent attached to the scene.
    pub extent: GeoBox,
}

impl SceneSpec {
    /// A small default scene over the paper's Africa window.
    pub fn small(seed: u64) -> SceneSpec {
        SceneSpec {
            rows: 32,
            cols: 32,
            bands: 3,
            classes: 4,
            noise: 2.0,
            seed,
            extent: GeoBox::new(-20.0, -35.0, 55.0, 38.0),
        }
    }

    /// Scale rows/cols.
    pub fn sized(mut self, rows: u32, cols: u32) -> SceneSpec {
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Set band count.
    pub fn with_bands(mut self, bands: usize) -> SceneSpec {
        self.bands = bands;
        self
    }
}

/// A generated scene: bands plus the hidden truth map.
#[derive(Debug, Clone)]
pub struct SyntheticScene {
    /// One image per band, co-registered.
    pub bands: Vec<Image>,
    /// Ground-truth class of each pixel.
    pub truth: Vec<u8>,
    /// The spec used.
    pub spec: SceneSpec,
}

impl SyntheticScene {
    /// Generate a scene deterministically from its spec.
    pub fn generate(spec: SceneSpec) -> SyntheticScene {
        let mut rng = SmallRng::seed_from_u64(spec.seed);
        let npix = spec.rows as usize * spec.cols as usize;
        // Spatially coherent truth map: nearest of `classes` seed points
        // (a Voronoi tessellation), which mimics land-cover patchiness.
        let seeds: Vec<(f64, f64, u8)> = (0..spec.classes)
            .map(|c| {
                (
                    rng.gen::<f64>() * spec.rows as f64,
                    rng.gen::<f64>() * spec.cols as f64,
                    c as u8,
                )
            })
            .collect();
        let mut truth = vec![0u8; npix];
        for r in 0..spec.rows {
            for c in 0..spec.cols {
                let mut best = 0u8;
                let mut best_d = f64::INFINITY;
                for (sr, sc, class) in &seeds {
                    let d = (r as f64 - sr).powi(2) + (c as f64 - sc).powi(2);
                    if d < best_d {
                        best_d = d;
                        best = *class;
                    }
                }
                truth[r as usize * spec.cols as usize + c as usize] = best;
            }
        }
        // Spectral signatures: class × band means, well separated.
        let signatures: Vec<Vec<f64>> = (0..spec.classes)
            .map(|class| {
                (0..spec.bands)
                    .map(|band| {
                        40.0 + 35.0 * class as f64 + 12.0 * band as f64 + rng.gen::<f64>() * 6.0
                    })
                    .collect()
            })
            .collect();
        // Bands: signature + Gaussian-ish noise (sum of uniforms).
        let mut bands = Vec::with_capacity(spec.bands);
        // `band` indexes the *inner* signature dimension while the outer
        // index varies per pixel, so there is no container to iterate.
        #[allow(clippy::needless_range_loop)]
        for band in 0..spec.bands {
            let mut data = vec![0.0f64; npix];
            for (p, d) in data.iter_mut().enumerate() {
                let noise: f64 = (0..4).map(|_| rng.gen::<f64>() - 0.5).sum::<f64>() * spec.noise;
                *d = signatures[truth[p] as usize][band] + noise;
            }
            bands.push(Image::from_f64(spec.rows, spec.cols, data).expect("sized by construction"));
        }
        SyntheticScene { bands, truth, spec }
    }

    /// Score a classification against ground truth: best-case accuracy
    /// under the optimal greedy label permutation (cluster labels are
    /// arbitrary).
    pub fn score(&self, labels: &Image) -> f64 {
        let npix = self.truth.len();
        assert_eq!(labels.len(), npix, "label map shape mismatch");
        let k_pred = labels
            .to_f64_vec()
            .iter()
            .fold(0usize, |m, v| m.max(*v as usize))
            + 1;
        let k_true = self.spec.classes;
        // Confusion counts.
        let mut counts = vec![vec![0usize; k_true]; k_pred];
        for p in 0..npix {
            counts[labels.get_flat(p) as usize][self.truth[p] as usize] += 1;
        }
        // Greedy assignment of predicted label → true class.
        let mut used = vec![false; k_true];
        let mut correct = 0usize;
        let mut order: Vec<usize> = (0..k_pred).collect();
        order.sort_by_key(|p| std::cmp::Reverse(counts[*p].iter().sum::<usize>()));
        for pred in order {
            let mut best_class = None;
            let mut best = 0usize;
            for class in 0..k_true {
                if !used[class] && counts[pred][class] > best {
                    best = counts[pred][class];
                    best_class = Some(class);
                }
            }
            if let Some(class) = best_class {
                used[class] = true;
                correct += best;
            }
        }
        correct as f64 / npix as f64
    }

    /// Cluster purity: each predicted label maps to its *majority* true
    /// class (many-to-one). The right measure when the classifier is run
    /// with more clusters than latent classes, as P20's k = 12 typically
    /// is: over-segmentation is not an error, impurity is.
    pub fn purity(&self, labels: &Image) -> f64 {
        let npix = self.truth.len();
        assert_eq!(labels.len(), npix, "label map shape mismatch");
        let k_pred = labels
            .to_f64_vec()
            .iter()
            .fold(0usize, |m, v| m.max(*v as usize))
            + 1;
        let mut counts = vec![vec![0usize; self.spec.classes]; k_pred];
        for p in 0..npix {
            counts[labels.get_flat(p) as usize][self.truth[p] as usize] += 1;
        }
        let correct: usize = counts
            .iter()
            .map(|row| row.iter().copied().max().unwrap_or(0))
            .sum();
        correct as f64 / npix as f64
    }

    /// Convenience: a `PixType::Float8` image of the truth map.
    pub fn truth_image(&self) -> Image {
        let data: Vec<f64> = self.truth.iter().map(|c| *c as f64).collect();
        Image::from_f64(self.spec.rows, self.spec.cols, data)
            .expect("sized by construction")
            .map(PixType::Char, |v| v)
    }

    /// The scripted scientist's training sites: up to `per_class` pixels of
    /// each ground-truth class, in raster order. This is what a human
    /// digitizing polygons over known terrain produces — the input to
    /// supervised classification's signature extraction (§4.3 interactive
    /// processes).
    pub fn training_sites(&self, per_class: usize) -> Vec<gaea_raster::TrainingSite> {
        let mut sites: Vec<gaea_raster::TrainingSite> = (0..self.spec.classes)
            .map(|c| gaea_raster::TrainingSite::new(c, vec![]))
            .collect();
        for (p, label) in self.truth.iter().enumerate() {
            let site = &mut sites[*label as usize];
            if site.pixels.len() < per_class {
                site.pixels.push(p);
            }
        }
        sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaea_raster::{composite, kmeans_classify};

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticScene::generate(SceneSpec::small(7));
        let b = SyntheticScene::generate(SceneSpec::small(7));
        assert_eq!(a.bands, b.bands);
        assert_eq!(a.truth, b.truth);
        let c = SyntheticScene::generate(SceneSpec::small(8));
        assert_ne!(a.bands, c.bands);
    }

    #[test]
    fn scene_shape_matches_spec() {
        let s = SyntheticScene::generate(SceneSpec::small(1).sized(16, 24).with_bands(5));
        assert_eq!(s.bands.len(), 5);
        assert_eq!(s.bands[0].nrow(), 16);
        assert_eq!(s.bands[0].ncol(), 24);
        assert_eq!(s.truth.len(), 16 * 24);
        assert!(s.truth.iter().all(|c| (*c as usize) < 4));
    }

    #[test]
    fn kmeans_recovers_the_latent_classes() {
        // The headline sanity check: unsupervised classification on the
        // synthetic scene recovers the ground truth to high accuracy —
        // evidence the substitution exercises the real algorithm.
        let s = SyntheticScene::generate(SceneSpec::small(42));
        let refs: Vec<&Image> = s.bands.iter().collect();
        let stack = composite(&refs).unwrap();
        let out = kmeans_classify(&stack, s.spec.classes, 100, 0x6AEA).unwrap();
        let acc = s.score(&out.labels);
        assert!(acc > 0.9, "classification accuracy {acc} too low");
    }

    #[test]
    fn score_is_1_on_truth_itself() {
        let s = SyntheticScene::generate(SceneSpec::small(3));
        let acc = s.score(&s.truth_image());
        assert!((acc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn training_sites_cover_every_class_and_respect_the_cap() {
        let s = SyntheticScene::generate(SceneSpec::small(9).sized(16, 16));
        let sites = s.training_sites(8);
        assert_eq!(sites.len(), s.spec.classes);
        for (c, site) in sites.iter().enumerate() {
            assert_eq!(site.class, c);
            assert!(!site.pixels.is_empty(), "class {c} untrained");
            assert!(site.pixels.len() <= 8);
            for &p in &site.pixels {
                assert_eq!(s.truth[p] as usize, c, "pixel {p} mislabeled");
            }
        }
        // Supervised classification from these sites recovers the truth.
        let refs: Vec<&Image> = s.bands.iter().collect();
        let stack = composite(&refs).unwrap();
        let sig = gaea_raster::signatures_from_training(&stack, s.spec.classes, &sites).unwrap();
        let out = gaea_raster::min_distance_classify(&stack, &sig).unwrap();
        assert!(s.score(&out.labels) > 0.9);
    }
}
