//! # gaea-workload — synthetic data and schema generators
//!
//! The paper evaluates on Landsat TM / AVHRR imagery we cannot ship.
//! This crate provides the substitution documented in DESIGN.md: seeded
//! synthetic scenes whose spectral structure exercises the same code paths
//! (per-pixel band vectors with class signatures + spatially correlated
//! noise), NDVI time series with seasonal structure, rainfall grids for the
//! desert examples, the full Figure 2 schema, and random derivation DAGs
//! for planner scaling experiments.

pub mod driver;
pub mod figure2;
pub mod randdag;
pub mod scene;
pub mod series;

pub use driver::{drive, DriveReport, DriveSpec};
pub use figure2::build_figure2_schema;
pub use randdag::{random_derivation_catalog, RandDagSpec};
pub use scene::{SceneSpec, SyntheticScene};
pub use series::ndvi_series;
