//! The Figure 2 schema, built programmatically.
//!
//! Figure 2 shows the three semantic layers over a concrete global-change
//! schema: the desert concept hierarchy (hot trade-wind deserts defined by
//! rainfall thresholds, ice/snow deserts by polar temperature), NDVI,
//! vegetation change derived alternatively by PCA (P7) and SPCA (P8),
//! Landsat TM rectification, and the P20 classification of Figure 3.
//! This builder registers the whole structure into a kernel, including the
//! paper's flagship parameter rule: the 250 mm and 200 mm desert processes
//! are *different processes* over the same concept.

use gaea_adt::TypeTag;
use gaea_core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea_core::template::{Expr, Mapping, Template};
use gaea_core::KernelResult;

/// Names registered by [`build_figure2_schema`].
#[derive(Debug, Clone)]
pub struct Figure2Names {
    /// Base classes.
    pub base_classes: Vec<&'static str>,
    /// Derived classes.
    pub derived_classes: Vec<&'static str>,
    /// Processes.
    pub processes: Vec<&'static str>,
    /// Concepts.
    pub concepts: Vec<&'static str>,
}

fn invariant_extents(source: &str) -> Vec<Mapping> {
    vec![
        Mapping {
            attr: "spatialextent".into(),
            expr: Expr::AnyOf(Box::new(Expr::proj(source, "spatialextent"))),
        },
        Mapping {
            attr: "timestamp".into(),
            expr: Expr::AnyOf(Box::new(Expr::proj(source, "timestamp"))),
        },
    ]
}

fn image_class(name: &str, doc: &str) -> ClassSpec {
    ClassSpec::base(name).attr("data", TypeTag::Image).doc(doc)
}

fn derived_image_class(name: &str, doc: &str) -> ClassSpec {
    ClassSpec::derived(name)
        .attr("data", TypeTag::Image)
        .doc(doc)
}

/// Register the Figure 2 schema into `gaea`.
pub fn build_figure2_schema(gaea: &mut Gaea) -> KernelResult<Figure2Names> {
    // ---------------- base classes (well-known external sources) ---------
    gaea.define_class(image_class("landsat_tm", "raw Landsat TM band (C0)"))?;
    gaea.define_class(image_class("rainfall", "annual rainfall grid, mm/year"))?;
    gaea.define_class(image_class(
        "temperature",
        "mean annual temperature grid, C",
    ))?;
    gaea.define_class(image_class("avhrr_nir", "AVHRR near-infrared composite"))?;
    gaea.define_class(image_class("avhrr_red", "AVHRR visible-red composite"))?;

    // ---------------- derived classes ------------------------------------
    gaea.define_class(derived_image_class(
        "rectified_tm",
        "geometrically rectified Landsat TM (C1)",
    ))?;
    gaea.define_class(
        derived_image_class("land_cover", "unsupervised land cover (C20)")
            .attr("numclass", TypeTag::Int4),
    )?;
    gaea.define_class(derived_image_class(
        "land_cover_changes",
        "land-cover change map (C21)",
    ))?;
    gaea.define_class(derived_image_class(
        "desert_rain_250",
        "desert mask: rainfall < 250 mm/year (C2)",
    ))?;
    gaea.define_class(derived_image_class(
        "desert_rain_200",
        "desert mask: rainfall < 200 mm/year (C3)",
    ))?;
    gaea.define_class(derived_image_class(
        "desert_arid",
        "desert mask via aridity screen (C4)",
    ))?;
    gaea.define_class(derived_image_class(
        "desert_consensus",
        "desert mask derived from other desert masks (C5)",
    ))?;
    gaea.define_class(derived_image_class(
        "ice_desert",
        "ice/snow desert mask: polar lands (C10)",
    ))?;
    gaea.define_class(derived_image_class("ndvi", "NDVI composite (C6)"))?;
    gaea.define_class(derived_image_class(
        "veg_change_pca",
        "vegetation change by PCA (C7)",
    ))?;
    gaea.define_class(derived_image_class(
        "veg_change_spca",
        "vegetation change by standardized PCA (C8)",
    ))?;

    // ---------------- processes ------------------------------------------
    // P1: rectification (Figure 5's 'Rectified Landsat TM').
    gaea.define_process(
        ProcessSpec::new("P1_rectify", "rectified_tm")
            .arg("raw", "landsat_tm")
            .template(Template {
                assertions: vec![],
                mappings: {
                    let mut m = vec![Mapping {
                        attr: "data".into(),
                        expr: Expr::apply(
                            "rectify_shift",
                            vec![
                                Expr::proj("raw", "data"),
                                Expr::float(0.5),
                                Expr::float(0.5),
                            ],
                        ),
                    }];
                    m.extend(invariant_extents("raw"));
                    m
                },
            })
            .doc("first-order geometric rectification"),
    )?;
    // P20: Figure 3's unsupervised classification, verbatim template.
    gaea.define_process(
        ProcessSpec::new("P20_unsupervised_classification", "land_cover")
            .setof_arg("bands", "rectified_tm", 3)
            .template(Template {
                assertions: vec![
                    Expr::eq(
                        Expr::Card(Box::new(Expr::Arg("bands".into()))),
                        Expr::int(3),
                    ),
                    Expr::Common(Box::new(Expr::proj("bands", "spatialextent"))),
                    Expr::Common(Box::new(Expr::proj("bands", "timestamp"))),
                ],
                mappings: {
                    let mut m = vec![
                        Mapping {
                            attr: "data".into(),
                            expr: Expr::apply(
                                "unsuperclassify",
                                vec![
                                    Expr::apply("composite", vec![Expr::Arg("bands".into())]),
                                    Expr::int(12),
                                ],
                            ),
                        },
                        Mapping {
                            attr: "numclass".into(),
                            expr: Expr::int(12),
                        },
                    ];
                    m.extend(invariant_extents("bands"));
                    m
                },
            })
            .doc("grouping of remotely sensed data into land cover classes (Figure 3)"),
    )?;
    // P21: land-cover change between two classifications.
    gaea.define_process(
        ProcessSpec::new("P21_change", "land_cover_changes")
            .arg("earlier", "land_cover")
            .arg("later", "land_cover")
            .template(Template {
                assertions: vec![],
                mappings: {
                    let mut m = vec![Mapping {
                        attr: "data".into(),
                        expr: Expr::apply(
                            "img_diff",
                            vec![Expr::proj("later", "data"), Expr::proj("earlier", "data")],
                        ),
                    }];
                    m.extend(invariant_extents("later"));
                    m
                },
            })
            .doc("land-cover change between two epochs (Figure 5 tail)"),
    )?;
    // P2 / P3: the parameter-distinct desert processes (§2.1.2: "one
    // scientist may choose [...] 250mm, while another one choses 200mm for
    // the same parameter. The same derivation method with different
    // parameters represents different processes.")
    for (pname, class, mm) in [
        ("P2_desert_250", "desert_rain_250", 250.0),
        ("P3_desert_200", "desert_rain_200", 200.0),
    ] {
        gaea.define_process(
            ProcessSpec::new(pname, class)
                .arg("rain", "rainfall")
                .template(Template {
                    assertions: vec![],
                    mappings: {
                        let mut m = vec![Mapping {
                            attr: "data".into(),
                            expr: Expr::apply(
                                "threshold_below",
                                vec![Expr::proj("rain", "data"), Expr::float(mm)],
                            ),
                        }];
                        m.extend(invariant_extents("rain"));
                        m
                    },
                })
                .doc("hot trade-wind desert by rainfall threshold"),
        )?;
    }
    // P4: an aridity screen combining rainfall and temperature.
    gaea.define_process(
        ProcessSpec::new("P4_arid", "desert_arid")
            .arg("rain", "rainfall")
            .arg("temp", "temperature")
            .template(Template {
                assertions: vec![],
                mappings: {
                    let mut m = vec![Mapping {
                        attr: "data".into(),
                        expr: Expr::apply(
                            "img_and",
                            vec![
                                Expr::apply(
                                    "threshold_below",
                                    vec![Expr::proj("rain", "data"), Expr::float(300.0)],
                                ),
                                Expr::apply(
                                    "threshold_below",
                                    vec![
                                        // hot: temperature NOT below 18 → invert via threshold
                                        Expr::apply(
                                            "img_scale",
                                            vec![Expr::proj("temp", "data"), Expr::float(-1.0)],
                                        ),
                                        Expr::float(-18.0),
                                    ],
                                ),
                            ],
                        ),
                    }];
                    m.extend(invariant_extents("rain"));
                    m
                },
            })
            .doc("aridity screen: dry AND hot"),
    )?;
    // P5: derives the desert concept from itself (the paper's example of a
    // process whose input class belongs to the same concept).
    gaea.define_process(
        ProcessSpec::new("P5_consensus", "desert_consensus")
            .setof_arg("masks", "desert_rain_250", 2)
            .template(Template {
                assertions: vec![
                    Expr::eq(
                        Expr::Card(Box::new(Expr::Arg("masks".into()))),
                        Expr::int(2),
                    ),
                    Expr::Common(Box::new(Expr::proj("masks", "spatialextent"))),
                ],
                mappings: {
                    let mut m = vec![Mapping {
                        attr: "data".into(),
                        expr: Expr::apply(
                            "img_and",
                            vec![
                                Expr::AnyOf(Box::new(Expr::Arg("masks".into()))),
                                // the other mask: anyof twice picks the same
                                // one, so AND the full stack pairwise via
                                // composite is overkill — use both members.
                                Expr::AnyOf(Box::new(Expr::Arg("masks".into()))),
                            ],
                        ),
                    }];
                    m.extend(invariant_extents("masks"));
                    m
                },
            })
            .doc("desert mask consensus across epochs (derives the concept from itself)"),
    )?;
    // P_ice: ice/snow deserts — polar lands (cold screen).
    gaea.define_process(
        ProcessSpec::new("P_ice", "ice_desert")
            .arg("temp", "temperature")
            .template(Template {
                assertions: vec![],
                mappings: {
                    let mut m = vec![Mapping {
                        attr: "data".into(),
                        expr: Expr::apply(
                            "threshold_below",
                            vec![Expr::proj("temp", "data"), Expr::float(-10.0)],
                        ),
                    }];
                    m.extend(invariant_extents("temp"));
                    m
                },
            })
            .doc("ice or snow deserts: polar lands such as Greenland and Antarctica"),
    )?;
    // P6: NDVI from AVHRR bands (§1 footnote 2).
    gaea.define_process(
        ProcessSpec::new("P6_ndvi", "ndvi")
            .arg("nir", "avhrr_nir")
            .arg("red", "avhrr_red")
            .template(Template {
                assertions: vec![],
                mappings: {
                    let mut m = vec![Mapping {
                        attr: "data".into(),
                        expr: Expr::apply(
                            "ndvi",
                            vec![Expr::proj("nir", "data"), Expr::proj("red", "data")],
                        ),
                    }];
                    m.extend(invariant_extents("nir"));
                    m
                },
            })
            .doc("normalized difference vegetation index"),
    )?;
    // P7 / P8: vegetation change by PCA vs SPCA (§2.1.3's Eastman
    // comparison — "the same conceptual outcome" by different derivations).
    for (pname, class, op) in [
        ("P7_pca_change", "veg_change_pca", "pca"),
        ("P8_spca_change", "veg_change_spca", "spca"),
    ] {
        gaea.define_process(
            ProcessSpec::new(pname, class)
                .setof_arg("series", "ndvi", 2)
                .template(Template {
                    assertions: vec![Expr::Common(Box::new(Expr::proj(
                        "series",
                        "spatialextent",
                    )))],
                    mappings: {
                        let mut m = vec![Mapping {
                            attr: "data".into(),
                            // First principal component of the time series
                            // stack carries the dominant change signal.
                            expr: Expr::AnyOf(Box::new(Expr::apply(
                                op,
                                vec![Expr::Arg("series".into())],
                            ))),
                        }];
                        m.extend(invariant_extents("series"));
                        m
                    },
                })
                .doc("time-series change via principal components"),
        )?;
    }

    // ---------------- concepts (the high-level layer) ---------------------
    gaea.define_concept(
        "remote_sensing_data",
        &["landsat_tm", "rectified_tm", "avhrr_nir", "avhrr_red"],
        &[],
        "remotely sensed imagery of any provenance",
    )?;
    gaea.define_concept(
        "desert",
        &[],
        &[],
        "an acceptable definition of a desert must consider precipitation, its \
         distribution, evaporation, mean temperature and radiation (Bender 1982)",
    )?;
    gaea.define_concept(
        "hot_trade_wind_desert",
        &[
            "desert_rain_250",
            "desert_rain_200",
            "desert_arid",
            "desert_consensus",
        ],
        &["desert"],
        "areas of high pressure with rainfall less than 250 mm/year",
    )?;
    gaea.define_concept(
        "ice_snow_desert",
        &["ice_desert"],
        &["desert"],
        "polar lands such as Greenland and Antarctica",
    )?;
    gaea.define_concept(
        "ndvi_concept",
        &["ndvi"],
        &[],
        "vegetation index however derived",
    )?;
    gaea.define_concept(
        "vegetation_change",
        &["veg_change_pca", "veg_change_spca"],
        &[],
        "change in vegetation between epochs, by any accepted derivation",
    )?;

    Ok(Figure2Names {
        base_classes: vec![
            "landsat_tm",
            "rainfall",
            "temperature",
            "avhrr_nir",
            "avhrr_red",
        ],
        derived_classes: vec![
            "rectified_tm",
            "land_cover",
            "land_cover_changes",
            "desert_rain_250",
            "desert_rain_200",
            "desert_arid",
            "desert_consensus",
            "ice_desert",
            "ndvi",
            "veg_change_pca",
            "veg_change_spca",
        ],
        processes: vec![
            "P1_rectify",
            "P20_unsupervised_classification",
            "P21_change",
            "P2_desert_250",
            "P3_desert_200",
            "P4_arid",
            "P5_consensus",
            "P_ice",
            "P6_ndvi",
            "P7_pca_change",
            "P8_spca_change",
        ],
        concepts: vec![
            "remote_sensing_data",
            "desert",
            "hot_trade_wind_desert",
            "ice_snow_desert",
            "ndvi_concept",
            "vegetation_change",
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_schema_registers_cleanly() {
        let mut g = Gaea::in_memory();
        let names = build_figure2_schema(&mut g).unwrap();
        for c in names.base_classes.iter().chain(&names.derived_classes) {
            assert!(g.catalog().class_by_name(c).is_ok(), "class {c}");
        }
        for p in &names.processes {
            assert!(g.catalog().process_by_name(p).is_ok(), "process {p}");
        }
        for c in &names.concepts {
            assert!(g.catalog().concept_by_name(c).is_ok(), "concept {c}");
        }
    }

    #[test]
    fn parameter_distinct_processes_are_distinct() {
        let mut g = Gaea::in_memory();
        build_figure2_schema(&mut g).unwrap();
        let p2 = g.catalog().process_by_name("P2_desert_250").unwrap();
        let p3 = g.catalog().process_by_name("P3_desert_200").unwrap();
        assert_ne!(p2.id, p3.id);
        assert_ne!(p2.template, p3.template, "templates differ in the constant");
        assert_ne!(p2.output, p3.output);
    }

    #[test]
    fn desert_isa_hierarchy() {
        let mut g = Gaea::in_memory();
        build_figure2_schema(&mut g).unwrap();
        let parents = g
            .catalog()
            .concept_ancestors("hot_trade_wind_desert")
            .unwrap();
        assert_eq!(parents.len(), 1);
        assert_eq!(parents[0].name, "desert");
        let desert_id = g.catalog().concept_by_name("desert").unwrap().id;
        let kids = g.catalog().concept_children(desert_id);
        assert_eq!(kids.len(), 2);
    }

    #[test]
    fn vegetation_change_has_two_alternative_producers() {
        // Figure 2's point: the concept maps to {C7, C8} with distinct
        // derivations.
        let mut g = Gaea::in_memory();
        build_figure2_schema(&mut g).unwrap();
        let members = g
            .catalog()
            .concept_member_classes("vegetation_change")
            .unwrap();
        assert_eq!(members.len(), 2);
        for m in members {
            assert_eq!(m.derived_by.len(), 1, "{} has one producer", m.name);
        }
        let dnet = g.derivation_net();
        // Both producers are transitions in the derivation diagram.
        assert!(dnet.net.transition_by_name("P7_pca_change").is_some());
        assert!(dnet.net.transition_by_name("P8_spca_change").is_some());
    }

    #[test]
    fn derivation_net_mirrors_figure2() {
        let mut g = Gaea::in_memory();
        let names = build_figure2_schema(&mut g).unwrap();
        let dnet = g.derivation_net();
        assert_eq!(
            dnet.net.place_count(),
            names.base_classes.len() + names.derived_classes.len()
        );
        assert_eq!(dnet.net.transition_count(), names.processes.len());
        // Base classes are base places.
        let tm = dnet.net.place_by_name("landsat_tm").unwrap();
        assert!(dnet.net.place(tm).unwrap().is_base);
        // P20's threshold came from card(bands) = 3.
        let p20 = dnet
            .net
            .transition_by_name("P20_unsupervised_classification")
            .unwrap();
        assert_eq!(dnet.net.transition(p20).unwrap().inputs[0].threshold, 3);
    }
}
