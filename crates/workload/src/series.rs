//! NDVI time series (the AVHRR substitution).
//!
//! Monthly NDVI composites with seasonal structure: per-pixel sinusoid with
//! spatially varying amplitude/phase, a linear greening/browning trend and
//! seeded noise. Used by the interpolation experiments (§2.1.5 step 2) and
//! the vegetation-change scenario (§1).

use gaea_adt::{AbsTime, Image};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate `months` monthly NDVI snapshots starting at `start`.
///
/// Returns `(timestamp, image)` pairs; values stay within [-1, 1].
pub fn ndvi_series(
    rows: u32,
    cols: u32,
    months: usize,
    start: AbsTime,
    trend_per_year: f64,
    seed: u64,
) -> Vec<(AbsTime, Image)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let npix = rows as usize * cols as usize;
    // Per-pixel parameters.
    let base: Vec<f64> = (0..npix).map(|_| 0.15 + rng.gen::<f64>() * 0.35).collect();
    let amp: Vec<f64> = (0..npix).map(|_| 0.05 + rng.gen::<f64>() * 0.25).collect();
    // Seasonality is spatially coherent (one growing season per region):
    // a shared phase with small per-pixel jitter. Fully random phases
    // would cancel in the spatial mean and erase the seasonal signal.
    let common_phase = rng.gen::<f64>() * std::f64::consts::TAU;
    let phase: Vec<f64> = (0..npix)
        .map(|_| common_phase + (rng.gen::<f64>() - 0.5) * 0.6)
        .collect();
    let mut out = Vec::with_capacity(months);
    for m in 0..months {
        let t = AbsTime(start.0 + (m as i64) * 30 * 86_400);
        let years = m as f64 / 12.0;
        let season = (m as f64 / 12.0) * std::f64::consts::TAU;
        let mut data = vec![0.0f64; npix];
        for (p, d) in data.iter_mut().enumerate() {
            let noise = (rng.gen::<f64>() - 0.5) * 0.02;
            *d = (base[p] + amp[p] * (season + phase[p]).sin() + trend_per_year * years + noise)
                .clamp(-1.0, 1.0);
        }
        out.push((
            t,
            Image::from_f64(rows, cols, data).expect("sized by construction"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaea_raster::stats::mean;

    fn start() -> AbsTime {
        AbsTime::from_ymd(1988, 1, 1).unwrap()
    }

    #[test]
    fn series_shape_and_determinism() {
        let a = ndvi_series(8, 8, 24, start(), 0.0, 9);
        assert_eq!(a.len(), 24);
        assert_eq!(a[0].1.nrow(), 8);
        // Monotone monthly timestamps.
        for w in a.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
        let b = ndvi_series(8, 8, 24, start(), 0.0, 9);
        assert_eq!(a[5].1, b[5].1);
    }

    #[test]
    fn values_stay_in_ndvi_range() {
        for (_, img) in ndvi_series(8, 8, 36, start(), 0.3, 2) {
            for i in 0..img.len() {
                let v = img.get_flat(i);
                assert!((-1.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn greening_trend_raises_annual_mean() {
        let series = ndvi_series(16, 16, 36, start(), 0.1, 4);
        let year1: f64 = series[..12].iter().map(|(_, i)| mean(i)).sum::<f64>() / 12.0;
        let year3: f64 = series[24..].iter().map(|(_, i)| mean(i)).sum::<f64>() / 12.0;
        assert!(
            year3 > year1 + 0.1,
            "greening trend not visible: {year1} vs {year3}"
        );
    }

    #[test]
    fn seasonality_is_present() {
        // Without trend, some months differ from others systematically.
        let series = ndvi_series(16, 16, 12, start(), 0.0, 11);
        let means: Vec<f64> = series.iter().map(|(_, i)| mean(i)).collect();
        let spread = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - means.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.01, "no seasonal spread: {spread}");
    }
}
