//! The structured span tracer: thread-local span stacks, RAII stage
//! guards, and a bounded ring of recent traces.
//!
//! A *trace* covers one statement (one `Gaea::query` / `ReadView::query`
//! call); *spans* are the stages inside it (plan, retrieve, bind, fire,
//! project, …). Guards are `Drop`-based, so a panicking stage unwinds
//! through its guard and the thread-local stack stays consistent — the
//! next statement on the thread starts from a clean slate.
//!
//! Finished traces land in a process-wide ring buffer holding the last
//! N traces whose total wall time meets the slow-trace threshold
//! (`GAEA_SLOW_QUERY_US`, default 0 = keep everything; ring capacity
//! `GAEA_TRACE_RING`, default 32). The server's `Trace` wire request
//! drains a copy of this ring for live inspection.

use crate::metrics::metrics;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// A closed span: stage name, nesting depth (1 = direct child of the
/// trace root), wall time, and any annotations attached while open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub name: &'static str,
    pub depth: u16,
    pub wall_us: u64,
    pub notes: Vec<(&'static str, String)>,
}

/// A finished trace: the root name, a free-form label (e.g. the target
/// class), total wall time, root-level annotations, and the closed
/// spans in completion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    pub root: &'static str,
    pub label: String,
    pub total_us: u64,
    pub notes: Vec<(&'static str, String)>,
    pub spans: Vec<SpanRecord>,
}

struct OpenSpan {
    name: &'static str,
    start: Instant,
    notes: Vec<(&'static str, String)>,
}

struct ActiveTrace {
    root: &'static str,
    label: String,
    start: Instant,
    notes: Vec<(&'static str, String)>,
    open: Vec<OpenSpan>,
    closed: Vec<SpanRecord>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Start a trace on this thread. If one is already active (a nested
/// statement, e.g. a refresh issued mid-query), the call degrades to a
/// plain span of the outer trace instead of resetting it.
pub fn start_trace(root: &'static str, label: impl Into<String>) -> TraceGuard {
    let nested = ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        if slot.is_some() {
            true
        } else {
            *slot = Some(ActiveTrace {
                root,
                label: label.into(),
                start: Instant::now(),
                notes: Vec::new(),
                open: Vec::new(),
                closed: Vec::new(),
            });
            false
        }
    });
    if nested {
        TraceGuard {
            inner: TraceGuardInner::Nested { _span: span(root) },
        }
    } else {
        TraceGuard {
            inner: TraceGuardInner::Root { finished: false },
        }
    }
}

enum TraceGuardInner {
    /// This guard owns the thread's active trace.
    Root { finished: bool },
    /// A trace was already active; this guard is just a span of it
    /// (held only for its Drop).
    Nested { _span: SpanGuard },
}

/// RAII handle for an active trace. [`TraceGuard::finish`] closes the
/// trace and returns it; plain `Drop` (e.g. on unwind) closes it
/// without returning it, still feeding the metrics and the ring.
pub struct TraceGuard {
    inner: TraceGuardInner,
}

impl TraceGuard {
    /// Close the trace and hand it back. Returns `None` when this guard
    /// was nested inside an outer trace (the outer one owns the data).
    pub fn finish(mut self) -> Option<Trace> {
        match &mut self.inner {
            TraceGuardInner::Root { finished } => {
                *finished = true;
                close_active()
            }
            TraceGuardInner::Nested { .. } => None,
        }
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let TraceGuardInner::Root { finished: false } = self.inner {
            // Unwind or early return: finalize so the thread-local slot
            // is clean for the next statement on this thread.
            let _ = close_active();
        }
    }
}

/// Finalize the thread's active trace: close any spans the unwind left
/// open, stamp the total, feed the query metrics, and retain the trace
/// in the ring when it meets the slow threshold.
fn close_active() -> Option<Trace> {
    let trace = ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        let mut t = slot.take()?;
        // Spans still open (a panic skipped their guards' pops in rare
        // leak cases) are closed here at their recorded depth.
        while let Some(span) = t.open.pop() {
            let depth = (t.open.len() + 1) as u16;
            t.closed.push(SpanRecord {
                name: span.name,
                depth,
                wall_us: span.start.elapsed().as_micros() as u64,
                notes: span.notes,
            });
        }
        Some(Trace {
            root: t.root,
            label: t.label,
            total_us: t.start.elapsed().as_micros() as u64,
            notes: t.notes,
            spans: t.closed,
        })
    })?;

    let m = metrics();
    m.queries_total.inc();
    m.query_us.record(trace.total_us);
    let threshold = slow_threshold_us();
    if threshold > 0 && trace.total_us >= threshold {
        m.queries_slow.inc();
    }
    if trace.total_us >= threshold {
        push_ring(trace.clone());
    }
    Some(trace)
}

/// Open a stage span on the current trace. A no-op guard is returned
/// when no trace is active on this thread, so lower layers can span
/// unconditionally.
pub fn span(name: &'static str) -> SpanGuard {
    let index = ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        slot.as_mut().map(|t| {
            t.open.push(OpenSpan {
                name,
                start: Instant::now(),
                notes: Vec::new(),
            });
            t.open.len() - 1
        })
    });
    SpanGuard { index }
}

/// RAII guard for one stage span; closing records the wall time.
pub struct SpanGuard {
    /// Position in the open-span stack at creation, `None` when no
    /// trace was active.
    index: Option<usize>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(index) = self.index else { return };
        ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            let Some(t) = slot.as_mut() else { return };
            // Pop everything at or above our index: guards drop LIFO on
            // both the normal and the unwind path, but truncating makes
            // a leaked inner guard harmless rather than corrupting.
            while t.open.len() > index {
                let span = t.open.pop().expect("len > index implies nonempty");
                let depth = (t.open.len() + 1) as u16;
                t.closed.push(SpanRecord {
                    name: span.name,
                    depth,
                    wall_us: span.start.elapsed().as_micros() as u64,
                    notes: span.notes,
                });
            }
        });
    }
}

/// Attach a `key = value` annotation to the innermost open span, or to
/// the trace root when no span is open. Ignored when no trace is
/// active.
pub fn note(key: &'static str, value: impl Into<String>) {
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        let Some(t) = slot.as_mut() else { return };
        let notes = match t.open.last_mut() {
            Some(span) => &mut span.notes,
            None => &mut t.notes,
        };
        notes.push((key, value.into()));
    });
}

// ---- the slow-trace ring ----

const DEFAULT_RING_CAPACITY: usize = 32;

fn ring() -> &'static Mutex<VecDeque<Trace>> {
    static RING: OnceLock<Mutex<VecDeque<Trace>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(DEFAULT_RING_CAPACITY)))
}

fn push_ring(trace: Trace) {
    let cap = ring_capacity();
    if cap == 0 {
        return;
    }
    let mut ring = ring().lock().unwrap_or_else(PoisonError::into_inner);
    while ring.len() >= cap {
        ring.pop_front();
    }
    ring.push_back(trace);
}

/// Copy out the retained traces, oldest first.
pub fn recent_traces() -> Vec<Trace> {
    let ring = ring().lock().unwrap_or_else(PoisonError::into_inner);
    ring.iter().cloned().collect()
}

/// Drop every retained trace (tests and targeted inspection sessions).
pub fn clear_traces() {
    let mut ring = ring().lock().unwrap_or_else(PoisonError::into_inner);
    ring.clear();
}

// Thresholds are cached in atomics after a first env read; the sentinel
// u64::MAX means "not initialized yet". Setters exist so embedders and
// tests can reconfigure without the env races of `set_var`.

static SLOW_US: AtomicU64 = AtomicU64::new(u64::MAX);
static RING_CAP: AtomicU64 = AtomicU64::new(u64::MAX);

/// Environment knob: traces with `total_us` at or above this value are
/// retained in the ring and counted as slow. 0 (the default) retains
/// every trace and counts none as slow.
pub const SLOW_QUERY_ENV: &str = "GAEA_SLOW_QUERY_US";

/// Environment knob: how many traces the ring retains (default 32,
/// 0 disables retention).
pub const TRACE_RING_ENV: &str = "GAEA_TRACE_RING";

fn env_u64(var: &str, fallback: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(fallback)
}

/// Current slow-trace threshold in µs (see [`SLOW_QUERY_ENV`]).
pub fn slow_threshold_us() -> u64 {
    match SLOW_US.load(Ordering::Relaxed) {
        u64::MAX => {
            let v = env_u64(SLOW_QUERY_ENV, 0).min(u64::MAX - 1);
            SLOW_US.store(v, Ordering::Relaxed);
            v
        }
        v => v,
    }
}

/// Override the slow-trace threshold for this process.
pub fn set_slow_threshold_us(us: u64) {
    SLOW_US.store(us.min(u64::MAX - 1), Ordering::Relaxed);
}

fn ring_capacity() -> usize {
    match RING_CAP.load(Ordering::Relaxed) {
        u64::MAX => {
            let v = env_u64(TRACE_RING_ENV, DEFAULT_RING_CAPACITY as u64).min(4096);
            RING_CAP.store(v, Ordering::Relaxed);
            v as usize
        }
        v => v as usize,
    }
}

/// Override the ring capacity for this process (clamped to 4096).
pub fn set_ring_capacity(n: usize) {
    RING_CAP.store((n as u64).min(4096), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn spans_nest_and_record_in_completion_order() {
        let _serial = ring_lock();
        let t = start_trace("query", "obs");
        {
            let _plan = span("plan");
        }
        {
            let _retrieve = span("retrieve");
            note("path", "index(v)");
            {
                let _inner = span("scan");
            }
        }
        let trace = t.finish().expect("outermost trace returns data");
        let names: Vec<_> = trace.spans.iter().map(|s| (s.name, s.depth)).collect();
        assert_eq!(names, vec![("plan", 1), ("scan", 2), ("retrieve", 1)]);
        let retrieve = trace.spans.iter().find(|s| s.name == "retrieve").unwrap();
        assert_eq!(retrieve.notes, vec![("path", "index(v)".to_string())]);
        assert_eq!(trace.root, "query");
        assert_eq!(trace.label, "obs");
    }

    #[test]
    fn a_panicking_stage_leaves_the_stack_clean() {
        let _serial = ring_lock();
        let blown = catch_unwind(AssertUnwindSafe(|| {
            let _t = start_trace("query", "boom");
            let _outer = span("derive");
            let _inner = span("fire");
            panic!("stage blew up");
        }));
        assert!(blown.is_err());
        // The thread-local slot must be empty again: a fresh trace works
        // and sees only its own spans.
        let t = start_trace("query", "after");
        {
            let _s = span("plan");
        }
        let trace = t.finish().unwrap();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "plan");
    }

    #[test]
    fn nested_start_degrades_to_a_span() {
        let _serial = ring_lock();
        let outer = start_trace("query", "outer");
        let inner = start_trace("query", "inner");
        assert!(inner.finish().is_none());
        let trace = outer.finish().unwrap();
        // The inner "trace" shows up as a depth-1 span of the outer one.
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "query");
        assert_eq!(trace.spans[0].depth, 1);
    }

    /// The ring and thresholds are process-global; tests touching them
    /// serialize here so the parallel test runner can't interleave them.
    fn ring_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn ring_retains_bounded_traces() {
        let _serial = ring_lock();
        set_slow_threshold_us(0);
        set_ring_capacity(4);
        clear_traces();
        for i in 0..6 {
            let t = start_trace("query", format!("t{i}"));
            drop(t.finish());
        }
        let traces = recent_traces();
        assert_eq!(traces.len(), 4);
        assert_eq!(traces.first().unwrap().label, "t2");
        assert_eq!(traces.last().unwrap().label, "t5");
        clear_traces();
    }

    #[test]
    fn threshold_filters_ring_retention() {
        let _serial = ring_lock();
        set_ring_capacity(32);
        set_slow_threshold_us(60_000_000); // nothing in this test is that slow
        clear_traces();
        let t = start_trace("query", "fast");
        drop(t.finish());
        assert!(recent_traces().is_empty());
        set_slow_threshold_us(0);
        clear_traces();
    }
}
