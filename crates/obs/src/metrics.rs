//! The process-wide metrics registry: atomic counters, gauges, and
//! log-bucketed latency histograms.
//!
//! Everything here is a plain `AtomicU64` touched with `Relaxed`
//! ordering — one uncontended CAS-free add per event — so the hot paths
//! (WAL appends, cache probes, scheduler waves, every query stage) can
//! stay instrumented unconditionally. The registry is a *fixed* set of
//! named instruments rather than a string-keyed map: call sites pay a
//! field access instead of a hash lookup, and the snapshot key set is
//! stable by construction (guarded by a golden-file test upstream).
//!
//! [`MetricsRegistry::snapshot`] flattens the registry into ordered
//! `(key, u64)` pairs; histograms expand into `<name>_count`,
//! `<name>_sum`, `<name>_p50`, `<name>_p95`, `<name>_p99`. The snapshot
//! renders itself as JSON without any serde dependency so the crates
//! below the serialization layer can still export it.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-writer-wins instantaneous value (queue depths, live entry
/// counts, recovery checkpoints).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Saturating decrement: a racy double-release clamps at zero
    /// instead of wrapping to 2^64.
    #[inline]
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket
/// `i ≥ 1` holds `[2^(i-1), 2^i - 1]` — one bucket per power of two, so
/// any extracted percentile is within a factor of two of the true
/// sample (the classic log-bucket error bound).
pub const HIST_BUCKETS: usize = 65;

/// Log-bucketed histogram with nearest-rank percentile extraction.
///
/// Recording is two relaxed adds plus one relaxed add on the bucket —
/// no locks, no allocation. Percentiles are computed on demand from the
/// bucket counts; the returned value is the *upper bound* of the bucket
/// containing the nearest-rank sample, so estimates are conservative
/// and never more than 2× the true order statistic.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

/// Bucket index for a value: its bit length (0 for 0).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (the percentile representative).
pub fn bucket_ceil(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= 64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    pub const fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Nearest-rank percentile (`pct` in 1..=100): the upper bound of
    /// the bucket holding sample number `⌈pct·n/100⌉`. Returns 0 on an
    /// empty histogram.
    pub fn percentile(&self, pct: u32) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = (u64::from(pct) * n).div_ceil(100).clamp(1, n);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_ceil(i);
            }
        }
        bucket_ceil(HIST_BUCKETS - 1)
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// The fixed, process-wide instrument set. One static instance lives
/// behind [`metrics`](fn@crate::metrics); every layer of the system bumps
/// its own fields directly.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    // ---- query pipeline ----
    /// Finished query traces (every `Gaea::query` / `ReadView::query`).
    pub queries_total: Counter,
    /// Traces at or over the slow-query threshold (only counted when
    /// the threshold is nonzero).
    pub queries_slow: Counter,
    /// End-to-end statement latency, µs.
    pub query_us: Histogram,
    /// Per-stage wall time, µs (the same laps that feed
    /// `QueryOutcome::profile`).
    pub stage_plan_us: Histogram,
    pub stage_retrieve_us: Histogram,
    pub stage_interpolate_us: Histogram,
    pub stage_derive_us: Histogram,
    pub stage_bind_us: Histogram,
    pub stage_fire_us: Histogram,
    pub stage_project_us: Histogram,

    // ---- derived-result cache ----
    pub cache_hits: Counter,
    pub cache_misses: Counter,
    /// Entries dropped by version-based invalidation.
    pub cache_evictions: Counter,
    /// Live memoized entries.
    pub cache_entries: Gauge,

    // ---- write-ahead log ----
    pub wal_appends: Counter,
    pub wal_fsyncs: Counter,
    /// Records per group-commit batch (recorded at each fsync).
    pub wal_batch: Histogram,
    /// Log compactions completed (snapshot written off the commit path
    /// or by a synchronous checkpoint, pointer flipped, prefix dropped).
    pub wal_compactions: Counter,
    /// Background compactions whose snapshot write failed (the log is
    /// untouched; the cadence retries).
    pub wal_compactions_failed: Counter,
    /// Wall time of one snapshot write + pointer flip, µs — off the
    /// commit path for background compactions.
    pub wal_compaction_us: Histogram,
    /// Log bytes dropped by prefix truncation after a compaction.
    pub wal_compaction_trunc_bytes: Counter,

    // ---- derivation scheduler ----
    /// `Scheduler::map` calls that fanned out to worker threads.
    pub sched_parallel_maps: Counter,
    /// `Scheduler::map` calls that ran the in-order sequential loop.
    pub sched_serial_maps: Counter,
    /// Items per parallel map (the wave width).
    pub sched_wave_width: Histogram,
    /// Configured worker count of the most recently used scheduler.
    pub sched_workers: Gauge,

    // ---- async job pool ----
    pub jobs_submitted: Counter,
    pub jobs_completed: Counter,
    pub jobs_failed: Counter,
    pub jobs_cancelled: Counter,
    /// Jobs queued but not yet picked up by a worker.
    pub jobs_queue_depth: Gauge,

    // ---- session kernel ----
    /// Statements run on the serialized commit path (`SharedKernel::exec`).
    pub kernel_execs: Counter,
    /// Snapshot pins served to readers (`SharedKernel::pin`).
    pub kernel_pins: Counter,

    // ---- durability / recovery (gauges refreshed at every checkpoint) ----
    pub recovery_events_replayed: Gauge,
    pub recovery_jobs_restaged: Gauge,
    pub recovery_snapshot_seq: Gauge,
    pub recovery_wal_dropped_bytes: Gauge,
    /// 1 if the last open found a corrupt WAL tail, else 0.
    pub recovery_wal_corrupt: Gauge,
}

/// A flattened, point-in-time view of the registry: ordered
/// `(key, value)` pairs with a stable key set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub entries: Vec<(&'static str, u64)>,
}

impl MetricsSnapshot {
    pub fn get(&self, key: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
    }

    pub fn keys(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(k, _)| *k).collect()
    }

    /// Render as a flat JSON object. Values are plain `u64`s so no
    /// escaping is ever needed; keys are compile-time identifiers.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 24);
        out.push('{');
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(k);
            out.push_str("\":");
            out.push_str(&v.to_string());
        }
        out.push('}');
        out
    }
}

impl MetricsRegistry {
    pub const fn new() -> MetricsRegistry {
        MetricsRegistry {
            queries_total: Counter::new(),
            queries_slow: Counter::new(),
            query_us: Histogram::new(),
            stage_plan_us: Histogram::new(),
            stage_retrieve_us: Histogram::new(),
            stage_interpolate_us: Histogram::new(),
            stage_derive_us: Histogram::new(),
            stage_bind_us: Histogram::new(),
            stage_fire_us: Histogram::new(),
            stage_project_us: Histogram::new(),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            cache_evictions: Counter::new(),
            cache_entries: Gauge::new(),
            wal_appends: Counter::new(),
            wal_fsyncs: Counter::new(),
            wal_batch: Histogram::new(),
            wal_compactions: Counter::new(),
            wal_compactions_failed: Counter::new(),
            wal_compaction_us: Histogram::new(),
            wal_compaction_trunc_bytes: Counter::new(),
            sched_parallel_maps: Counter::new(),
            sched_serial_maps: Counter::new(),
            sched_wave_width: Histogram::new(),
            sched_workers: Gauge::new(),
            jobs_submitted: Counter::new(),
            jobs_completed: Counter::new(),
            jobs_failed: Counter::new(),
            jobs_cancelled: Counter::new(),
            jobs_queue_depth: Gauge::new(),
            kernel_execs: Counter::new(),
            kernel_pins: Counter::new(),
            recovery_events_replayed: Gauge::new(),
            recovery_jobs_restaged: Gauge::new(),
            recovery_snapshot_seq: Gauge::new(),
            recovery_wal_dropped_bytes: Gauge::new(),
            recovery_wal_corrupt: Gauge::new(),
        }
    }

    /// Flatten every instrument into `(key, value)` pairs. The key set
    /// and order are part of the crate's compatibility surface — a
    /// golden-file test upstream pins them so dashboards don't silently
    /// break.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<(&'static str, u64)> = Vec::with_capacity(64);
        let mut c = |k: &'static str, v: u64| entries.push((k, v));

        c("queries_total", self.queries_total.get());
        c("queries_slow", self.queries_slow.get());
        hist(&mut entries, "query_us", &self.query_us);
        hist(&mut entries, "stage_plan_us", &self.stage_plan_us);
        hist(&mut entries, "stage_retrieve_us", &self.stage_retrieve_us);
        hist(
            &mut entries,
            "stage_interpolate_us",
            &self.stage_interpolate_us,
        );
        hist(&mut entries, "stage_derive_us", &self.stage_derive_us);
        hist(&mut entries, "stage_bind_us", &self.stage_bind_us);
        hist(&mut entries, "stage_fire_us", &self.stage_fire_us);
        hist(&mut entries, "stage_project_us", &self.stage_project_us);

        let mut c = |k: &'static str, v: u64| entries.push((k, v));
        c("cache_hits", self.cache_hits.get());
        c("cache_misses", self.cache_misses.get());
        c("cache_evictions", self.cache_evictions.get());
        c("cache_entries", self.cache_entries.get());

        c("wal_appends", self.wal_appends.get());
        c("wal_fsyncs", self.wal_fsyncs.get());
        hist(&mut entries, "wal_batch", &self.wal_batch);

        let mut c = |k: &'static str, v: u64| entries.push((k, v));
        c("wal_compactions", self.wal_compactions.get());
        c("wal_compactions_failed", self.wal_compactions_failed.get());
        hist(&mut entries, "wal_compaction_us", &self.wal_compaction_us);

        let mut c = |k: &'static str, v: u64| entries.push((k, v));
        c(
            "wal_compaction_trunc_bytes",
            self.wal_compaction_trunc_bytes.get(),
        );
        c("sched_parallel_maps", self.sched_parallel_maps.get());
        c("sched_serial_maps", self.sched_serial_maps.get());
        hist(&mut entries, "sched_wave_width", &self.sched_wave_width);

        let mut c = |k: &'static str, v: u64| entries.push((k, v));
        c("sched_workers", self.sched_workers.get());

        c("jobs_submitted", self.jobs_submitted.get());
        c("jobs_completed", self.jobs_completed.get());
        c("jobs_failed", self.jobs_failed.get());
        c("jobs_cancelled", self.jobs_cancelled.get());
        c("jobs_queue_depth", self.jobs_queue_depth.get());

        c("kernel_execs", self.kernel_execs.get());
        c("kernel_pins", self.kernel_pins.get());

        c(
            "recovery_events_replayed",
            self.recovery_events_replayed.get(),
        );
        c("recovery_jobs_restaged", self.recovery_jobs_restaged.get());
        c("recovery_snapshot_seq", self.recovery_snapshot_seq.get());
        c(
            "recovery_wal_dropped_bytes",
            self.recovery_wal_dropped_bytes.get(),
        );
        c("recovery_wal_corrupt", self.recovery_wal_corrupt.get());

        MetricsSnapshot { entries }
    }
}

/// Environment variable naming a file to dump the metrics snapshot to
/// (see [`dump_snapshot_to_env_path`]).
pub const METRICS_JSON_ENV: &str = "GAEA_METRICS_JSON";

/// When [`METRICS_JSON_ENV`] names a file, write the global registry's
/// snapshot there as one flat JSON object and return the path.
/// Benchmarks call this at exit so `scripts/bench_summary.sh` can merge
/// the counters behind the latency numbers into the published artifact.
/// Returns `None` when the variable is unset/empty or the write fails
/// (a diagnostics knob must never fail the workload it observes).
pub fn dump_snapshot_to_env_path() -> Option<String> {
    let path = std::env::var(METRICS_JSON_ENV).ok()?;
    if path.is_empty() {
        return None;
    }
    let json = metrics().snapshot().to_json();
    match std::fs::write(&path, json + "\n") {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("gaea-obs: cannot write {METRICS_JSON_ENV}={path}: {e}");
            None
        }
    }
}

/// Expand a histogram into its five snapshot keys. The `_p*` keys use
/// the bucket upper bound (≤ 2× the true order statistic).
fn hist(entries: &mut Vec<(&'static str, u64)>, name: &'static str, h: &Histogram) {
    // The five per-histogram suffixes are interned as static strings via
    // a match on the known histogram names: no leaks, no allocation.
    let keys = hist_keys(name);
    entries.push((keys[0], h.count()));
    entries.push((keys[1], h.sum()));
    entries.push((keys[2], h.percentile(50)));
    entries.push((keys[3], h.percentile(95)));
    entries.push((keys[4], h.percentile(99)));
}

/// Static `_count/_sum/_p50/_p95/_p99` key names for each histogram in
/// the registry. Adding a histogram means adding an arm here — the
/// golden-key test fails loudly if the two drift.
fn hist_keys(name: &'static str) -> [&'static str; 5] {
    match name {
        "query_us" => [
            "query_us_count",
            "query_us_sum",
            "query_us_p50",
            "query_us_p95",
            "query_us_p99",
        ],
        "stage_plan_us" => [
            "stage_plan_us_count",
            "stage_plan_us_sum",
            "stage_plan_us_p50",
            "stage_plan_us_p95",
            "stage_plan_us_p99",
        ],
        "stage_retrieve_us" => [
            "stage_retrieve_us_count",
            "stage_retrieve_us_sum",
            "stage_retrieve_us_p50",
            "stage_retrieve_us_p95",
            "stage_retrieve_us_p99",
        ],
        "stage_interpolate_us" => [
            "stage_interpolate_us_count",
            "stage_interpolate_us_sum",
            "stage_interpolate_us_p50",
            "stage_interpolate_us_p95",
            "stage_interpolate_us_p99",
        ],
        "stage_derive_us" => [
            "stage_derive_us_count",
            "stage_derive_us_sum",
            "stage_derive_us_p50",
            "stage_derive_us_p95",
            "stage_derive_us_p99",
        ],
        "stage_bind_us" => [
            "stage_bind_us_count",
            "stage_bind_us_sum",
            "stage_bind_us_p50",
            "stage_bind_us_p95",
            "stage_bind_us_p99",
        ],
        "stage_fire_us" => [
            "stage_fire_us_count",
            "stage_fire_us_sum",
            "stage_fire_us_p50",
            "stage_fire_us_p95",
            "stage_fire_us_p99",
        ],
        "stage_project_us" => [
            "stage_project_us_count",
            "stage_project_us_sum",
            "stage_project_us_p50",
            "stage_project_us_p95",
            "stage_project_us_p99",
        ],
        "wal_batch" => [
            "wal_batch_count",
            "wal_batch_sum",
            "wal_batch_p50",
            "wal_batch_p95",
            "wal_batch_p99",
        ],
        "wal_compaction_us" => [
            "wal_compaction_us_count",
            "wal_compaction_us_sum",
            "wal_compaction_us_p50",
            "wal_compaction_us_p95",
            "wal_compaction_us_p99",
        ],
        "sched_wave_width" => [
            "sched_wave_width_count",
            "sched_wave_width_sum",
            "sched_wave_width_p50",
            "sched_wave_width_p95",
            "sched_wave_width_p99",
        ],
        other => unreachable!("histogram {other} has no interned snapshot keys"),
    }
}

static GLOBAL: MetricsRegistry = MetricsRegistry::new();

/// The process-wide registry every layer instruments through.
pub fn metrics() -> &'static MetricsRegistry {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(7);
        g.sub(3);
        g.add(1);
        assert_eq!(g.get(), 5);
        g.sub(100); // saturates, never wraps
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn bucket_geometry() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_ceil(0), 0);
        assert_eq!(bucket_ceil(1), 1);
        assert_eq!(bucket_ceil(2), 3);
        assert_eq!(bucket_ceil(64), u64::MAX);
    }

    #[test]
    fn percentiles_exact_small_samples() {
        // Distinct powers of two land in distinct buckets, so the
        // nearest-rank percentile is exact (the bucket ceiling equals
        // the sample when samples are of the form 2^k - 1).
        let h = Histogram::new();
        for v in [1u64, 3, 7, 15] {
            h.record(v);
        }
        // n = 4: p50 → rank 2 → second sample; p99 → rank 4 → max.
        assert_eq!(h.percentile(50), 3);
        assert_eq!(h.percentile(99), 15);
        assert_eq!(h.percentile(100), 15);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 26);
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.percentile(99), 0);
    }

    #[test]
    fn percentile_lands_in_the_oracle_bucket() {
        // Mixed magnitudes: the extracted percentile must share a bucket
        // with the sorted-vector nearest-rank oracle.
        let h = Histogram::new();
        let mut samples: Vec<u64> = vec![5, 900, 42, 7, 100_000, 6, 13, 2, 999, 64];
        for &v in &samples {
            h.record(v);
        }
        samples.sort_unstable();
        for pct in [50u32, 95, 99] {
            let rank = (u64::from(pct) * samples.len() as u64)
                .div_ceil(100)
                .clamp(1, samples.len() as u64);
            let oracle = samples[rank as usize - 1];
            let got = h.percentile(pct);
            assert_eq!(
                bucket_index(got),
                bucket_index(oracle),
                "pct {pct}: got {got}, oracle {oracle}"
            );
        }
    }

    #[test]
    fn snapshot_json_is_flat_and_parsable_shape() {
        let snap = MetricsRegistry::new().snapshot();
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(snap.get("wal_appends").is_some());
        assert!(snap.get("query_us_p99").is_some());
        assert!(snap.get("no_such_key").is_none());
        // Keys are unique.
        let mut keys = snap.keys();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), n);
    }
}
