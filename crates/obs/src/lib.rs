//! # gaea-obs — end-to-end observability for the Gaea stack
//!
//! The introspection layer every other crate instruments through, kept
//! deliberately dependency-free so it can sit *below* the store and the
//! scheduler:
//!
//! * [`mod@metrics`] — a fixed, process-wide registry of atomic counters,
//!   gauges, and log-bucketed latency histograms with p50/p95/p99
//!   extraction. Always on: one relaxed atomic add per event, a stable
//!   snapshot key set, hand-rolled JSON export.
//! * [`trace`] — structured spans over a thread-local stack with RAII
//!   guards (unwind-safe: a panicking stage cannot corrupt the stack),
//!   per-span wall times and annotations, and a bounded ring retaining
//!   the last N traces at or over the `GAEA_SLOW_QUERY_US` threshold.
//!
//! The kernel turns a statement's trace into the `EXPLAIN ANALYZE`-style
//! `QueryOutcome::profile`; the server exports [`MetricsRegistry`]
//! snapshots and the trace ring over its `Stats`/`Trace` wire requests.

pub mod metrics;
pub mod trace;

pub use metrics::{
    bucket_ceil, bucket_index, dump_snapshot_to_env_path, metrics, Counter, Gauge, Histogram,
    MetricsRegistry, MetricsSnapshot, HIST_BUCKETS, METRICS_JSON_ENV,
};
pub use trace::{
    clear_traces, note, recent_traces, set_ring_capacity, set_slow_threshold_us, slow_threshold_us,
    span, start_trace, SpanGuard, SpanRecord, Trace, TraceGuard, SLOW_QUERY_ENV, TRACE_RING_ENV,
};
