//! `gaea-server` — serve one Gaea kernel to many sessions over TCP.
//!
//! ```text
//! gaea-server --addr 127.0.0.1:7878 --data ./db      # durable
//! gaea-server --addr 127.0.0.1:0    --mem --seed     # ephemeral demo
//! gaea-server --data ./db --check                    # recovery audit
//! ```
//!
//! Flags:
//!
//! * `--addr HOST:PORT` — bind address (default `127.0.0.1:7878`;
//!   port 0 picks an ephemeral port, printed on stdout).
//! * `--data DIR` / `--mem` — durable kernel rooted at `DIR` (WAL +
//!   snapshots) or an in-memory kernel. Exactly one; default `--mem`.
//! * `--max-sessions N`, `--idle-ms N`, `--max-statements N`,
//!   `--max-await-ms N` — session registry limits.
//! * `--allow-remote-shutdown` — honor the wire `Shutdown` request from
//!   non-loopback peers (default: loopback only).
//! * `--seed` — define a small demo schema (`obs {v}`) and a few rows
//!   before serving, so a fresh server answers queries immediately.
//! * `--check` — do not serve: open the kernel, print its recovery
//!   stats as JSON, and exit nonzero if the log was corrupt or bytes
//!   were dropped. CI runs this after a graceful shutdown to assert the
//!   WAL closed clean.
//!
//! Exit status: 0 after a clean shutdown **including** the checked WAL
//! flush; 1 when the flush failed (the durable tail may be incomplete)
//! or `--check` found a dirty log.

use gaea_adt::{AbsTime, GeoBox, Image, PixType, TypeTag, Value};
use gaea_core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea_core::template::{Expr, Mapping, Template};
use gaea_server::{Server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    addr: String,
    data: Option<PathBuf>,
    config: ServerConfig,
    seed: bool,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        data: None,
        config: ServerConfig::default(),
        seed: false,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--data" => args.data = Some(PathBuf::from(value("--data")?)),
            "--mem" => args.data = None,
            "--max-sessions" => {
                args.config.max_sessions = value("--max-sessions")?
                    .parse()
                    .map_err(|e| format!("--max-sessions: {e}"))?
            }
            "--idle-ms" => {
                args.config.idle_timeout = Duration::from_millis(
                    value("--idle-ms")?
                        .parse()
                        .map_err(|e| format!("--idle-ms: {e}"))?,
                )
            }
            "--max-statements" => {
                args.config.max_statements = value("--max-statements")?
                    .parse()
                    .map_err(|e| format!("--max-statements: {e}"))?
            }
            "--max-await-ms" => {
                args.config.max_await = Duration::from_millis(
                    value("--max-await-ms")?
                        .parse()
                        .map_err(|e| format!("--max-await-ms: {e}"))?,
                )
            }
            "--allow-remote-shutdown" => args.config.allow_remote_shutdown = true,
            "--seed" => args.seed = true,
            "--check" => args.check = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn open_kernel(args: &Args) -> Result<Gaea, String> {
    match &args.data {
        Some(dir) => Gaea::open(dir).map_err(|e| format!("open {}: {e}", dir.display())),
        None => Ok(Gaea::in_memory()),
    }
}

/// Seed the demo schema the quickstarts and smoke tests query.
fn seed(g: &mut Gaea) -> Result<(), String> {
    if g.catalog().class_by_name("obs").is_err() {
        g.define_class(ClassSpec::base("obs").attr("v", TypeTag::Int4))
            .map_err(|e| format!("seed class: {e}"))?;
        for v in 0..8 {
            g.insert_object("obs", vec![("v", Value::Int4(v))])
                .map_err(|e| format!("seed insert: {e}"))?;
        }
    }
    // A tiny derivation pipeline (field --P_smooth--> smooth), fired
    // twice with memoization on, so a fresh server's live introspection
    // reports the derived-result cache in action (one miss, one hit)
    // rather than a wall of zeros.
    if g.catalog().class_by_name("field").is_err() {
        g.define_class(ClassSpec::base("field").attr("data", TypeTag::Image))
            .map_err(|e| format!("seed class: {e}"))?;
        g.define_class(ClassSpec::derived("smooth").attr("data", TypeTag::Image))
            .map_err(|e| format!("seed class: {e}"))?;
        let template = Template {
            assertions: vec![],
            mappings: vec![
                Mapping {
                    attr: "data".into(),
                    expr: Expr::Arg("f".into()),
                },
                Mapping {
                    attr: "spatialextent".into(),
                    expr: Expr::proj("f", "spatialextent"),
                },
                Mapping {
                    attr: "timestamp".into(),
                    expr: Expr::proj("f", "timestamp"),
                },
            ],
        };
        g.define_process(
            ProcessSpec::new("P_smooth", "smooth")
                .arg("f", "field")
                .template(template),
        )
        .map_err(|e| format!("seed process: {e}"))?;
        let f = g
            .insert_object(
                "field",
                vec![
                    (
                        "data",
                        Value::image(Image::filled(4, 4, PixType::Float8, 1.0)),
                    ),
                    (
                        "spatialextent",
                        Value::GeoBox(GeoBox::new(-20.0, -35.0, 55.0, 38.0)),
                    ),
                    (
                        "timestamp",
                        Value::AbsTime(AbsTime::from_ymd(1986, 1, 15).map_err(|e| e.to_string())?),
                    ),
                ],
            )
            .map_err(|e| format!("seed insert: {e}"))?;
        g.enable_memoization(true);
        g.run_process("P_smooth", &[("f", vec![f])])
            .map_err(|e| format!("seed derive: {e}"))?;
        g.run_process("P_smooth", &[("f", vec![f])])
            .map_err(|e| format!("seed derive: {e}"))?;
    }
    Ok(())
}

/// `--check`: recovery audit for CI. Prints the stats, fails on a dirty
/// log.
fn check(args: &Args) -> Result<ExitCode, String> {
    let dir = args
        .data
        .as_ref()
        .ok_or("--check needs --data (an in-memory kernel has no log to audit)")?;
    let g = Gaea::open(dir).map_err(|e| format!("open {}: {e}", dir.display()))?;
    let (replayed, restaged, snapshot_seq, dropped, corrupt) = match g.recovery_stats() {
        Some(s) => (
            s.events_replayed,
            s.jobs_restaged,
            s.snapshot_seq,
            s.wal_dropped_bytes,
            s.wal_corrupt,
        ),
        None => (0, 0, 0, 0, false),
    };
    println!(
        "{{\"events_replayed\":{replayed},\"jobs_restaged\":{restaged},\
         \"snapshot_seq\":{snapshot_seq},\"wal_dropped_bytes\":{dropped},\
         \"wal_corrupt\":{corrupt}}}"
    );
    if corrupt || dropped > 0 {
        eprintln!("gaea-server --check: WAL did not close clean");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn serve(args: &Args) -> Result<ExitCode, String> {
    let mut kernel = open_kernel(args)?;
    if args.seed {
        seed(&mut kernel)?;
    }
    let server = Server::bind(kernel, &args.addr, args.config.clone())
        .map_err(|e| format!("bind {}: {e}", args.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // The one line tooling scrapes: the resolved address, first thing.
    println!("gaea-server listening on {addr}");
    let report = server.run();
    eprintln!(
        "gaea-server: shut down after {} sessions ({} refused), \
         {} pinned reads / {} serialized statements, {} protocol errors",
        report.stats.sessions_opened,
        report.stats.sessions_refused,
        report.stats.reads_pinned,
        report.stats.writes_serialized,
        report.stats.protocol_errors,
    );
    match report.wal_flush {
        Ok(()) => Ok(ExitCode::SUCCESS),
        Err(e) => {
            eprintln!("gaea-server: checked WAL flush FAILED at shutdown: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gaea-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run = if args.check {
        check(&args)
    } else {
        serve(&args)
    };
    match run {
        Ok(code) => code,
        Err(e) => {
            eprintln!("gaea-server: {e}");
            ExitCode::FAILURE
        }
    }
}
