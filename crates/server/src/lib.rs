//! # gaea-server — the multi-session network front-end
//!
//! The paper's Gaea is a multi-user scientific DBMS; this crate is the
//! seam that turns the embedded kernel into one: a TCP server speaking
//! a length-prefixed JSON protocol ([`protocol`]), a session registry
//! with admission control and idle timeouts ([`server`]), and a
//! blocking client ([`client`]).
//!
//! The concurrency contract is the kernel's
//! [`gaea_core::kernel::SharedKernel`]: read-only statements execute on
//! snapshot-pinned [`gaea_core::kernel::ReadView`]s without blocking
//! behind commits or each other; mutating statements serialize on the
//! single commit path the WAL has always assumed. Shutdown drains every
//! session and finishes with a **checked** WAL flush whose failure is
//! the process's exit status.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{Request, Response, ServerStats, WireJobStatus, WireOutcome, WireTrace};
pub use server::{Server, ServerConfig, ServerHandle, ServerReport};
