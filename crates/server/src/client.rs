//! A blocking client for the wire protocol — one connection, one
//! session. Used by the workload driver, the benchmarks, and tests;
//! small enough to double as protocol documentation.

use crate::protocol::{
    read_frame, write_frame, FrameError, Request, Response, ServerStats, WireJobStatus,
    WireOutcome, WireTrace, FRAME_REQUEST, FRAME_RESPONSE,
};
use gaea_adt::Value;
use std::net::TcpStream;
use std::time::Duration;

/// Errors a client call can surface.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed or framed garbage.
    Frame(FrameError),
    /// The server answered [`Response::Error`] (kernel errors, refused
    /// admission, protocol violations it could still report).
    Server(String),
    /// The server answered with a response of the wrong shape.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Server(m) => write!(f, "server: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        ClientError::Frame(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// One connected, admitted session.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    session: u64,
}

impl Client {
    /// Connect and perform the `Hello` → `Welcome` handshake. A server
    /// at capacity answers the handshake with an error
    /// ([`ClientError::Server`]).
    pub fn connect(addr: &str, client_name: &str) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        write_frame(
            &mut stream,
            FRAME_REQUEST,
            &Request::Hello {
                client: client_name.to_string(),
            },
        )?;
        match read_frame::<_, Response>(&mut stream, FRAME_RESPONSE)? {
            Response::Welcome { session } => Ok(Client { stream, session }),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// The server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Bound how long one call may wait for its response.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, FRAME_REQUEST, req)?;
        Ok(read_frame(&mut self.stream, FRAME_RESPONSE)?)
    }

    /// Run a `RETRIEVE` statement.
    pub fn retrieve(&mut self, src: &str) -> Result<WireOutcome, ClientError> {
        match self.round_trip(&Request::Retrieve { src: src.into() })? {
            Response::Outcome(o) => Ok(o),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Register a definition program; returns (classes, processes,
    /// concepts) counts.
    pub fn define(&mut self, src: &str) -> Result<(usize, usize, usize), ClientError> {
        match self.round_trip(&Request::Define { src: src.into() })? {
            Response::Defined {
                classes,
                processes,
                concepts,
            } => Ok((classes, processes, concepts)),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Insert one object; returns its raw OID.
    pub fn insert(&mut self, class: &str, attrs: Vec<(String, Value)>) -> Result<u64, ClientError> {
        match self.round_trip(&Request::Insert {
            class: class.into(),
            attrs,
        })? {
            Response::Inserted { oid } => Ok(oid),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Update one object's attributes.
    pub fn update(&mut self, oid: u64, attrs: Vec<(String, Value)>) -> Result<(), ClientError> {
        match self.round_trip(&Request::Update { oid, attrs })? {
            Response::Updated => Ok(()),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// A background job's status.
    pub fn job_status(&mut self, id: u64) -> Result<WireJobStatus, ClientError> {
        match self.round_trip(&Request::JobStatus { id })? {
            Response::Job { status, .. } => Ok(status),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Wait (server-side) for a job to resolve, bounded by `timeout`.
    pub fn await_job(&mut self, id: u64, timeout: Duration) -> Result<WireJobStatus, ClientError> {
        match self.round_trip(&Request::AwaitJob {
            id,
            timeout_ms: timeout.as_millis() as u64,
        })? {
            Response::Job { status, .. } => Ok(status),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Cancel a job.
    pub fn cancel_job(&mut self, id: u64) -> Result<WireJobStatus, ClientError> {
        match self.round_trip(&Request::CancelJob { id })? {
            Response::Job { status, .. } => Ok(status),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Server counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Recently retained query traces (the server's slow-query ring).
    pub fn traces(&mut self) -> Result<Vec<WireTrace>, ClientError> {
        match self.round_trip(&Request::Trace)? {
            Response::Traces(t) => Ok(t),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Close the session cleanly.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Goodbye)? {
            Response::Bye => Ok(()),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
