//! The wire protocol: length-prefixed frames carrying JSON-encoded
//! requests and responses.
//!
//! ```text
//!   ┌────────────┬──────┬──────────────────────────────┐
//!   │ u32 BE len │ kind │ payload: one JSON document   │
//!   └────────────┴──────┴──────────────────────────────┘
//!     4 bytes      1 B    `len` bytes (excludes header)
//! ```
//!
//! `kind` is [`FRAME_REQUEST`] client→server and [`FRAME_RESPONSE`]
//! server→client; the payload is the externally-tagged JSON encoding of
//! [`Request`] / [`Response`]. Every request gets exactly one response.
//! A frame with an unknown kind, an oversized length, or an undecodable
//! payload is a **protocol error**: the server counts it, answers with
//! [`Response::Error`] when the stream is still writable, and closes the
//! connection — a session that cannot frame correctly cannot be trusted
//! to stay in sync.

use gaea_adt::Value;
use gaea_core::query::{QueryProfile, ScanPlan};
use gaea_core::{DataObject, ObjectId, QueryMethod, QueryOutcome, TaskId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{Read, Write};

/// Frame kind byte: client → server.
pub const FRAME_REQUEST: u8 = 0x01;
/// Frame kind byte: server → client.
pub const FRAME_RESPONSE: u8 = 0x02;

/// Hard ceiling on one frame's payload; larger lengths are protocol
/// errors (they would otherwise let one session balloon server memory).
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// One client statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Open the session. Must be the first request on a connection.
    Hello { client: String },
    /// A `RETRIEVE …` statement. Plain retrieval (no `DERIVE`, no
    /// `FRESH`) runs on a snapshot-pinned view without touching the
    /// commit path; anything that may compute is serialized.
    Retrieve { src: String },
    /// A definition program (`CLASS` / `DEFINE PROCESS` / `CONCEPT` /
    /// `DEFINE INDEX`). Always serialized.
    Define { src: String },
    /// Insert one object. Always serialized.
    Insert {
        class: String,
        attrs: Vec<(String, Value)>,
    },
    /// Update attributes of one stored object. Always serialized.
    Update {
        oid: u64,
        attrs: Vec<(String, Value)>,
    },
    /// Status of a background job — answered from the pinned job board
    /// when the id is known there, from the live kernel otherwise.
    JobStatus { id: u64 },
    /// Block (server-side, bounded) until a job resolves. The server
    /// polls with short serialized statements; it never parks a thread
    /// holding the kernel.
    AwaitJob { id: u64, timeout_ms: u64 },
    /// Cancel a queued or running job. Always serialized.
    CancelJob { id: u64 },
    /// Server counters (sessions, statement mix, protocol errors) plus
    /// the process-wide metrics snapshot.
    Stats,
    /// Recently retained query traces (the slow-query ring), newest
    /// last.
    Trace,
    /// Liveness probe.
    Ping,
    /// Close this session cleanly.
    Goodbye,
    /// Ask the server to shut down: stop admitting, drain sessions,
    /// checked-flush the WAL. Honored only from loopback peers unless
    /// the server was configured with `allow_remote_shutdown`; refused
    /// requests get an `Error` frame and the session is closed.
    Shutdown,
}

/// One server answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Session admitted.
    Welcome { session: u64 },
    /// A query's result.
    Outcome(WireOutcome),
    /// A definition program registered.
    Defined {
        classes: usize,
        processes: usize,
        concepts: usize,
    },
    /// An object was inserted.
    Inserted { oid: u64 },
    /// An object was updated.
    Updated,
    /// A job's status.
    Job { id: u64, status: WireJobStatus },
    /// Server counters.
    Stats(ServerStats),
    /// Retained query traces, oldest first.
    Traces(Vec<WireTrace>),
    /// Liveness answer.
    Pong,
    /// Session closed at the client's request.
    Bye,
    /// Shutdown acknowledged; the connection closes after this frame.
    ShuttingDown,
    /// The statement failed (kernel error, refused admission, protocol
    /// violation). The connection stays open for kernel errors and
    /// closes for admission/protocol failures.
    Error { message: String },
}

/// [`QueryOutcome`] as it crosses the wire. `QueryOutcome` itself is not
/// serde-encodable (and job ids are bare `u64`s here), so the server
/// flattens it; the fields mirror the kernel struct one-to-one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireOutcome {
    /// Matching objects.
    pub objects: Vec<DataObject>,
    /// Which step answered.
    pub method: QueryMethod,
    /// Tasks recorded while answering.
    pub tasks: Vec<TaskId>,
    /// Stale derivations among `objects`.
    pub stale: Vec<ObjectId>,
    /// Relevant in-flight background jobs (raw job ids).
    pub pending: Vec<u64>,
    /// EXPLAIN-visible scan plans.
    pub plans: Vec<ScanPlan>,
    /// Commit clock of the state that answered — for a pinned read, the
    /// snapshot's clock; for a serialized statement, the clock after it.
    pub clock: u64,
    /// Per-stage wall-clock profile of the statement (EXPLAIN
    /// ANALYZE-style), when the executing path was traced. Absent on
    /// frames from servers predating the field.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub profile: Option<QueryProfile>,
}

impl WireOutcome {
    /// Flatten a kernel outcome at a known clock.
    pub fn from_outcome(o: QueryOutcome, clock: u64) -> WireOutcome {
        WireOutcome {
            objects: o.objects,
            method: o.method,
            tasks: o.tasks,
            stale: o.stale,
            pending: o.pending.iter().map(|j| j.0).collect(),
            plans: o.plans,
            clock,
            profile: o.profile,
        }
    }
}

/// [`gaea_core::kernel::JobStatus`] across the wire (task ids as raw
/// OIDs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireJobStatus {
    /// Waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the recorded task's raw id.
    Done { task: u64 },
    /// Failed with the kernel's error text.
    Failed { error: String },
    /// Cancelled before completion.
    Cancelled,
}

impl WireJobStatus {
    /// Terminal statuses never change again.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, WireJobStatus::Queued | WireJobStatus::Running)
    }
}

impl From<gaea_core::kernel::JobStatus> for WireJobStatus {
    fn from(s: gaea_core::kernel::JobStatus) -> WireJobStatus {
        use gaea_core::kernel::JobStatus as J;
        match s {
            J::Queued => WireJobStatus::Queued,
            J::Running => WireJobStatus::Running,
            J::Done(t) => WireJobStatus::Done { task: t.raw() },
            J::Failed(e) => WireJobStatus::Failed { error: e },
            J::Cancelled => WireJobStatus::Cancelled,
        }
    }
}

/// Server-wide counters, as served by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Sessions admitted over the server's lifetime.
    pub sessions_opened: u64,
    /// Connections refused by admission control.
    pub sessions_refused: u64,
    /// Sessions currently live.
    pub sessions_live: u64,
    /// Statements answered from a snapshot-pinned view.
    pub reads_pinned: u64,
    /// Statements run on the serialized commit path.
    pub writes_serialized: u64,
    /// Malformed frames observed (see the module docs).
    pub protocol_errors: u64,
    /// The kernel's commit clock at answer time.
    pub clock: u64,
    /// The process-wide metrics snapshot (`gaea_obs`), flat key → value.
    /// Empty on frames from servers predating the field.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub metrics: BTreeMap<String, u64>,
}

/// One retained query trace (the `gaea_obs` slow-query ring) across the
/// wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireTrace {
    /// Root span name (`query`, `derive_parallel`, …).
    pub root: String,
    /// Statement label — the target class or concept name.
    pub label: String,
    /// Total wall time of the statement, microseconds.
    pub total_us: u64,
    /// Annotations attached to the trace root.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub notes: Vec<(String, String)>,
    /// Closed spans in completion order.
    pub spans: Vec<WireSpan>,
}

/// One closed span of a [`WireTrace`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireSpan {
    /// Stage name (`plan`, `retrieve`, `bind`, `fire`, …).
    pub name: String,
    /// Nesting depth below the root (stages are 1).
    pub depth: u16,
    /// Span wall time, microseconds.
    pub wall_us: u64,
    /// Annotations attached to this span.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub notes: Vec<(String, String)>,
}

impl From<&gaea_obs::Trace> for WireTrace {
    fn from(t: &gaea_obs::Trace) -> WireTrace {
        WireTrace {
            root: t.root.to_string(),
            label: t.label.clone(),
            total_us: t.total_us,
            notes: t
                .notes
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            spans: t
                .spans
                .iter()
                .map(|s| WireSpan {
                    name: s.name.to_string(),
                    depth: s.depth,
                    wall_us: s.wall_us,
                    notes: s
                        .notes
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect(),
                })
                .collect(),
        }
    }
}

/// Errors reading or writing frames.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed (includes clean EOF between frames).
    Io(std::io::Error),
    /// The peer sent a well-formed header with an unusable body: wrong
    /// kind byte, a length above [`MAX_FRAME`], or undecodable JSON.
    Protocol(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "socket: {e}"),
            FrameError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Write one frame: header (length + kind) then the JSON payload.
pub fn write_frame<W: Write, T: Serialize>(
    w: &mut W,
    kind: u8,
    value: &T,
) -> Result<(), FrameError> {
    let payload =
        serde_json::to_vec(value).map_err(|e| FrameError::Protocol(format!("encode: {e}")))?;
    let len = u32::try_from(payload.len())
        .map_err(|_| FrameError::Protocol("frame over 4 GiB".into()))?;
    if len > MAX_FRAME {
        return Err(FrameError::Protocol(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    let mut buf = Vec::with_capacity(5 + payload.len());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.push(kind);
    buf.extend_from_slice(&payload);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Read one frame, checking the kind byte and length bound, and decode
/// its JSON payload.
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R, expect_kind: u8) -> Result<T, FrameError> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]);
    let kind = header[4];
    if kind != expect_kind {
        return Err(FrameError::Protocol(format!(
            "unexpected frame kind {kind:#04x} (wanted {expect_kind:#04x})"
        )));
    }
    if len > MAX_FRAME {
        return Err(FrameError::Protocol(format!(
            "declared payload of {len} bytes exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    serde_json::from_slice(&payload).map_err(|e| FrameError::Protocol(format!("decode: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        let req = Request::Retrieve {
            src: "RETRIEVE * FROM obs".into(),
        };
        write_frame(&mut buf, FRAME_REQUEST, &req).unwrap();
        let mut cursor = &buf[..];
        let back: Request = read_frame(&mut cursor, FRAME_REQUEST).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn wrong_kind_is_a_protocol_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_RESPONSE, &Response::Pong).unwrap();
        let mut cursor = &buf[..];
        let err = read_frame::<_, Request>(&mut cursor, FRAME_REQUEST).unwrap_err();
        assert!(matches!(err, FrameError::Protocol(_)));
    }

    #[test]
    fn oversized_length_is_refused_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        buf.push(FRAME_REQUEST);
        let mut cursor = &buf[..];
        let err = read_frame::<_, Request>(&mut cursor, FRAME_REQUEST).unwrap_err();
        assert!(matches!(err, FrameError::Protocol(_)));
    }

    #[test]
    fn garbage_json_is_a_protocol_error() {
        let mut buf = Vec::new();
        let payload = b"not json";
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.push(FRAME_REQUEST);
        buf.extend_from_slice(payload);
        let mut cursor = &buf[..];
        let err = read_frame::<_, Request>(&mut cursor, FRAME_REQUEST).unwrap_err();
        assert!(matches!(err, FrameError::Protocol(_)));
    }

    #[test]
    fn responses_with_payloads_round_trip() {
        for resp in [
            Response::Welcome { session: 7 },
            Response::Job {
                id: 3,
                status: WireJobStatus::Failed {
                    error: "boom".into(),
                },
            },
            Response::Stats(ServerStats {
                sessions_opened: 2,
                clock: 40,
                ..ServerStats::default()
            }),
            Response::Error {
                message: "nope".into(),
            },
        ] {
            let mut buf = Vec::new();
            write_frame(&mut buf, FRAME_RESPONSE, &resp).unwrap();
            let mut cursor = &buf[..];
            let back: Response = read_frame(&mut cursor, FRAME_RESPONSE).unwrap();
            assert_eq!(back, resp);
        }
    }
}
