//! The multi-session server runtime: accept loop, session registry,
//! admission control, and the read-vs-commit statement split.
//!
//! One [`gaea_core::kernel::SharedKernel`] serves every session:
//!
//! * statements the protocol classifies as **read-only** (plain
//!   `RETRIEVE`, `JobStatus` for a pinned job, `Stats`, `Ping`) run on
//!   an `Arc<ReadView>` pinned per statement — concurrent readers never
//!   wait for the kernel mutex, so a writer mid-commit never stalls
//!   them;
//! * everything that can mutate (definitions, inserts, updates,
//!   `RETRIEVE … DERIVE`/`FRESH`, job submit/cancel) funnels through
//!   [`SharedKernel::exec`] — the same single serialized commit path the
//!   WAL has always assumed.
//!
//! **Admission control**: at most `max_sessions` concurrent sessions; a
//! connection over the limit is answered with one `Error` frame and
//! closed (counted, never queued — the client can back off and retry).
//! Each admitted session is bounded by an idle timeout (a session that
//! sends nothing for that long is disconnected) and a statement budget.
//!
//! **Shutdown** (wire `Shutdown`, or [`ServerHandle::shutdown`]): the
//! accept loop stops admitting, every live session's socket is shut
//! down to unblock pending reads, session threads are joined, and the
//! kernel is torn down with a **checked** WAL flush —
//! [`Gaea::close`] — whose error is the server's exit status, not a
//! swallowed `Drop`. The wire request is honored only from loopback
//! peers unless [`ServerConfig::allow_remote_shutdown`] is set: any
//! admitted client being able to stop the server is fine on 127.0.0.1
//! and dangerous the moment an operator binds a routable address.

use crate::protocol::{
    read_frame, write_frame, FrameError, Request, Response, ServerStats, WireJobStatus,
    WireOutcome, WireTrace, FRAME_REQUEST, FRAME_RESPONSE,
};
use gaea_core::kernel::{Gaea, ReadView, SharedKernel};
use gaea_core::{JobId, KernelError};
use gaea_lang::{compile_query, lower_program, parse};
use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission ceiling: concurrent sessions beyond this are refused.
    pub max_sessions: usize,
    /// A session silent for this long is disconnected.
    pub idle_timeout: Duration,
    /// Per-session statement budget; exceeding it closes the session.
    pub max_statements: u64,
    /// Server-side ceiling on one `AwaitJob`'s wait; a client-supplied
    /// `timeout_ms` above this is clamped, never trusted.
    pub max_await: Duration,
    /// Honor the wire `Shutdown` request from non-loopback peers.
    /// Off by default: anyone who can connect could otherwise stop the
    /// server the moment it binds a non-loopback address.
    pub allow_remote_shutdown: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_sessions: 64,
            idle_timeout: Duration::from_secs(30),
            max_statements: 1_000_000,
            max_await: Duration::from_secs(10),
            allow_remote_shutdown: false,
        }
    }
}

/// What one server run observed, returned by [`Server::run`] after a
/// graceful shutdown.
#[derive(Debug)]
pub struct ServerReport {
    /// Final counters (the same numbers `Stats` serves).
    pub stats: ServerStats,
    /// Result of the shutdown's checked WAL flush. `Err` means the
    /// durable tail could not be synced — operators must treat the exit
    /// as failed even though every session drained cleanly.
    pub wal_flush: Result<(), KernelError>,
}

/// Shared mutable server state (everything session threads touch).
struct ServerState {
    config: ServerConfig,
    shutdown: AtomicBool,
    sessions_opened: AtomicU64,
    sessions_refused: AtomicU64,
    reads_pinned: AtomicU64,
    writes_serialized: AtomicU64,
    protocol_errors: AtomicU64,
    /// Live sessions: id → the accepted stream's clone, kept so shutdown
    /// can unblock a session parked in a read.
    live: Mutex<HashMap<u64, TcpStream>>,
}

impl ServerState {
    fn stats(&self, clock: u64) -> ServerStats {
        // One answer carries both tiers of observability: the server's
        // own session/statement counters and the process-wide metrics
        // registry (WAL, cache, scheduler, query histograms).
        let metrics = gaea_obs::metrics()
            .snapshot()
            .entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        ServerStats {
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_refused: self.sessions_refused.load(Ordering::Relaxed),
            sessions_live: self
                .live
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len() as u64,
            reads_pinned: self.reads_pinned.load(Ordering::Relaxed),
            writes_serialized: self.writes_serialized.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            clock,
            metrics,
        }
    }
}

/// A handle for stopping a running server from another thread (tests,
/// signal bridges). Cloneable; all clones address the same server.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Request shutdown: equivalent to a wire `Shutdown` request.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Release);
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    kernel: Arc<SharedKernel>,
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) over a kernel.
    pub fn bind(kernel: Gaea, addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            kernel: SharedKernel::new(kernel),
            listener,
            state: Arc::new(ServerState {
                config,
                shutdown: AtomicBool::new(false),
                sessions_opened: AtomicU64::new(0),
                sessions_refused: AtomicU64::new(0),
                reads_pinned: AtomicU64::new(0),
                writes_serialized: AtomicU64::new(0),
                protocol_errors: AtomicU64::new(0),
                live: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serve until shutdown is requested, then drain and tear down.
    /// See the module docs for the full shutdown contract.
    pub fn run(self) -> ServerReport {
        let Server {
            kernel,
            listener,
            state,
        } = self;
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        let mut next_session: u64 = 1;

        while !state.shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let admitted = {
                        let live = state.live.lock().unwrap_or_else(PoisonError::into_inner);
                        live.len() < state.config.max_sessions
                    };
                    if !admitted {
                        state.sessions_refused.fetch_add(1, Ordering::Relaxed);
                        let mut s = stream;
                        let _ = write_frame(
                            &mut s,
                            FRAME_RESPONSE,
                            &Response::Error {
                                message: "admission refused: server at max sessions".into(),
                            },
                        );
                        continue;
                    }
                    let id = next_session;
                    next_session += 1;
                    state.sessions_opened.fetch_add(1, Ordering::Relaxed);
                    if let Ok(clone) = stream.try_clone() {
                        state
                            .live
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .insert(id, clone);
                    }
                    let kernel = Arc::clone(&kernel);
                    let state2 = Arc::clone(&state);
                    workers.push(std::thread::spawn(move || {
                        // Drop guard: the admission slot is released even
                        // if serve_session panics — a wedged statement
                        // must not consume `max_sessions` permanently.
                        let _slot = SlotGuard { state: &state2, id };
                        serve_session(id, stream, &kernel, &state2);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }

        // Drain: unblock every session parked in a read, then join.
        drop(listener);
        {
            let live = state.live.lock().unwrap_or_else(PoisonError::into_inner);
            for stream in live.values() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        for w in workers {
            let _ = w.join();
        }

        // Checked teardown: the sessions are gone, so this handle is the
        // last one and `close` runs the checked flush.
        let clock = kernel.pin().clock();
        let wal_flush = match kernel.close() {
            Ok(r) => r,
            Err(_still_shared) => Err(KernelError::Schema(
                "server teardown raced a live kernel handle; WAL flush unchecked".into(),
            )),
        };
        ServerReport {
            stats: state.stats(clock),
            wal_flush,
        }
    }
}

/// Releases a session's admission slot on scope exit — including panic
/// unwinds — so `sessions_live` and the `max_sessions` ceiling stay
/// correct no matter how the session thread dies.
struct SlotGuard<'a> {
    state: &'a ServerState,
    id: u64,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.state
            .live
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&self.id);
    }
}

/// Serve one session until it says goodbye, errors, idles out, exhausts
/// its statement budget, or the server shuts down.
fn serve_session(id: u64, mut stream: TcpStream, kernel: &SharedKernel, state: &ServerState) {
    let _ = stream.set_read_timeout(Some(state.config.idle_timeout));
    let _ = stream.set_nodelay(true);
    // Trust boundary for `Shutdown`: loopback peers only, unless the
    // operator opted in. An unknowable peer is treated as remote.
    let peer_is_loopback = stream
        .peer_addr()
        .map(|a| a.ip().is_loopback())
        .unwrap_or(false);

    // The handshake: exactly one Hello, answered with Welcome.
    match read_frame::<_, Request>(&mut stream, FRAME_REQUEST) {
        Ok(Request::Hello { .. }) => {
            if write_frame(
                &mut stream,
                FRAME_RESPONSE,
                &Response::Welcome { session: id },
            )
            .is_err()
            {
                return;
            }
        }
        Ok(_) => {
            state.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_frame(
                &mut stream,
                FRAME_RESPONSE,
                &Response::Error {
                    message: "protocol: the first request must be Hello".into(),
                },
            );
            return;
        }
        Err(e) => {
            note_read_failure(&e, state);
            return;
        }
    }

    let mut statements: u64 = 0;
    loop {
        if state.shutdown.load(Ordering::Acquire) {
            return;
        }
        let req = match read_frame::<_, Request>(&mut stream, FRAME_REQUEST) {
            Ok(r) => r,
            Err(e) => {
                note_read_failure(&e, state);
                if matches!(e, FrameError::Protocol(_)) {
                    let _ = write_frame(
                        &mut stream,
                        FRAME_RESPONSE,
                        &Response::Error {
                            message: format!("{e}; closing session"),
                        },
                    );
                }
                return;
            }
        };
        statements += 1;
        if statements > state.config.max_statements {
            let _ = write_frame(
                &mut stream,
                FRAME_RESPONSE,
                &Response::Error {
                    message: "session statement budget exhausted".into(),
                },
            );
            return;
        }
        let (resp, done) = answer(req, kernel, state, peer_is_loopback);
        if write_frame(&mut stream, FRAME_RESPONSE, &resp).is_err() || done {
            return;
        }
    }
}

/// Tally a failed read: timeouts and EOFs are session lifecycle, not
/// protocol errors; undecodable frames are.
fn note_read_failure(e: &FrameError, state: &ServerState) {
    match e {
        FrameError::Protocol(_) => {
            state.protocol_errors.fetch_add(1, Ordering::Relaxed);
        }
        FrameError::Io(_) => {}
    }
}

/// Execute one statement. Returns the response and whether the session
/// ends after sending it. `peer_is_loopback` gates `Shutdown` (see
/// [`ServerConfig::allow_remote_shutdown`]).
fn answer(
    req: Request,
    kernel: &SharedKernel,
    state: &ServerState,
    peer_is_loopback: bool,
) -> (Response, bool) {
    match req {
        Request::Hello { .. } => (
            Response::Error {
                message: "protocol: Hello is only valid as the first request".into(),
            },
            true,
        ),
        Request::Retrieve { src } => (retrieve(&src, kernel, state), false),
        Request::Define { src } => {
            state.writes_serialized.fetch_add(1, Ordering::Relaxed);
            let out = kernel.exec(|g| {
                let program = parse(&src).map_err(|e| {
                    KernelError::Schema(format!("definition syntax: {}", e.underline(&src)))
                })?;
                lower_program(g, &program)
            });
            (
                match out {
                    Ok(l) => Response::Defined {
                        classes: l.classes.len(),
                        processes: l.processes.len(),
                        concepts: l.concepts.len(),
                    },
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                },
                false,
            )
        }
        Request::Insert { class, attrs } => {
            state.writes_serialized.fetch_add(1, Ordering::Relaxed);
            let out = kernel.exec(|g| {
                let borrowed: Vec<(&str, gaea_adt::Value)> =
                    attrs.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
                g.insert_object(&class, borrowed)
            });
            (
                match out {
                    Ok(oid) => Response::Inserted { oid: oid.raw() },
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                },
                false,
            )
        }
        Request::Update { oid, attrs } => {
            state.writes_serialized.fetch_add(1, Ordering::Relaxed);
            let out = kernel.exec(|g| {
                let borrowed: Vec<(&str, gaea_adt::Value)> =
                    attrs.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
                g.update_object(gaea_core::ObjectId(gaea_store::Oid(oid)), borrowed)
            });
            (
                match out {
                    Ok(()) => Response::Updated,
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                },
                false,
            )
        }
        Request::JobStatus { id } => {
            // Pinned first — the snapshot-isolation read path; a job the
            // pinned board predates falls back to one short serialized
            // statement.
            let jid = JobId(id);
            let view = kernel.pin();
            if let Some(status) = view.job_status(jid) {
                state.reads_pinned.fetch_add(1, Ordering::Relaxed);
                return (
                    Response::Job {
                        id,
                        status: WireJobStatus::from(status),
                    },
                    false,
                );
            }
            state.writes_serialized.fetch_add(1, Ordering::Relaxed);
            let out = kernel.exec(|g| g.job_status(jid));
            (
                match out {
                    Ok(status) => Response::Job {
                        id,
                        status: WireJobStatus::from(status),
                    },
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                },
                false,
            )
        }
        Request::AwaitJob { id, timeout_ms } => {
            // Poll with short serialized statements; never park a thread
            // inside the kernel lock waiting for a worker. One counter
            // tick per request, not per poll — the stat counts client
            // statements on the commit path, not poll cycles.
            let jid = JobId(id);
            state.writes_serialized.fetch_add(1, Ordering::Relaxed);
            // The client's timeout is a request, not a contract: clamp
            // to the server's ceiling, and add to `now` checked so a
            // hostile u64::MAX can never panic past the slot guard.
            let timeout = Duration::from_millis(timeout_ms).min(state.config.max_await);
            let deadline = Instant::now()
                .checked_add(timeout)
                .unwrap_or_else(Instant::now);
            loop {
                match kernel.exec(|g| g.job_status(jid)) {
                    Ok(status) => {
                        let wire = WireJobStatus::from(status);
                        // Shutdown ends the wait early with the current
                        // (possibly non-terminal) status: this thread is
                        // not parked in a read, so the drain's socket
                        // shutdown can't unblock it — it must notice on
                        // its own or `Server::run`'s join hangs.
                        if wire.is_terminal()
                            || Instant::now() >= deadline
                            || state.shutdown.load(Ordering::Acquire)
                        {
                            return (Response::Job { id, status: wire }, false);
                        }
                    }
                    Err(e) => {
                        return (
                            Response::Error {
                                message: e.to_string(),
                            },
                            false,
                        )
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        Request::CancelJob { id } => {
            state.writes_serialized.fetch_add(1, Ordering::Relaxed);
            let out = kernel.exec(|g| g.cancel_job(JobId(id)));
            (
                match out {
                    Ok(status) => Response::Job {
                        id,
                        status: WireJobStatus::from(status),
                    },
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                },
                false,
            )
        }
        Request::Stats => {
            state.reads_pinned.fetch_add(1, Ordering::Relaxed);
            let clock = kernel.pin().clock();
            (Response::Stats(state.stats(clock)), false)
        }
        Request::Trace => {
            // Introspection only — never touches the kernel lock.
            state.reads_pinned.fetch_add(1, Ordering::Relaxed);
            let traces = gaea_obs::recent_traces()
                .iter()
                .map(WireTrace::from)
                .collect();
            (Response::Traces(traces), false)
        }
        Request::Ping => (Response::Pong, false),
        Request::Goodbye => (Response::Bye, true),
        Request::Shutdown => {
            if !peer_is_loopback && !state.config.allow_remote_shutdown {
                return (
                    Response::Error {
                        message: "shutdown refused: only loopback peers may stop the \
                                  server (start with allow_remote_shutdown to change)"
                            .into(),
                    },
                    true,
                );
            }
            state.shutdown.store(true, Ordering::Release);
            (Response::ShuttingDown, true)
        }
    }
}

/// A `RETRIEVE` statement: compile against the pinned catalog, then run
/// read-only plans on the pinned view and computing plans serialized.
fn retrieve(src: &str, kernel: &SharedKernel, state: &ServerState) -> Response {
    let view = kernel.pin();
    let q = match compile_query(view.catalog(), src) {
        Ok(q) => q,
        Err(e) => {
            return Response::Error {
                message: e.to_string(),
            }
        }
    };
    if ReadView::is_read_only(&q) {
        state.reads_pinned.fetch_add(1, Ordering::Relaxed);
        match view.query(&q) {
            Ok(outcome) => Response::Outcome(WireOutcome::from_outcome(outcome, view.clock())),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        }
    } else {
        state.writes_serialized.fetch_add(1, Ordering::Relaxed);
        match kernel.exec(|g| g.query(&q).map(|o| (o, g.store_clock()))) {
            Ok((outcome, clock)) => Response::Outcome(WireOutcome::from_outcome(outcome, clock)),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bare_state(config: ServerConfig) -> ServerState {
        ServerState {
            config,
            shutdown: AtomicBool::new(false),
            sessions_opened: AtomicU64::new(0),
            sessions_refused: AtomicU64::new(0),
            reads_pinned: AtomicU64::new(0),
            writes_serialized: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            live: Mutex::new(HashMap::new()),
        }
    }

    #[test]
    fn the_slot_guard_releases_on_panic() {
        let state = Arc::new(bare_state(ServerConfig::default()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        state
            .live
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(7, stream);
        let s2 = Arc::clone(&state);
        let worker = std::thread::spawn(move || {
            let _slot = SlotGuard { state: &s2, id: 7 };
            panic!("session blew up mid-statement");
        });
        assert!(worker.join().is_err());
        // The admission slot came back even though the session panicked.
        assert_eq!(state.stats(0).sessions_live, 0);
    }

    #[test]
    fn shutdown_is_refused_for_remote_peers_by_default() {
        let kernel = SharedKernel::new(Gaea::in_memory());
        let state = bare_state(ServerConfig::default());

        let (resp, done) = answer(Request::Shutdown, &kernel, &state, false);
        assert!(matches!(resp, Response::Error { .. }), "{resp:?}");
        assert!(done);
        assert!(!state.shutdown.load(Ordering::Acquire));

        // Loopback peers are trusted.
        let (resp, _) = answer(Request::Shutdown, &kernel, &state, true);
        assert!(matches!(resp, Response::ShuttingDown));
        assert!(state.shutdown.load(Ordering::Acquire));
    }

    #[test]
    fn remote_shutdown_is_honored_when_opted_in() {
        let kernel = SharedKernel::new(Gaea::in_memory());
        let state = bare_state(ServerConfig {
            allow_remote_shutdown: true,
            ..ServerConfig::default()
        });
        let (resp, _) = answer(Request::Shutdown, &kernel, &state, false);
        assert!(matches!(resp, Response::ShuttingDown));
        assert!(state.shutdown.load(Ordering::Acquire));
    }

    #[test]
    fn a_hostile_await_timeout_cannot_panic_the_deadline() {
        // u64::MAX milliseconds used to overflow `Instant + Duration`
        // and panic the session thread; now it clamps to `max_await`.
        let kernel = SharedKernel::new(Gaea::in_memory());
        let state = bare_state(ServerConfig::default());
        let (resp, done) = answer(
            Request::AwaitJob {
                id: 999,
                timeout_ms: u64::MAX,
            },
            &kernel,
            &state,
            true,
        );
        // Unknown job: the first poll errors — fast, no panic, no hang.
        assert!(matches!(resp, Response::Error { .. }), "{resp:?}");
        assert!(!done);
        // One statement, one counter tick — not one per poll cycle.
        assert_eq!(state.writes_serialized.load(Ordering::Relaxed), 1);
    }
}
