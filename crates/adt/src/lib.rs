//! # gaea-adt — system-level semantics (paper §2.1.3)
//!
//! The lowest of Gaea's three semantic layers. It provides:
//!
//! * **Primitive classes**: value-identified abstract data types. "In
//!   primitive classes, data objects are value identified, i.e., the object
//!   identifier for a data object is its value. Changing the value of an
//!   object in a primitive class will always lead to another object."
//!   [`Value`] therefore implements *total* equality, ordering and hashing
//!   (floats compare by IEEE total order / bit pattern).
//! * **The `image` primitive class** from the paper's listing (nrows, ncols,
//!   pixtype, payload), plus `matrix` and `vector` used by the PCA network
//!   of Figure 4.
//! * **Spatial and temporal extents** ([`geo::GeoBox`], [`time::AbsTime`])
//!   with the `common()` overlap predicate used in process assertions.
//! * **Operators**: functions encapsulated with primitive classes, managed in
//!   a browsable [`operator::OperatorRegistry`] (§4.2 item 1).
//! * **Compound operators**: "operators can be combined into a self-contained
//!   compound operator that can be applied as a primitive mapping function"
//!   — [`dataflow::DataflowGraph`], a typed DAG of operator invocations
//!   executed topologically (Figure 4's PCA network).

pub mod dataflow;
pub mod error;
pub mod geo;
pub mod image;
pub mod matrix;
pub mod operator;
pub mod time;
pub mod types;
pub mod value;

pub use dataflow::{DataflowBuilder, DataflowGraph, Source};
pub use error::{AdtError, AdtResult};
pub use geo::{GeoBox, RefSystem, RefUnit};
pub use image::{Image, PixType, PixelBuffer};
pub use matrix::{Matrix, VectorD};
pub use operator::{OpDef, OpKind, OperatorRegistry, Signature};
pub use time::{AbsTime, TimeRange};
pub use types::TypeTag;
pub use value::Value;
