//! Spatial extents (paper §2.1.2).
//!
//! Every non-primitive class in Gaea carries a `SPATIAL EXTENT` attribute of
//! type `box` — a bounding box in some reference system (`long/lat`, `UTM`,
//! ...) and unit (`meter`, `degree`, ...). Process assertions use the
//! `common()` guard: "the spatio-temporal extents of the input classes are
//! the same or overlap".

use crate::error::{AdtError, AdtResult};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Spatial reference system (`ref_system = char16` in the class listings).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RefSystem {
    /// Geographic longitude/latitude.
    LongLat,
    /// Universal Transverse Mercator, with zone.
    Utm(u8),
    /// Anything else, by name.
    Named(String),
}

impl RefSystem {
    /// Parse the `char16` spellings used in the paper ("long/lat", "UTM").
    pub fn parse(s: &str) -> RefSystem {
        let t = s.trim();
        if t.eq_ignore_ascii_case("long/lat") || t.eq_ignore_ascii_case("longlat") {
            RefSystem::LongLat
        } else if let Some(zone) = t
            .strip_prefix("UTM")
            .or_else(|| t.strip_prefix("utm"))
            .map(str::trim)
        {
            match zone.parse::<u8>() {
                Ok(z) => RefSystem::Utm(z),
                Err(_) => {
                    if zone.is_empty() {
                        RefSystem::Utm(0)
                    } else {
                        RefSystem::Named(t.to_string())
                    }
                }
            }
        } else {
            RefSystem::Named(t.to_string())
        }
    }
}

impl fmt::Display for RefSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefSystem::LongLat => write!(f, "long/lat"),
            RefSystem::Utm(0) => write!(f, "UTM"),
            RefSystem::Utm(z) => write!(f, "UTM {z}"),
            RefSystem::Named(n) => write!(f, "{n}"),
        }
    }
}

/// Measurement unit (`ref_unit = char16`: "meter", "degree", ...).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RefUnit {
    /// Metres.
    Meter,
    /// Degrees.
    Degree,
    /// Anything else, by name.
    Named(String),
}

impl RefUnit {
    /// Parse a unit name.
    pub fn parse(s: &str) -> RefUnit {
        match s.trim().to_ascii_lowercase().as_str() {
            "meter" | "metre" | "m" => RefUnit::Meter,
            "degree" | "deg" => RefUnit::Degree,
            other => RefUnit::Named(other.to_string()),
        }
    }
}

impl fmt::Display for RefUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefUnit::Meter => write!(f, "meter"),
            RefUnit::Degree => write!(f, "degree"),
            RefUnit::Named(n) => write!(f, "{n}"),
        }
    }
}

/// Axis-aligned bounding box: the `box` primitive class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoBox {
    /// Minimum x (west).
    pub xmin: f64,
    /// Minimum y (south).
    pub ymin: f64,
    /// Maximum x (east).
    pub xmax: f64,
    /// Maximum y (north).
    pub ymax: f64,
}

impl GeoBox {
    /// Build, normalizing so min ≤ max on both axes.
    pub fn new(xmin: f64, ymin: f64, xmax: f64, ymax: f64) -> GeoBox {
        GeoBox {
            xmin: xmin.min(xmax),
            ymin: ymin.min(ymax),
            xmax: xmin.max(xmax),
            ymax: ymin.max(ymax),
        }
    }

    /// Width along x.
    pub fn width(&self) -> f64 {
        self.xmax - self.xmin
    }

    /// Height along y.
    pub fn height(&self) -> f64 {
        self.ymax - self.ymin
    }

    /// Area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// True if the boxes share any point (closed boxes: touching counts).
    pub fn intersects(&self, other: &GeoBox) -> bool {
        self.xmin <= other.xmax
            && other.xmin <= self.xmax
            && self.ymin <= other.ymax
            && other.ymin <= self.ymax
    }

    /// Intersection box, if any.
    pub fn intersection(&self, other: &GeoBox) -> Option<GeoBox> {
        if !self.intersects(other) {
            return None;
        }
        Some(GeoBox {
            xmin: self.xmin.max(other.xmin),
            ymin: self.ymin.max(other.ymin),
            xmax: self.xmax.min(other.xmax),
            ymax: self.ymax.min(other.ymax),
        })
    }

    /// Smallest box covering both.
    pub fn union(&self, other: &GeoBox) -> GeoBox {
        GeoBox {
            xmin: self.xmin.min(other.xmin),
            ymin: self.ymin.min(other.ymin),
            xmax: self.xmax.max(other.xmax),
            ymax: self.ymax.max(other.ymax),
        }
    }

    /// True if `other` lies fully inside `self`.
    pub fn contains(&self, other: &GeoBox) -> bool {
        self.xmin <= other.xmin
            && self.ymin <= other.ymin
            && self.xmax >= other.xmax
            && self.ymax >= other.ymax
    }

    /// True if the point is inside (closed).
    pub fn contains_point(&self, x: f64, y: f64) -> bool {
        x >= self.xmin && x <= self.xmax && y >= self.ymin && y <= self.ymax
    }

    /// The paper's `common()` assertion over a set of extents: all pairwise
    /// "the same or overlap". Empty and singleton sets are trivially common.
    pub fn common(extents: &[GeoBox]) -> bool {
        for i in 0..extents.len() {
            for j in (i + 1)..extents.len() {
                if !extents[i].intersects(&extents[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// Total ordering for value identity.
    pub fn total_cmp(&self, other: &GeoBox) -> std::cmp::Ordering {
        self.xmin
            .total_cmp(&other.xmin)
            .then(self.ymin.total_cmp(&other.ymin))
            .then(self.xmax.total_cmp(&other.xmax))
            .then(self.ymax.total_cmp(&other.ymax))
    }

    /// External representation `"(xmin, ymin, xmax, ymax)"`.
    pub fn external_repr(&self) -> String {
        format!(
            "({}, {}, {}, {})",
            self.xmin, self.ymin, self.xmax, self.ymax
        )
    }

    /// Parse the external representation.
    pub fn parse_external(s: &str) -> AdtResult<GeoBox> {
        let inner = s
            .trim()
            .strip_prefix('(')
            .and_then(|t| t.strip_suffix(')'))
            .ok_or_else(|| AdtError::Parse(format!("box must be parenthesized: {s:?}")))?;
        let parts: Vec<f64> = inner
            .split(',')
            .map(|p| {
                p.trim()
                    .parse::<f64>()
                    .map_err(|_| AdtError::Parse(format!("bad box field {p:?}")))
            })
            .collect::<AdtResult<_>>()?;
        if parts.len() != 4 {
            return Err(AdtError::Parse(format!(
                "box needs 4 fields, got {}",
                parts.len()
            )));
        }
        Ok(GeoBox::new(parts[0], parts[1], parts[2], parts[3]))
    }
}

impl fmt::Display for GeoBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.external_repr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x0: f64, y0: f64, x1: f64, y1: f64) -> GeoBox {
        GeoBox::new(x0, y0, x1, y1)
    }

    #[test]
    fn construction_normalizes() {
        let g = b(10.0, 5.0, -10.0, -5.0);
        assert_eq!((g.xmin, g.ymin, g.xmax, g.ymax), (-10.0, -5.0, 10.0, 5.0));
        assert_eq!(g.area(), 200.0);
    }

    #[test]
    fn intersection_union() {
        let a = b(0.0, 0.0, 10.0, 10.0);
        let c = b(5.0, 5.0, 15.0, 15.0);
        let i = a.intersection(&c).unwrap();
        assert_eq!((i.xmin, i.ymin, i.xmax, i.ymax), (5.0, 5.0, 10.0, 10.0));
        let u = a.union(&c);
        assert_eq!((u.xmin, u.ymin, u.xmax, u.ymax), (0.0, 0.0, 15.0, 15.0));
        let far = b(20.0, 20.0, 30.0, 30.0);
        assert!(a.intersection(&far).is_none());
    }

    #[test]
    fn touching_boxes_intersect() {
        let a = b(0.0, 0.0, 1.0, 1.0);
        let c = b(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&c));
    }

    #[test]
    fn containment() {
        let outer = b(0.0, 0.0, 10.0, 10.0);
        let inner = b(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains_point(0.0, 10.0));
        assert!(!outer.contains_point(-0.1, 5.0));
    }

    #[test]
    fn common_assertion_semantics() {
        // Paper Figure 3: common(bands.spatialextent) guards P20.
        let africa = b(-20.0, -35.0, 55.0, 38.0);
        let sahara = b(-15.0, 15.0, 35.0, 32.0);
        let amazon = b(-75.0, -15.0, -50.0, 5.0);
        assert!(GeoBox::common(&[africa, sahara]));
        assert!(!GeoBox::common(&[africa, sahara, amazon]));
        assert!(GeoBox::common(&[]));
        assert!(GeoBox::common(&[africa]));
    }

    #[test]
    fn external_repr_round_trip() {
        let g = b(-1.5, 2.0, 3.25, 4.0);
        let back = GeoBox::parse_external(&g.external_repr()).unwrap();
        assert_eq!(g, back);
        assert!(GeoBox::parse_external("(1, 2, 3)").is_err());
        assert!(GeoBox::parse_external("1, 2, 3, 4").is_err());
        assert!(GeoBox::parse_external("(a, 2, 3, 4)").is_err());
    }

    #[test]
    fn ref_system_parsing() {
        assert_eq!(RefSystem::parse("long/lat"), RefSystem::LongLat);
        assert_eq!(RefSystem::parse("UTM 33"), RefSystem::Utm(33));
        assert_eq!(RefSystem::parse("UTM"), RefSystem::Utm(0));
        assert_eq!(
            RefSystem::parse("Lambert"),
            RefSystem::Named("Lambert".into())
        );
        assert_eq!(RefSystem::parse("UTM 33").to_string(), "UTM 33");
    }

    #[test]
    fn ref_unit_parsing() {
        assert_eq!(RefUnit::parse("meter"), RefUnit::Meter);
        assert_eq!(RefUnit::parse("Degree"), RefUnit::Degree);
        assert_eq!(RefUnit::parse("feet"), RefUnit::Named("feet".into()));
    }
}
