//! Type tags for primitive classes.
//!
//! The paper's prototype inherited its primitive classes from the Postgres
//! ADT facility ("Examples of primitive classes are the integer, float,
//! string and boolean class"), extended with the `image` class and the
//! `matrix` / `vector` classes appearing in the PCA network of Figure 4,
//! plus the extent types `box` (spatial) and `abstime` (temporal) used in
//! the `landcover` class listing of §2.1.2.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of a [`crate::Value`]: one tag per primitive class.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TypeTag {
    /// Boolean class.
    Bool,
    /// 16-bit integer (`int2` in the paper's pixel/attribute types).
    Int2,
    /// 32-bit integer (`int4`).
    Int4,
    /// 32-bit float (`float4`).
    Float4,
    /// 64-bit float (`float8`).
    Float8,
    /// Fixed-width string (`char16` in the `landcover` listing).
    Char16,
    /// Unbounded string (file paths, names).
    Text,
    /// Absolute time (`abstime`), the temporal extent type.
    AbsTime,
    /// Bounding box (`box`), the spatial extent type.
    GeoBox,
    /// Raster image primitive class (§2.1.3 listing).
    Image,
    /// Dense 2-D matrix (Figure 4).
    Matrix,
    /// Dense vector (Figure 4).
    Vector,
    /// Reference to an object of a non-primitive class (the §4.3 extension
    /// lifting limitation 1: "non-primitive classes can only be composed of
    /// primitive classes"). The *referenced class* is declared on the
    /// attribute definition in the kernel schema; at this level a reference
    /// is just a typed object identifier.
    ObjRef,
    /// Homogeneous set of another type (`SETOF bands` in Figure 3).
    Set(Box<TypeTag>),
    /// Wildcard used by generic operators (`card`, `anyof`).
    Any,
}

impl TypeTag {
    /// A set of this type.
    pub fn set_of(self) -> TypeTag {
        TypeTag::Set(Box::new(self))
    }

    /// True if a value of type `other` may be bound to a slot of this type.
    ///
    /// `Any` is compatible in *both* directions: an `Any` slot takes
    /// everything, and an `Any`-typed producer (e.g. the `anyof` operator,
    /// whose static type is unknown) may feed any slot — the concrete type
    /// is re-checked at invocation time with the actual value. Numeric slots
    /// are otherwise exact (Gaea, like Postgres, requires explicit casts).
    pub fn accepts(&self, other: &TypeTag) -> bool {
        match (self, other) {
            (TypeTag::Any, _) | (_, TypeTag::Any) => true,
            (TypeTag::Set(a), TypeTag::Set(b)) => a.accepts(b),
            (a, b) => a == b,
        }
    }

    /// True for the numeric primitive classes.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            TypeTag::Int2 | TypeTag::Int4 | TypeTag::Float4 | TypeTag::Float8
        )
    }

    /// Element type if this is a set.
    pub fn element(&self) -> Option<&TypeTag> {
        match self {
            TypeTag::Set(e) => Some(e),
            _ => None,
        }
    }

    /// Parse the textual names used in the paper's DDL listings
    /// (`char16`, `float4`, `image`, `box`, `abstime`, ...).
    pub fn parse(name: &str) -> Option<TypeTag> {
        let name = name.trim();
        if let Some(inner) = name
            .strip_prefix("setof ")
            .or_else(|| name.strip_prefix("SETOF "))
        {
            return TypeTag::parse(inner).map(|t| t.set_of());
        }
        Some(match name {
            "bool" | "boolean" => TypeTag::Bool,
            "int2" => TypeTag::Int2,
            "int4" | "int" | "integer" => TypeTag::Int4,
            "float4" => TypeTag::Float4,
            "float8" | "float" => TypeTag::Float8,
            "char16" => TypeTag::Char16,
            "text" | "string" => TypeTag::Text,
            "abstime" => TypeTag::AbsTime,
            "box" => TypeTag::GeoBox,
            "image" => TypeTag::Image,
            "matrix" => TypeTag::Matrix,
            "vector" => TypeTag::Vector,
            "objref" | "ref" => TypeTag::ObjRef,
            "any" => TypeTag::Any,
            _ => return None,
        })
    }
}

impl fmt::Display for TypeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeTag::Bool => write!(f, "bool"),
            TypeTag::Int2 => write!(f, "int2"),
            TypeTag::Int4 => write!(f, "int4"),
            TypeTag::Float4 => write!(f, "float4"),
            TypeTag::Float8 => write!(f, "float8"),
            TypeTag::Char16 => write!(f, "char16"),
            TypeTag::Text => write!(f, "text"),
            TypeTag::AbsTime => write!(f, "abstime"),
            TypeTag::GeoBox => write!(f, "box"),
            TypeTag::Image => write!(f, "image"),
            TypeTag::Matrix => write!(f, "matrix"),
            TypeTag::Vector => write!(f, "vector"),
            TypeTag::ObjRef => write!(f, "objref"),
            TypeTag::Set(e) => write!(f, "setof {e}"),
            TypeTag::Any => write!(f, "any"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_display() {
        for t in [
            TypeTag::Bool,
            TypeTag::Int2,
            TypeTag::Int4,
            TypeTag::Float4,
            TypeTag::Float8,
            TypeTag::Char16,
            TypeTag::Text,
            TypeTag::AbsTime,
            TypeTag::GeoBox,
            TypeTag::Image,
            TypeTag::Matrix,
            TypeTag::Vector,
            TypeTag::ObjRef,
            TypeTag::Image.set_of(),
            TypeTag::Any,
        ] {
            assert_eq!(TypeTag::parse(&t.to_string()), Some(t));
        }
    }

    #[test]
    fn nested_sets_parse() {
        assert_eq!(
            TypeTag::parse("setof setof image"),
            Some(TypeTag::Image.set_of().set_of())
        );
    }

    #[test]
    fn accepts_any() {
        assert!(TypeTag::Any.accepts(&TypeTag::Image));
        assert!(TypeTag::Image.accepts(&TypeTag::Any)); // gradual: unknown producer
        assert!(TypeTag::Set(Box::new(TypeTag::Any)).accepts(&TypeTag::Image.set_of()));
        assert!(TypeTag::Image.set_of().accepts(&TypeTag::Any.set_of()));
        assert!(!TypeTag::Image.accepts(&TypeTag::Matrix));
        assert!(!TypeTag::Image.set_of().accepts(&TypeTag::Image));
    }

    #[test]
    fn numeric_classification() {
        assert!(TypeTag::Int2.is_numeric());
        assert!(TypeTag::Float8.is_numeric());
        assert!(!TypeTag::Image.is_numeric());
        assert!(!TypeTag::Text.is_numeric());
    }

    #[test]
    fn unknown_name_is_none() {
        assert_eq!(TypeTag::parse("raster"), None);
    }
}
