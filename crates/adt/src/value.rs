//! Value-identified objects of primitive classes (paper §2.1.3).
//!
//! "In primitive classes, data objects are value identified, i.e., the
//! object identifier for a data object is its value." [`Value`] therefore
//! implements *total* `Eq`, `Ord` and `Hash` — floats compare and hash by
//! IEEE total order / bit pattern, so every value is its own stable
//! identity, NaNs included.

use crate::error::{AdtError, AdtResult};
use crate::geo::GeoBox;
use crate::image::Image;
use crate::matrix::{Matrix, VectorD};
use crate::time::AbsTime;
use crate::types::TypeTag;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A value of some primitive class.
///
/// Large payloads (`Image`, `Matrix`, `Vector`) are held behind [`Arc`] so
/// values stay cheap to clone as they move through operator networks,
/// heap relations and task records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL-ish null; absent attribute.
    Null,
    /// Boolean class.
    Bool(bool),
    /// 16-bit integer class.
    Int2(i16),
    /// 32-bit integer class.
    Int4(i32),
    /// 32-bit float class.
    Float4(f32),
    /// 64-bit float class.
    Float8(f64),
    /// Fixed-width string class (`char16`); stored as a string, length
    /// enforced at class-definition time, not here.
    Char16(String),
    /// Unbounded string.
    Text(String),
    /// Absolute time.
    AbsTime(AbsTime),
    /// Spatial bounding box.
    GeoBox(GeoBox),
    /// Raster image.
    Image(Arc<Image>),
    /// Dense matrix.
    Matrix(Arc<Matrix>),
    /// Dense vector.
    Vector(Arc<VectorD>),
    /// Reference to a non-primitive object by OID (the §4.3 extension:
    /// attributes may point at objects of other non-primitive classes; the
    /// kernel validates the target class at insert time).
    ObjRef(u64),
    /// Homogeneous set (`SETOF`). Order is preserved (sets in the paper's
    /// templates are argument collections, not mathematical sets).
    Set(Vec<Value>),
}

impl Value {
    /// Build an image value.
    pub fn image(img: Image) -> Value {
        Value::Image(Arc::new(img))
    }

    /// Build a matrix value.
    pub fn matrix(m: Matrix) -> Value {
        Value::Matrix(Arc::new(m))
    }

    /// Build a vector value.
    pub fn vector(v: VectorD) -> Value {
        Value::Vector(Arc::new(v))
    }

    /// The type tag of this value. Sets report their element type from the
    /// first member (empty sets are `Set(Any)`).
    pub fn type_tag(&self) -> TypeTag {
        match self {
            Value::Null => TypeTag::Any,
            Value::Bool(_) => TypeTag::Bool,
            Value::Int2(_) => TypeTag::Int2,
            Value::Int4(_) => TypeTag::Int4,
            Value::Float4(_) => TypeTag::Float4,
            Value::Float8(_) => TypeTag::Float8,
            Value::Char16(_) => TypeTag::Char16,
            Value::Text(_) => TypeTag::Text,
            Value::AbsTime(_) => TypeTag::AbsTime,
            Value::GeoBox(_) => TypeTag::GeoBox,
            Value::Image(_) => TypeTag::Image,
            Value::Matrix(_) => TypeTag::Matrix,
            Value::Vector(_) => TypeTag::Vector,
            Value::ObjRef(_) => TypeTag::ObjRef,
            Value::Set(items) => items
                .first()
                .map(|v| v.type_tag().set_of())
                .unwrap_or(TypeTag::Any.set_of()),
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (`int2`/`int4`/`float4`/`float8`), if applicable.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int2(v) => Some(*v as f64),
            Value::Int4(v) => Some(*v as f64),
            Value::Float4(v) => Some(*v as f64),
            Value::Float8(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int2(v) => Some(*v as i64),
            Value::Int4(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view (both string classes).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Char16(s) | Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Image view.
    pub fn as_image(&self) -> Option<&Arc<Image>> {
        match self {
            Value::Image(i) => Some(i),
            _ => None,
        }
    }

    /// Matrix view.
    pub fn as_matrix(&self) -> Option<&Arc<Matrix>> {
        match self {
            Value::Matrix(m) => Some(m),
            _ => None,
        }
    }

    /// Vector view.
    pub fn as_vector(&self) -> Option<&Arc<VectorD>> {
        match self {
            Value::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// Set view.
    pub fn as_set(&self) -> Option<&[Value]> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Object-reference view.
    pub fn as_objref(&self) -> Option<u64> {
        match self {
            Value::ObjRef(o) => Some(*o),
            _ => None,
        }
    }

    /// GeoBox view.
    pub fn as_geobox(&self) -> Option<GeoBox> {
        match self {
            Value::GeoBox(b) => Some(*b),
            _ => None,
        }
    }

    /// AbsTime view.
    pub fn as_abstime(&self) -> Option<AbsTime> {
        match self {
            Value::AbsTime(t) => Some(*t),
            _ => None,
        }
    }

    /// Typed extraction with a descriptive error, for operator bodies.
    pub fn expect_image(&self, ctx: &str) -> AdtResult<&Arc<Image>> {
        self.as_image().ok_or_else(|| AdtError::TypeMismatch {
            context: ctx.into(),
            expected: "image".into(),
            found: self.type_tag().to_string(),
        })
    }

    /// Typed extraction with a descriptive error.
    pub fn expect_matrix(&self, ctx: &str) -> AdtResult<&Arc<Matrix>> {
        self.as_matrix().ok_or_else(|| AdtError::TypeMismatch {
            context: ctx.into(),
            expected: "matrix".into(),
            found: self.type_tag().to_string(),
        })
    }

    /// Typed extraction with a descriptive error.
    pub fn expect_set(&self, ctx: &str) -> AdtResult<&[Value]> {
        self.as_set().ok_or_else(|| AdtError::TypeMismatch {
            context: ctx.into(),
            expected: "setof _".into(),
            found: self.type_tag().to_string(),
        })
    }

    /// Typed extraction with a descriptive error.
    pub fn expect_f64(&self, ctx: &str) -> AdtResult<f64> {
        self.as_f64().ok_or_else(|| AdtError::TypeMismatch {
            context: ctx.into(),
            expected: "numeric".into(),
            found: self.type_tag().to_string(),
        })
    }

    /// Cardinality of a set value (the `card()` builtin of Figure 3).
    pub fn card(&self) -> AdtResult<usize> {
        Ok(self.expect_set("card")?.len())
    }

    /// Discriminant rank for cross-variant ordering.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int2(_) => 2,
            Value::Int4(_) => 3,
            Value::Float4(_) => 4,
            Value::Float8(_) => 5,
            Value::Char16(_) => 6,
            Value::Text(_) => 7,
            Value::AbsTime(_) => 8,
            Value::GeoBox(_) => 9,
            Value::Image(_) => 10,
            Value::Matrix(_) => 11,
            Value::Vector(_) => 12,
            Value::ObjRef(_) => 13,
            Value::Set(_) => 14,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int2(a), Int2(b)) => a.cmp(b),
            (Int4(a), Int4(b)) => a.cmp(b),
            (Float4(a), Float4(b)) => a.total_cmp(b),
            (Float8(a), Float8(b)) => a.total_cmp(b),
            (Char16(a), Char16(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (AbsTime(a), AbsTime(b)) => a.cmp(b),
            (GeoBox(a), GeoBox(b)) => a.total_cmp(b),
            (Image(a), Image(b)) => a.total_cmp(b),
            (Matrix(a), Matrix(b)) => a.total_cmp(b),
            (Vector(a), Vector(b)) => a.total_cmp(b),
            (ObjRef(a), ObjRef(b)) => a.cmp(b),
            (Set(a), Set(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.cmp(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int2(v) => v.hash(state),
            Value::Int4(v) => v.hash(state),
            Value::Float4(v) => v.to_bits().hash(state),
            Value::Float8(v) => v.to_bits().hash(state),
            Value::Char16(s) | Value::Text(s) => s.hash(state),
            Value::AbsTime(t) => t.hash(state),
            Value::GeoBox(b) => {
                b.xmin.to_bits().hash(state);
                b.ymin.to_bits().hash(state);
                b.xmax.to_bits().hash(state);
                b.ymax.to_bits().hash(state);
            }
            Value::Image(img) => {
                img.nrow().hash(state);
                img.ncol().hash(state);
                img.pixtype().hash(state);
                for i in 0..img.len() {
                    img.get_flat(i).to_bits().hash(state);
                }
            }
            Value::Matrix(m) => {
                m.rows().hash(state);
                m.cols().hash(state);
                for v in m.data() {
                    v.to_bits().hash(state);
                }
            }
            Value::Vector(v) => {
                v.len().hash(state);
                for x in v.data() {
                    x.to_bits().hash(state);
                }
            }
            Value::ObjRef(o) => o.hash(state),
            Value::Set(items) => {
                items.len().hash(state);
                for v in items {
                    v.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int2(v) => write!(f, "{v}"),
            Value::Int4(v) => write!(f, "{v}"),
            Value::Float4(v) => write!(f, "{v}"),
            Value::Float8(v) => write!(f, "{v}"),
            Value::Char16(s) | Value::Text(s) => write!(f, "{s:?}"),
            Value::AbsTime(t) => write!(f, "{t}"),
            Value::GeoBox(b) => write!(f, "{b}"),
            Value::Image(img) => {
                write!(f, "image({}x{}, {})", img.nrow(), img.ncol(), img.pixtype())
            }
            Value::Matrix(m) => write!(f, "matrix({}x{})", m.rows(), m.cols()),
            Value::Vector(v) => write!(f, "vector(len {})", v.len()),
            Value::ObjRef(o) => write!(f, "ref(obj:{o})"),
            Value::Set(items) => {
                write!(f, "{{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i16> for Value {
    fn from(v: i16) -> Value {
        Value::Int2(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int4(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Float4(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float8(v)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Text(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Text(s)
    }
}
impl From<AbsTime> for Value {
    fn from(t: AbsTime) -> Value {
        Value::AbsTime(t)
    }
}
impl From<GeoBox> for Value {
    fn from(b: GeoBox) -> Value {
        Value::GeoBox(b)
    }
}
impl From<Image> for Value {
    fn from(i: Image) -> Value {
        Value::image(i)
    }
}
impl From<Matrix> for Value {
    fn from(m: Matrix) -> Value {
        Value::matrix(m)
    }
}
impl From<VectorD> for Value {
    fn from(v: VectorD) -> Value {
        Value::vector(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Set(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::PixType;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn value_identity_floats_total() {
        // NaN equals itself under value identity (bit-pattern semantics).
        let nan1 = Value::Float8(f64::NAN);
        let nan2 = Value::Float8(f64::NAN);
        assert_eq!(nan1, nan2);
        assert_eq!(hash_of(&nan1), hash_of(&nan2));
        // -0.0 and +0.0 are distinct objects (different bit patterns).
        assert_ne!(Value::Float8(-0.0), Value::Float8(0.0));
    }

    #[test]
    fn cross_variant_ordering_is_stable() {
        let mut vals = vec![
            Value::Text("b".into()),
            Value::Int4(3),
            Value::Bool(true),
            Value::Null,
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Int4(3),
                Value::Text("b".into()),
            ]
        );
    }

    #[test]
    fn set_ordering_lexicographic() {
        let a = Value::Set(vec![Value::Int4(1), Value::Int4(2)]);
        let b = Value::Set(vec![Value::Int4(1), Value::Int4(3)]);
        let c = Value::Set(vec![Value::Int4(1)]);
        assert!(a < b);
        assert!(c < a);
    }

    #[test]
    fn image_values_compare_by_content() {
        let i1 = Value::image(Image::filled(2, 2, PixType::Char, 5.0));
        let i2 = Value::image(Image::filled(2, 2, PixType::Char, 5.0));
        let i3 = Value::image(Image::filled(2, 2, PixType::Char, 6.0));
        assert_eq!(i1, i2);
        assert_eq!(hash_of(&i1), hash_of(&i2));
        assert_ne!(i1, i3);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int2(4).as_f64(), Some(4.0));
        assert_eq!(Value::Float4(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Text("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Int4(1).as_i64(), Some(1));
        assert_eq!(Value::Float8(1.0).as_i64(), None);
    }

    #[test]
    fn card_builtin() {
        let s = Value::Set(vec![Value::Int4(1), Value::Int4(2), Value::Int4(3)]);
        assert_eq!(s.card().unwrap(), 3);
        assert!(Value::Int4(1).card().is_err());
    }

    #[test]
    fn type_tags() {
        assert_eq!(Value::Int4(1).type_tag(), TypeTag::Int4);
        assert_eq!(
            Value::Set(vec![Value::Float8(1.0)]).type_tag(),
            TypeTag::Float8.set_of()
        );
        assert_eq!(Value::Set(vec![]).type_tag(), TypeTag::Any.set_of());
    }

    #[test]
    fn expect_helpers_report_context() {
        let err = Value::Int4(1).expect_image("composite").unwrap_err();
        assert!(err.to_string().contains("composite"));
        assert!(Value::Int4(1).expect_f64("scale").is_ok());
        assert!(Value::Text("x".into()).expect_f64("scale").is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Value::Set(vec![Value::Int4(1), Value::Int4(2)]).to_string(),
            "{1, 2}"
        );
        let img = Value::image(Image::zeros(3, 4, PixType::Int2));
        assert_eq!(img.to_string(), "image(3x4, int2)");
    }

    #[test]
    fn objref_identity_ordering_and_views() {
        let a = Value::ObjRef(41);
        let b = Value::ObjRef(42);
        assert_ne!(a, b);
        assert_eq!(a, Value::ObjRef(41));
        assert_eq!(hash_of(&a), hash_of(&Value::ObjRef(41)));
        assert!(a < b);
        assert_eq!(a.as_objref(), Some(41));
        assert_eq!(Value::Int4(41).as_objref(), None);
        assert_eq!(a.type_tag(), TypeTag::ObjRef);
        assert_eq!(a.to_string(), "ref(obj:41)");
        // Serde round trip preserves identity.
        let json = serde_json::to_string(&a).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
