//! Compound operators as data-flow networks (paper §2.1.3, Figure 4).
//!
//! "It is observed that the operator `pca()` is a compound operator. It is
//! composed of a network of intercommunicating operators [...] This network
//! can be seen as a data flow network of functional operators that are
//! applied on primitive classes."
//!
//! A [`DataflowGraph`] is an append-only DAG: node *i* may consume graph
//! inputs and the outputs of nodes *< i* only, which makes cycles
//! unrepresentable and execution a single left-to-right pass. The graph is
//! type-checked against an [`OperatorRegistry`] before registration, so a
//! registered compound operator is statically well-formed.

use crate::error::{AdtError, AdtResult};
use crate::operator::OperatorRegistry;
use crate::types::TypeTag;
use crate::value::Value;
use std::fmt;

/// Where a node input comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The i-th graph input.
    Input(usize),
    /// The output of the i-th node.
    Node(usize),
}

/// One operator invocation inside the network.
#[derive(Debug, Clone)]
pub struct Node {
    /// Operator name (resolved in the registry at validation time).
    pub op: String,
    /// Argument sources, in operator-parameter order.
    pub inputs: Vec<Source>,
}

/// A compound operator: a named, typed dataflow network.
#[derive(Debug, Clone)]
pub struct DataflowGraph {
    name: String,
    inputs: Vec<(String, TypeTag)>,
    nodes: Vec<Node>,
    output: Source,
}

impl DataflowGraph {
    /// Graph name (becomes the operator name on registration).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared graph inputs.
    pub fn inputs(&self) -> &[(String, TypeTag)] {
        &self.inputs
    }

    /// Nodes in execution order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The source producing the graph result.
    pub fn output(&self) -> Source {
        self.output
    }

    /// Validate structure and types; returns the graph's output type.
    ///
    /// Checks: every source refers to an existing input or an *earlier* node
    /// (DAG by construction); every operator exists; every node application
    /// type-checks; the output source is valid.
    pub fn validate(&self, registry: &OperatorRegistry) -> AdtResult<TypeTag> {
        let mut node_types: Vec<TypeTag> = Vec::with_capacity(self.nodes.len());
        let resolve = |src: Source, upto: usize, node_types: &[TypeTag]| -> AdtResult<TypeTag> {
            match src {
                Source::Input(i) => self.inputs.get(i).map(|(_, t)| t.clone()).ok_or_else(|| {
                    AdtError::MalformedDataflow(format!(
                        "{}: reference to missing graph input {i}",
                        self.name
                    ))
                }),
                Source::Node(i) => {
                    if i >= upto {
                        Err(AdtError::MalformedDataflow(format!(
                            "{}: node reference {i} is not earlier in the network (forward edges/cycles are not allowed)",
                            self.name
                        )))
                    } else {
                        Ok(node_types[i].clone())
                    }
                }
            }
        };
        for (idx, node) in self.nodes.iter().enumerate() {
            let def = registry.get(&node.op)?;
            let mut arg_types = Vec::with_capacity(node.inputs.len());
            for src in &node.inputs {
                arg_types.push(resolve(*src, idx, &node_types)?);
            }
            def.sig
                .check(&format!("{}::{}", self.name, node.op), &arg_types)?;
            // A node's static type is the declared output of its operator;
            // `Any`-returning ops (e.g. anyof) stay `Any` and are accepted
            // anywhere downstream.
            node_types.push(def.sig.output.clone());
        }
        resolve(self.output, self.nodes.len(), &node_types)
    }

    /// Execute the network on `args`.
    pub fn execute(&self, registry: &OperatorRegistry, args: &[Value]) -> AdtResult<Value> {
        if args.len() != self.inputs.len() {
            return Err(AdtError::ArityMismatch {
                op: self.name.clone(),
                expected: self.inputs.len(),
                found: args.len(),
            });
        }
        let mut results: Vec<Value> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let mut node_args = Vec::with_capacity(node.inputs.len());
            for src in &node.inputs {
                node_args.push(match src {
                    Source::Input(i) => args[*i].clone(),
                    Source::Node(i) => results[*i].clone(),
                });
            }
            results.push(registry.invoke(&node.op, &node_args)?);
        }
        Ok(match self.output {
            Source::Input(i) => args[i].clone(),
            Source::Node(i) => results[i].clone(),
        })
    }

    /// Number of operator invocations per application.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl fmt::Display for DataflowGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "compound operator {} {{", self.name)?;
        for (i, (name, tag)) in self.inputs.iter().enumerate() {
            writeln!(f, "  in{i}: {name}: {tag}")?;
        }
        for (i, node) in self.nodes.iter().enumerate() {
            write!(f, "  n{i} = {}(", node.op)?;
            for (j, src) in node.inputs.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                match src {
                    Source::Input(k) => write!(f, "in{k}")?,
                    Source::Node(k) => write!(f, "n{k}")?,
                }
            }
            writeln!(f, ")")?;
        }
        match self.output {
            Source::Input(i) => writeln!(f, "  out = in{i}")?,
            Source::Node(i) => writeln!(f, "  out = n{i}")?,
        }
        write!(f, "}}")
    }
}

/// Fluent constructor for [`DataflowGraph`].
///
/// ```
/// use gaea_adt::{DataflowBuilder, OperatorRegistry, TypeTag, Value};
/// let mut b = DataflowBuilder::new("add3");
/// let x = b.input("x", TypeTag::Float8);
/// let y = b.input("y", TypeTag::Float8);
/// let z = b.input("z", TypeTag::Float8);
/// let xy = b.node("add", vec![x, y]);
/// let xyz = b.node("add", vec![xy, z]);
/// let graph = b.finish(xyz);
/// let reg = OperatorRegistry::with_builtins();
/// assert_eq!(
///     graph.execute(&reg, &[1.0.into(), 2.0.into(), 3.0.into()]).unwrap(),
///     Value::Float8(6.0),
/// );
/// ```
#[derive(Debug)]
pub struct DataflowBuilder {
    name: String,
    inputs: Vec<(String, TypeTag)>,
    nodes: Vec<Node>,
}

impl DataflowBuilder {
    /// Start a new graph.
    pub fn new(name: &str) -> DataflowBuilder {
        DataflowBuilder {
            name: name.into(),
            inputs: Vec::new(),
            nodes: Vec::new(),
        }
    }

    /// Declare a graph input; returns its source handle.
    pub fn input(&mut self, name: &str, tag: TypeTag) -> Source {
        self.inputs.push((name.into(), tag));
        Source::Input(self.inputs.len() - 1)
    }

    /// Append an operator invocation; returns its output handle.
    pub fn node(&mut self, op: &str, inputs: Vec<Source>) -> Source {
        self.nodes.push(Node {
            op: op.into(),
            inputs,
        });
        Source::Node(self.nodes.len() - 1)
    }

    /// Finish with the node (or input) that carries the result.
    pub fn finish(self, output: Source) -> DataflowGraph {
        DataflowGraph {
            name: self.name,
            inputs: self.inputs,
            nodes: self.nodes,
            output,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> OperatorRegistry {
        OperatorRegistry::with_builtins()
    }

    fn add3() -> DataflowGraph {
        let mut b = DataflowBuilder::new("add3");
        let x = b.input("x", TypeTag::Float8);
        let y = b.input("y", TypeTag::Float8);
        let z = b.input("z", TypeTag::Float8);
        let xy = b.node("add", vec![x, y]);
        let xyz = b.node("add", vec![xy, z]);
        b.finish(xyz)
    }

    #[test]
    fn executes_in_topological_order() {
        let g = add3();
        let r = registry();
        assert_eq!(g.validate(&r).unwrap(), TypeTag::Float8);
        assert_eq!(
            g.execute(&r, &[1.0.into(), 2.0.into(), 3.0.into()])
                .unwrap(),
            Value::Float8(6.0)
        );
    }

    #[test]
    fn registered_compound_behaves_like_primitive() {
        // Paper: a compound operator "can be applied as a primitive mapping
        // function between two primitive classes".
        let mut r = registry();
        r.register_compound(add3(), "ternary addition").unwrap();
        assert!(r.get("add3").unwrap().is_compound());
        assert_eq!(
            r.invoke("add3", &[1.0.into(), 2.0.into(), 4.0.into()])
                .unwrap(),
            Value::Float8(7.0)
        );
    }

    #[test]
    fn nested_compounds_compose() {
        let mut r = registry();
        r.register_compound(add3(), "ternary addition").unwrap();
        // add5(x1..x5) = add(add3(x1,x2,x3), add(x4,x5))
        let mut b = DataflowBuilder::new("add5");
        let xs: Vec<Source> = (0..5)
            .map(|i| b.input(&format!("x{i}"), TypeTag::Float8))
            .collect();
        let left = b.node("add3", vec![xs[0], xs[1], xs[2]]);
        let right = b.node("add", vec![xs[3], xs[4]]);
        let all = b.node("add", vec![left, right]);
        let g = b.finish(all);
        r.register_compound(g, "five-way addition").unwrap();
        let args: Vec<Value> = (1..=5).map(|i| Value::Float8(i as f64)).collect();
        assert_eq!(r.invoke("add5", &args).unwrap(), Value::Float8(15.0));
    }

    #[test]
    fn forward_reference_rejected() {
        // Build by hand to express a forward edge (cycle-equivalent).
        let g = DataflowGraph {
            name: "bad".into(),
            inputs: vec![("x".into(), TypeTag::Float8)],
            nodes: vec![Node {
                op: "add".into(),
                inputs: vec![Source::Input(0), Source::Node(0)], // self-reference
            }],
            output: Source::Node(0),
        };
        let err = g.validate(&registry()).unwrap_err();
        assert!(matches!(err, AdtError::MalformedDataflow(_)));
    }

    #[test]
    fn missing_input_rejected() {
        let g = DataflowGraph {
            name: "bad".into(),
            inputs: vec![],
            nodes: vec![Node {
                op: "add".into(),
                inputs: vec![Source::Input(0), Source::Input(1)],
            }],
            output: Source::Node(0),
        };
        assert!(matches!(
            g.validate(&registry()),
            Err(AdtError::MalformedDataflow(_))
        ));
    }

    #[test]
    fn type_errors_detected_statically() {
        let mut b = DataflowBuilder::new("bad_types");
        let img = b.input("img", TypeTag::Image);
        let n = b.node("add", vec![img, img]);
        let g = b.finish(n);
        assert!(matches!(
            g.validate(&registry()),
            Err(AdtError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn unknown_operator_detected() {
        let mut b = DataflowBuilder::new("bad_op");
        let x = b.input("x", TypeTag::Float8);
        let n = b.node("no_such_op", vec![x]);
        let g = b.finish(n);
        assert!(matches!(
            g.validate(&registry()),
            Err(AdtError::UnknownOperator(_))
        ));
    }

    #[test]
    fn identity_graph_passes_input_through() {
        let mut b = DataflowBuilder::new("ident");
        let x = b.input("x", TypeTag::Float8);
        let g = b.finish(x);
        let r = registry();
        assert_eq!(g.validate(&r).unwrap(), TypeTag::Float8);
        assert_eq!(g.execute(&r, &[9.0.into()]).unwrap(), Value::Float8(9.0));
    }

    #[test]
    fn execute_checks_arity() {
        let g = add3();
        assert!(matches!(
            g.execute(&registry(), &[1.0.into()]),
            Err(AdtError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn display_renders_network() {
        let s = add3().to_string();
        assert!(s.contains("compound operator add3"));
        assert!(s.contains("n1 = add(n0, in2)"));
    }
}
