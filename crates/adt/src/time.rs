//! Temporal extents (paper §2.1.2).
//!
//! Non-primitive classes carry a `TEMPORAL EXTENT` attribute of type
//! `abstime` (absolute time). Gaea's companion temporal work (Qiu et al.,
//! SSDM '92) models timestamps and intervals; here we provide an absolute
//! timestamp with calendar helpers plus a closed interval type, and the
//! `common()` overlap guard used in process assertions.

use crate::error::{AdtError, AdtResult};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Absolute time: seconds since the Unix epoch (may be negative).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct AbsTime(pub i64);

const DAYS_PER_400Y: i64 = 146_097;

fn is_leap(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn days_in_month(y: i64, m: u32) -> i64 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl AbsTime {
    /// Construct from a calendar date (proleptic Gregorian, UTC midnight).
    pub fn from_ymd(year: i64, month: u32, day: u32) -> AdtResult<AbsTime> {
        if !(1..=12).contains(&month) {
            return Err(AdtError::InvalidArgument(format!("month {month}")));
        }
        if day == 0 || (day as i64) > days_in_month(year, month) {
            return Err(AdtError::InvalidArgument(format!(
                "day {day} of {year}-{month:02}"
            )));
        }
        // Days from 1970-01-01 to year-01-01.
        let mut days: i64 = 0;
        if year >= 1970 {
            for y in 1970..year {
                days += if is_leap(y) { 366 } else { 365 };
            }
        } else {
            for y in year..1970 {
                days -= if is_leap(y) { 366 } else { 365 };
            }
        }
        for m in 1..month {
            days += days_in_month(year, m);
        }
        days += day as i64 - 1;
        Ok(AbsTime(days * 86_400))
    }

    /// Calendar date (year, month, day) of this timestamp (UTC).
    pub fn ymd(self) -> (i64, u32, u32) {
        let mut days = self.0.div_euclid(86_400);
        // Work in 400-year cycles to keep the loop bounded for huge values.
        let mut year = 1970i64;
        year += 400 * days.div_euclid(DAYS_PER_400Y);
        days = days.rem_euclid(DAYS_PER_400Y);
        loop {
            let ylen = if is_leap(year) { 366 } else { 365 };
            if days >= ylen {
                days -= ylen;
                year += 1;
            } else {
                break;
            }
        }
        let mut month = 1u32;
        loop {
            let mlen = days_in_month(year, month);
            if days >= mlen {
                days -= mlen;
                month += 1;
            } else {
                break;
            }
        }
        (year, month, days as u32 + 1)
    }

    /// Seconds since epoch.
    pub fn seconds(self) -> i64 {
        self.0
    }

    /// Timestamp offset by whole days.
    pub fn plus_days(self, days: i64) -> AbsTime {
        AbsTime(self.0 + days * 86_400)
    }

    /// ISO-8601-ish rendering (date only if midnight-aligned).
    pub fn render(self) -> String {
        let (y, m, d) = self.ymd();
        let rem = self.0.rem_euclid(86_400);
        if rem == 0 {
            format!("{y:04}-{m:02}-{d:02}")
        } else {
            let h = rem / 3600;
            let mi = (rem % 3600) / 60;
            let s = rem % 60;
            format!("{y:04}-{m:02}-{d:02}T{h:02}:{mi:02}:{s:02}")
        }
    }

    /// Parse `YYYY-MM-DD` (optionally with `THH:MM:SS`).
    pub fn parse(s: &str) -> AdtResult<AbsTime> {
        let s = s.trim();
        let (date, time) = match s.split_once('T') {
            Some((d, t)) => (d, Some(t)),
            None => (s, None),
        };
        let parts: Vec<&str> = date.split('-').collect();
        // A leading '-' means negative year; keep it simple: require y-m-d.
        if parts.len() != 3 {
            return Err(AdtError::Parse(format!("bad date {s:?}")));
        }
        let year: i64 = parts[0]
            .parse()
            .map_err(|_| AdtError::Parse(format!("bad year in {s:?}")))?;
        let month: u32 = parts[1]
            .parse()
            .map_err(|_| AdtError::Parse(format!("bad month in {s:?}")))?;
        let day: u32 = parts[2]
            .parse()
            .map_err(|_| AdtError::Parse(format!("bad day in {s:?}")))?;
        let mut t = AbsTime::from_ymd(year, month, day)?;
        if let Some(hms) = time {
            let tp: Vec<&str> = hms.split(':').collect();
            if tp.len() != 3 {
                return Err(AdtError::Parse(format!("bad time in {s:?}")));
            }
            let h: i64 = tp[0]
                .parse()
                .map_err(|_| AdtError::Parse(format!("bad hour in {s:?}")))?;
            let mi: i64 = tp[1]
                .parse()
                .map_err(|_| AdtError::Parse(format!("bad minute in {s:?}")))?;
            let sec: i64 = tp[2]
                .parse()
                .map_err(|_| AdtError::Parse(format!("bad second in {s:?}")))?;
            if !(0..24).contains(&h) || !(0..60).contains(&mi) || !(0..60).contains(&sec) {
                return Err(AdtError::Parse(format!("time out of range in {s:?}")));
            }
            t = AbsTime(t.0 + h * 3600 + mi * 60 + sec);
        }
        Ok(t)
    }
}

impl fmt::Display for AbsTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Closed time interval `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TimeRange {
    /// Inclusive start.
    pub start: AbsTime,
    /// Inclusive end.
    pub end: AbsTime,
}

impl TimeRange {
    /// Build, normalizing order.
    pub fn new(a: AbsTime, b: AbsTime) -> TimeRange {
        if a <= b {
            TimeRange { start: a, end: b }
        } else {
            TimeRange { start: b, end: a }
        }
    }

    /// Degenerate instant.
    pub fn instant(t: AbsTime) -> TimeRange {
        TimeRange { start: t, end: t }
    }

    /// Duration in seconds.
    pub fn duration(&self) -> i64 {
        self.end.0 - self.start.0
    }

    /// True if `t` lies inside (closed).
    pub fn contains(&self, t: AbsTime) -> bool {
        self.start <= t && t <= self.end
    }

    /// Overlap check (closed intervals: touching counts).
    pub fn intersects(&self, other: &TimeRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Intersection, if any.
    pub fn intersection(&self, other: &TimeRange) -> Option<TimeRange> {
        if !self.intersects(other) {
            return None;
        }
        Some(TimeRange {
            start: self.start.max(other.start),
            end: self.end.min(other.end),
        })
    }

    /// The `common()` assertion over timestamps/intervals.
    pub fn common(ranges: &[TimeRange]) -> bool {
        for i in 0..ranges.len() {
            for j in (i + 1)..ranges.len() {
                if !ranges[i].intersects(&ranges[j]) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(AbsTime(0).ymd(), (1970, 1, 1));
        assert_eq!(AbsTime::from_ymd(1970, 1, 1).unwrap(), AbsTime(0));
    }

    #[test]
    fn ymd_round_trip_sample_dates() {
        for (y, m, d) in [
            (1970, 1, 1),
            (1986, 1, 31), // the paper's "January 1986 for Africa" task
            (1988, 2, 29), // leap year in the NDVI scenario window
            (1989, 12, 31),
            (2000, 2, 29),
            (1900, 3, 1),
            (2026, 6, 11),
        ] {
            let t = AbsTime::from_ymd(y, m, d).unwrap();
            assert_eq!(t.ymd(), (y, m, d), "{y}-{m}-{d}");
        }
    }

    #[test]
    fn pre_epoch_dates() {
        let t = AbsTime::from_ymd(1969, 12, 31).unwrap();
        assert_eq!(t.0, -86_400);
        assert_eq!(t.ymd(), (1969, 12, 31));
    }

    #[test]
    fn rejects_bad_calendar_input() {
        assert!(AbsTime::from_ymd(1989, 2, 29).is_err()); // not a leap year
        assert!(AbsTime::from_ymd(1989, 13, 1).is_err());
        assert!(AbsTime::from_ymd(1989, 0, 1).is_err());
        assert!(AbsTime::from_ymd(1989, 6, 31).is_err());
    }

    #[test]
    fn parse_and_render() {
        let t = AbsTime::parse("1988-06-15").unwrap();
        assert_eq!(t.render(), "1988-06-15");
        let t2 = AbsTime::parse("1988-06-15T12:30:05").unwrap();
        assert_eq!(t2.render(), "1988-06-15T12:30:05");
        assert_eq!(t2.0 - t.0, 12 * 3600 + 30 * 60 + 5);
        assert!(AbsTime::parse("1988/06/15").is_err());
        assert!(AbsTime::parse("1988-06-15T25:00:00").is_err());
    }

    #[test]
    fn range_overlap_semantics() {
        let y1988 = TimeRange::new(
            AbsTime::from_ymd(1988, 1, 1).unwrap(),
            AbsTime::from_ymd(1988, 12, 31).unwrap(),
        );
        let y1989 = TimeRange::new(
            AbsTime::from_ymd(1989, 1, 1).unwrap(),
            AbsTime::from_ymd(1989, 12, 31).unwrap(),
        );
        let h2_1988 = TimeRange::new(
            AbsTime::from_ymd(1988, 7, 1).unwrap(),
            AbsTime::from_ymd(1989, 6, 30).unwrap(),
        );
        assert!(!y1988.intersects(&y1989));
        assert!(y1988.intersects(&h2_1988));
        assert!(y1989.intersects(&h2_1988));
        assert!(!TimeRange::common(&[y1988, y1989, h2_1988]));
        assert!(TimeRange::common(&[y1988, h2_1988]));
    }

    #[test]
    fn range_normalizes_and_contains() {
        let a = AbsTime::from_ymd(1990, 1, 1).unwrap();
        let b = AbsTime::from_ymd(1989, 1, 1).unwrap();
        let r = TimeRange::new(a, b);
        assert_eq!(r.start, b);
        assert!(r.contains(AbsTime::from_ymd(1989, 6, 1).unwrap()));
        assert!(!r.contains(AbsTime::from_ymd(1991, 1, 1).unwrap()));
        assert_eq!(TimeRange::instant(a).duration(), 0);
    }

    #[test]
    fn plus_days() {
        let t = AbsTime::from_ymd(1988, 2, 28).unwrap();
        assert_eq!(t.plus_days(1).ymd(), (1988, 2, 29));
        assert_eq!(t.plus_days(2).ymd(), (1988, 3, 1));
    }
}
