//! Dense `matrix` and `vector` primitive classes (Figure 4).
//!
//! The PCA compound operator of Figure 4 flows `SET OF image → SET OF matrix
//! → matrix → vector → SET OF image`; these are the intermediate carriers.
//! Numerically we only need real symmetric matrices (covariance) and plain
//! dense algebra, so everything is `f64` row-major.

use crate::error::{AdtError, AdtResult};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from row-major data.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> AdtResult<Matrix> {
        if data.len() != rows * cols {
            return Err(AdtError::ShapeMismatch(format!(
                "matrix {rows}x{cols} needs {} entries, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Read entry (r, c).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Write entry (r, c).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Copy of row `r`.
    pub fn row(&self, r: usize) -> Vec<f64> {
        self.data[r * self.cols..(r + 1) * self.cols].to_vec()
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> AdtResult<Matrix> {
        if self.cols != other.rows {
            return Err(AdtError::ShapeMismatch(format!(
                "matmul {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * other.cols + c] += a * other.get(k, c);
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &VectorD) -> AdtResult<VectorD> {
        if self.cols != v.len() {
            return Err(AdtError::ShapeMismatch(format!(
                "matvec {}x{} * len-{}",
                self.rows,
                self.cols,
                v.len()
            )));
        }
        let mut out = vec![0.0; self.rows];
        for (r, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for c in 0..self.cols {
                acc += self.get(r, c) * v.data()[c];
            }
            *slot = acc;
        }
        Ok(VectorD::new(out))
    }

    /// Element-wise scale.
    pub fn scale(&self, k: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * k).collect(),
        }
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Matrix) -> AdtResult<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(AdtError::ShapeMismatch("matrix add".into()));
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// Symmetry check with tolerance.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self.get(r, c) - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute off-diagonal entry (used by the Jacobi solver).
    pub fn max_off_diagonal(&self) -> f64 {
        let mut m = 0.0f64;
        for r in 0..self.rows {
            for c in 0..self.cols {
                if r != c {
                    m = m.max(self.get(r, c).abs());
                }
            }
        }
        m
    }

    /// Total ordering for value identity.
    pub fn total_cmp(&self, other: &Matrix) -> std::cmp::Ordering {
        self.rows
            .cmp(&other.rows)
            .then(self.cols.cmp(&other.cols))
            .then_with(|| {
                for (a, b) in self.data.iter().zip(&other.data) {
                    let o = a.total_cmp(b);
                    if o != std::cmp::Ordering::Equal {
                        return o;
                    }
                }
                std::cmp::Ordering::Equal
            })
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

/// Dense `f64` vector primitive class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorD {
    data: Vec<f64>,
}

impl VectorD {
    /// Wrap samples.
    pub fn new(data: Vec<f64>) -> VectorD {
        VectorD { data }
    }

    /// Zero vector.
    pub fn zeros(n: usize) -> VectorD {
        VectorD { data: vec![0.0; n] }
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow samples.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Dot product.
    pub fn dot(&self, other: &VectorD) -> AdtResult<f64> {
        if self.len() != other.len() {
            return Err(AdtError::ShapeMismatch("vector dot".into()));
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum())
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Unit-normalized copy (zero vectors pass through unchanged).
    pub fn normalized(&self) -> VectorD {
        let n = self.norm();
        if n == 0.0 {
            self.clone()
        } else {
            VectorD {
                data: self.data.iter().map(|x| x / n).collect(),
            }
        }
    }

    /// Element-wise scale.
    pub fn scale(&self, k: f64) -> VectorD {
        VectorD {
            data: self.data.iter().map(|x| x * k).collect(),
        }
    }

    /// Total ordering for value identity.
    pub fn total_cmp(&self, other: &VectorD) -> std::cmp::Ordering {
        self.data.len().cmp(&other.data.len()).then_with(|| {
            for (a, b) in self.data.iter().zip(&other.data) {
                let o = a.total_cmp(b);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_rows(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn symmetry_detection() {
        let s = Matrix::from_rows(2, 2, vec![1.0, 0.5, 0.5, 2.0]).unwrap();
        assert!(s.is_symmetric(1e-12));
        let a = Matrix::from_rows(2, 2, vec![1.0, 0.5, 0.4, 2.0]).unwrap();
        assert!(!a.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn matvec_works() {
        let a = Matrix::from_rows(2, 2, vec![2.0, 0.0, 0.0, 3.0]).unwrap();
        let v = VectorD::new(vec![1.0, 1.0]);
        assert_eq!(a.matvec(&v).unwrap().data(), &[2.0, 3.0]);
        assert!(a.matvec(&VectorD::zeros(3)).is_err());
    }

    #[test]
    fn vector_norms() {
        let v = VectorD::new(vec![3.0, 4.0]);
        assert_eq!(v.norm(), 5.0);
        let u = v.normalized();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert_eq!(VectorD::zeros(2).normalized().norm(), 0.0);
    }

    #[test]
    fn dot_product() {
        let a = VectorD::new(vec![1.0, 2.0, 3.0]);
        let b = VectorD::new(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        assert!(a.dot(&VectorD::zeros(2)).is_err());
    }

    #[test]
    fn off_diagonal_max() {
        let m = Matrix::from_rows(2, 2, vec![9.0, -3.0, 2.0, 9.0]).unwrap();
        assert_eq!(m.max_off_diagonal(), 3.0);
    }

    #[test]
    fn from_rows_validates_len() {
        assert!(Matrix::from_rows(2, 2, vec![1.0; 3]).is_err());
    }
}
