//! Operators: the methods encapsulated with primitive classes (paper §2.1.3).
//!
//! "Following Postgres, functions on primitive classes are called operators."
//! The registry is the browsable structure of §4.2: "All the primitive
//! classes and their operators are managed in a hierarchical structure.
//! Users can browse the hierarchy, look up appropriate operators for
//! specific primitive classes, or find the primitive classes that have a
//! specific operator. Users are allowed to define new primitive classes
//! and/or new operators."
//!
//! Operators are either **primitive** (a Rust closure) or **compound** (a
//! [`crate::dataflow::DataflowGraph`] of other operators, Figure 4) — a
//! compound operator "can be applied as a primitive mapping function".

use crate::dataflow::DataflowGraph;
use crate::error::{AdtError, AdtResult};
use crate::geo::GeoBox;
use crate::time::AbsTime;
use crate::types::TypeTag;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Declared parameter/return types of an operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Parameter types, in order.
    pub inputs: Vec<TypeTag>,
    /// Return type.
    pub output: TypeTag,
    /// If true, the final parameter type may repeat zero or more times.
    pub variadic: bool,
}

impl Signature {
    /// Fixed-arity signature.
    pub fn new(inputs: Vec<TypeTag>, output: TypeTag) -> Signature {
        Signature {
            inputs,
            output,
            variadic: false,
        }
    }

    /// Variadic signature (last declared parameter repeats).
    pub fn variadic(inputs: Vec<TypeTag>, output: TypeTag) -> Signature {
        Signature {
            inputs,
            output,
            variadic: true,
        }
    }

    /// Check an argument type list against this signature.
    pub fn check(&self, op: &str, args: &[TypeTag]) -> AdtResult<()> {
        if self.variadic {
            if args.len() + 1 < self.inputs.len() {
                return Err(AdtError::ArityMismatch {
                    op: op.into(),
                    expected: self.inputs.len(),
                    found: args.len(),
                });
            }
        } else if args.len() != self.inputs.len() {
            return Err(AdtError::ArityMismatch {
                op: op.into(),
                expected: self.inputs.len(),
                found: args.len(),
            });
        }
        for (i, arg) in args.iter().enumerate() {
            let slot = if i < self.inputs.len() {
                &self.inputs[i]
            } else {
                // variadic tail
                self.inputs.last().expect("variadic signature has a tail")
            };
            if !slot.accepts(arg) {
                return Err(AdtError::TypeMismatch {
                    context: format!("{op} argument {i}"),
                    expected: slot.to_string(),
                    found: arg.to_string(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.inputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        if self.variadic {
            write!(f, ", ...")?;
        }
        write!(f, ") -> {}", self.output)
    }
}

/// Native operator body: a pure function over argument values.
pub type PrimitiveFn = dyn Fn(&[Value]) -> AdtResult<Value> + Send + Sync;

/// Body of an operator.
#[derive(Clone)]
pub enum OpKind {
    /// Native implementation.
    Primitive(Arc<PrimitiveFn>),
    /// Network of other operators (Figure 4).
    Compound(Arc<DataflowGraph>),
}

impl fmt::Debug for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Primitive(_) => write!(f, "Primitive(<native>)"),
            OpKind::Compound(g) => write!(f, "Compound({})", g.name()),
        }
    }
}

/// A registered operator.
#[derive(Debug, Clone)]
pub struct OpDef {
    /// Unique name.
    pub name: String,
    /// Declared signature.
    pub sig: Signature,
    /// Implementation.
    pub kind: OpKind,
    /// Human documentation shown when browsing.
    pub doc: String,
}

impl OpDef {
    /// True if this operator was built as a dataflow network.
    pub fn is_compound(&self) -> bool {
        matches!(self.kind, OpKind::Compound(_))
    }
}

/// The browsable operator catalog of the system-level semantics layer.
#[derive(Debug, Clone, Default)]
pub struct OperatorRegistry {
    ops: BTreeMap<String, OpDef>,
}

impl OperatorRegistry {
    /// Empty registry (no builtins).
    pub fn empty() -> OperatorRegistry {
        OperatorRegistry::default()
    }

    /// Registry preloaded with the generic builtins (arithmetic, comparisons,
    /// the `img_*` family from §2.1.3, extent guards, set helpers).
    /// Raster-analysis operators are contributed by `gaea-raster`.
    pub fn with_builtins() -> OperatorRegistry {
        let mut r = OperatorRegistry::empty();
        register_builtins(&mut r).expect("builtins are internally consistent");
        r
    }

    /// Register an operator; duplicate names are rejected ("In no case is the
    /// old process overwritten" — the same conservatism applies to operators).
    pub fn register(&mut self, def: OpDef) -> AdtResult<()> {
        if self.ops.contains_key(&def.name) {
            return Err(AdtError::DuplicateOperator(def.name.clone()));
        }
        self.ops.insert(def.name.clone(), def);
        Ok(())
    }

    /// Convenience: register a primitive operator from a closure.
    pub fn register_fn(
        &mut self,
        name: &str,
        sig: Signature,
        doc: &str,
        f: impl Fn(&[Value]) -> AdtResult<Value> + Send + Sync + 'static,
    ) -> AdtResult<()> {
        self.register(OpDef {
            name: name.into(),
            sig,
            kind: OpKind::Primitive(Arc::new(f)),
            doc: doc.into(),
        })
    }

    /// Register a compound operator (validates its network first).
    pub fn register_compound(&mut self, graph: DataflowGraph, doc: &str) -> AdtResult<()> {
        let output = graph.validate(self)?;
        let sig = Signature::new(
            graph.inputs().iter().map(|(_, t)| t.clone()).collect(),
            output,
        );
        self.register(OpDef {
            name: graph.name().to_string(),
            sig,
            kind: OpKind::Compound(Arc::new(graph)),
            doc: doc.into(),
        })
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> AdtResult<&OpDef> {
        self.ops
            .get(name)
            .ok_or_else(|| AdtError::UnknownOperator(name.into()))
    }

    /// True if registered.
    pub fn contains(&self, name: &str) -> bool {
        self.ops.contains_key(name)
    }

    /// All operators, sorted by name.
    pub fn list(&self) -> impl Iterator<Item = &OpDef> {
        self.ops.values()
    }

    /// Number of registered operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operators are registered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Browse: operators applicable to a value of type `tag`
    /// (§4.2: "look up appropriate operators for specific primitive classes").
    pub fn ops_for_input(&self, tag: &TypeTag) -> Vec<&OpDef> {
        self.ops
            .values()
            .filter(|d| d.sig.inputs.iter().any(|slot| slot.accepts(tag)))
            .collect()
    }

    /// Browse: the primitive classes that have a specific operator (§4.2).
    pub fn input_classes_of(&self, name: &str) -> AdtResult<Vec<TypeTag>> {
        Ok(self.get(name)?.sig.inputs.clone())
    }

    /// Type-check and apply an operator.
    pub fn invoke(&self, name: &str, args: &[Value]) -> AdtResult<Value> {
        let def = self.get(name)?;
        let arg_tags: Vec<TypeTag> = args.iter().map(Value::type_tag).collect();
        def.sig.check(name, &arg_tags)?;
        match &def.kind {
            OpKind::Primitive(f) => f(args),
            OpKind::Compound(graph) => graph.execute(self, args),
        }
    }
}

/// Binary float helper.
fn binop(
    r: &mut OperatorRegistry,
    name: &str,
    doc: &str,
    f: fn(f64, f64) -> AdtResult<f64>,
) -> AdtResult<()> {
    r.register_fn(
        name,
        Signature::new(vec![TypeTag::Float8, TypeTag::Float8], TypeTag::Float8),
        doc,
        move |args| {
            let a = args[0].expect_f64("lhs")?;
            let b = args[1].expect_f64("rhs")?;
            Ok(Value::Float8(f(a, b)?))
        },
    )
}

/// Install the generic builtins.
pub fn register_builtins(r: &mut OperatorRegistry) -> AdtResult<()> {
    binop(r, "add", "float8 addition", |a, b| Ok(a + b))?;
    binop(r, "sub", "float8 subtraction", |a, b| Ok(a - b))?;
    binop(r, "mul", "float8 multiplication", |a, b| Ok(a * b))?;
    binop(
        r,
        "div",
        "float8 division (errors on zero divisor)",
        |a, b| {
            if b == 0.0 {
                Err(AdtError::Numeric("division by zero".into()))
            } else {
                Ok(a / b)
            }
        },
    )?;
    binop(r, "min", "float8 minimum", |a, b| Ok(a.min(b)))?;
    binop(r, "max", "float8 maximum", |a, b| Ok(a.max(b)))?;

    r.register_fn(
        "eq",
        Signature::new(vec![TypeTag::Any, TypeTag::Any], TypeTag::Bool),
        "value-identity equality on any primitive class",
        |args| Ok(Value::Bool(args[0] == args[1])),
    )?;
    r.register_fn(
        "lt",
        Signature::new(vec![TypeTag::Float8, TypeTag::Float8], TypeTag::Bool),
        "numeric less-than",
        |args| {
            Ok(Value::Bool(
                args[0].expect_f64("lt")? < args[1].expect_f64("lt")?,
            ))
        },
    )?;
    r.register_fn(
        "gt",
        Signature::new(vec![TypeTag::Float8, TypeTag::Float8], TypeTag::Bool),
        "numeric greater-than",
        |args| {
            Ok(Value::Bool(
                args[0].expect_f64("gt")? > args[1].expect_f64("gt")?,
            ))
        },
    )?;

    // Set helpers used by process templates (Figure 3).
    r.register_fn(
        "card",
        Signature::new(vec![TypeTag::Any.set_of()], TypeTag::Int4),
        "cardinality of a set (assertion builtin, Figure 3)",
        |args| Ok(Value::Int4(args[0].card()? as i32)),
    )?;
    r.register_fn(
        "anyof",
        Signature::new(vec![TypeTag::Any.set_of()], TypeTag::Any),
        "pick a representative member of a set (ANYOF mapping, Figure 3)",
        |args| {
            let set = args[0].expect_set("anyof")?;
            set.first()
                .cloned()
                .ok_or_else(|| AdtError::InvalidArgument("anyof over empty set".into()))
        },
    )?;

    // The paper's image operators (§2.1.3 listing).
    r.register_fn(
        "img_nrow",
        Signature::new(vec![TypeTag::Image], TypeTag::Int4),
        "return # of rows",
        |args| Ok(Value::Int4(args[0].expect_image("img_nrow")?.nrow() as i32)),
    )?;
    r.register_fn(
        "img_ncol",
        Signature::new(vec![TypeTag::Image], TypeTag::Int4),
        "return # of columns",
        |args| Ok(Value::Int4(args[0].expect_image("img_ncol")?.ncol() as i32)),
    )?;
    r.register_fn(
        "img_type",
        Signature::new(vec![TypeTag::Image], TypeTag::Text),
        "return a pixel's data type",
        |args| {
            Ok(Value::Text(
                args[0]
                    .expect_image("img_type")?
                    .pixtype()
                    .name()
                    .to_string(),
            ))
        },
    )?;
    r.register_fn(
        "img_size_eq",
        Signature::new(vec![TypeTag::Image, TypeTag::Image], TypeTag::Bool),
        "check if 2 image sizes are equal",
        |args| {
            let a = args[0].expect_image("img_size_eq")?;
            let b = args[1].expect_image("img_size_eq")?;
            Ok(Value::Bool(a.size_eq(b)))
        },
    )?;

    // Extent guards (`common()` in assertions, Figure 3).
    r.register_fn(
        "common_box",
        Signature::new(vec![TypeTag::GeoBox.set_of()], TypeTag::Bool),
        "all spatial extents the same or overlapping (assertion guard)",
        |args| {
            let set = args[0].expect_set("common_box")?;
            let boxes: AdtResult<Vec<GeoBox>> = set
                .iter()
                .map(|v| {
                    v.as_geobox().ok_or_else(|| AdtError::TypeMismatch {
                        context: "common_box".into(),
                        expected: "box".into(),
                        found: v.type_tag().to_string(),
                    })
                })
                .collect();
            Ok(Value::Bool(GeoBox::common(&boxes?)))
        },
    )?;
    r.register_fn(
        "common_time",
        Signature::new(vec![TypeTag::AbsTime.set_of()], TypeTag::Bool),
        "all timestamps equal (point-extent form of the common() guard)",
        |args| {
            let set = args[0].expect_set("common_time")?;
            let times: AdtResult<Vec<AbsTime>> = set
                .iter()
                .map(|v| {
                    v.as_abstime().ok_or_else(|| AdtError::TypeMismatch {
                        context: "common_time".into(),
                        expected: "abstime".into(),
                        found: v.type_tag().to_string(),
                    })
                })
                .collect();
            let times = times?;
            Ok(Value::Bool(times.windows(2).all(|w| w[0] == w[1])))
        },
    )?;
    r.register_fn(
        "box_area",
        Signature::new(vec![TypeTag::GeoBox], TypeTag::Float8),
        "area of a bounding box",
        |args| {
            let b = args[0].as_geobox().ok_or_else(|| AdtError::TypeMismatch {
                context: "box_area".into(),
                expected: "box".into(),
                found: args[0].type_tag().to_string(),
            })?;
            Ok(Value::Float8(b.area()))
        },
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{Image, PixType};

    #[test]
    fn builtins_present_and_invocable() {
        let r = OperatorRegistry::with_builtins();
        assert!(r.len() >= 15);
        assert_eq!(
            r.invoke("add", &[Value::Float8(2.0), Value::Float8(3.0)])
                .unwrap(),
            Value::Float8(5.0)
        );
        assert_eq!(
            r.invoke("div", &[Value::Float8(6.0), Value::Float8(3.0)])
                .unwrap(),
            Value::Float8(2.0)
        );
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let r = OperatorRegistry::with_builtins();
        assert!(r
            .invoke("div", &[Value::Float8(1.0), Value::Float8(0.0)])
            .is_err());
    }

    #[test]
    fn arity_and_type_checked() {
        let r = OperatorRegistry::with_builtins();
        assert!(matches!(
            r.invoke("add", &[Value::Float8(1.0)]),
            Err(AdtError::ArityMismatch { .. })
        ));
        assert!(matches!(
            r.invoke("img_nrow", &[Value::Int4(3)]),
            Err(AdtError::TypeMismatch { .. })
        ));
        assert!(matches!(
            r.invoke("no_such_op", &[]),
            Err(AdtError::UnknownOperator(_))
        ));
    }

    #[test]
    fn img_operators_match_paper_listing() {
        let r = OperatorRegistry::with_builtins();
        let img = Value::image(Image::zeros(10, 20, PixType::Int2));
        assert_eq!(
            r.invoke("img_nrow", std::slice::from_ref(&img)).unwrap(),
            Value::Int4(10)
        );
        assert_eq!(
            r.invoke("img_ncol", std::slice::from_ref(&img)).unwrap(),
            Value::Int4(20)
        );
        assert_eq!(
            r.invoke("img_type", std::slice::from_ref(&img)).unwrap(),
            Value::Text("int2".into())
        );
        let other = Value::image(Image::zeros(10, 20, PixType::Float4));
        assert_eq!(
            r.invoke("img_size_eq", &[img, other]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn card_and_anyof() {
        let r = OperatorRegistry::with_builtins();
        let set = Value::Set(vec![Value::Int4(7), Value::Int4(8)]);
        assert_eq!(
            r.invoke("card", std::slice::from_ref(&set)).unwrap(),
            Value::Int4(2)
        );
        assert_eq!(r.invoke("anyof", &[set]).unwrap(), Value::Int4(7));
        assert!(r.invoke("anyof", &[Value::Set(vec![])]).is_err());
    }

    #[test]
    fn common_box_guard() {
        let r = OperatorRegistry::with_builtins();
        let a = Value::GeoBox(GeoBox::new(0.0, 0.0, 10.0, 10.0));
        let b = Value::GeoBox(GeoBox::new(5.0, 5.0, 15.0, 15.0));
        let c = Value::GeoBox(GeoBox::new(20.0, 20.0, 30.0, 30.0));
        assert_eq!(
            r.invoke("common_box", &[Value::Set(vec![a.clone(), b.clone()])])
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            r.invoke("common_box", &[Value::Set(vec![a, b, c])])
                .unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut r = OperatorRegistry::with_builtins();
        let err = r
            .register_fn("add", Signature::new(vec![], TypeTag::Int4), "dup", |_| {
                Ok(Value::Int4(0))
            })
            .unwrap_err();
        assert!(matches!(err, AdtError::DuplicateOperator(_)));
    }

    #[test]
    fn browsing_by_input_class() {
        let r = OperatorRegistry::with_builtins();
        let for_images = r.ops_for_input(&TypeTag::Image);
        let names: Vec<&str> = for_images.iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"img_nrow"));
        assert!(names.contains(&"img_size_eq"));
        // `eq` takes Any so it also applies to images.
        assert!(names.contains(&"eq"));
        assert!(!names.contains(&"add"));
    }

    #[test]
    fn variadic_signature_check() {
        let sig = Signature::variadic(vec![TypeTag::Float8], TypeTag::Float8);
        assert!(sig.check("sum", &[]).is_ok());
        assert!(sig
            .check("sum", &[TypeTag::Float8, TypeTag::Float8, TypeTag::Float8])
            .is_ok());
        assert!(sig
            .check("sum", &[TypeTag::Float8, TypeTag::Image])
            .is_err());
        assert_eq!(sig.to_string(), "(float8, ...) -> float8");
    }

    #[test]
    fn signature_display() {
        let sig = Signature::new(vec![TypeTag::Image.set_of(), TypeTag::Int4], TypeTag::Image);
        assert_eq!(sig.to_string(), "(setof image, int4) -> image");
    }
}
