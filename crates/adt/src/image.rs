//! The `image` primitive class (paper §2.1.3).
//!
//! The paper defines the class with an external representation
//! `"(nrows, ncols, pixtype, filepath)"` and an internal struct carrying the
//! row/column counts, the pixel type (`char`, `int2`, `int4`, `float4`,
//! `float8`) and the path of the file holding the raster payload. In this
//! reproduction the payload lives in memory (a typed [`PixelBuffer`]); the
//! external-representation string still parses and prints for fidelity with
//! the paper, and `gaea-store` persists payloads to files on snapshot.

use crate::error::{AdtError, AdtResult};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Pixel data types supported by the paper's `image` ADT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PixType {
    /// 8-bit unsigned ("char" in the paper).
    Char,
    /// 16-bit signed.
    Int2,
    /// 32-bit signed.
    Int4,
    /// 32-bit float.
    Float4,
    /// 64-bit float.
    Float8,
}

impl PixType {
    /// Name used in the external representation.
    pub fn name(self) -> &'static str {
        match self {
            PixType::Char => "char",
            PixType::Int2 => "int2",
            PixType::Int4 => "int4",
            PixType::Float4 => "float4",
            PixType::Float8 => "float8",
        }
    }

    /// Parse an external-representation pixel type name.
    pub fn parse(s: &str) -> AdtResult<PixType> {
        Ok(match s.trim() {
            "char" => PixType::Char,
            "int2" => PixType::Int2,
            "int4" => PixType::Int4,
            "float4" => PixType::Float4,
            "float8" => PixType::Float8,
            other => return Err(AdtError::Parse(format!("unknown pixtype {other:?}"))),
        })
    }

    /// Bytes per pixel.
    pub fn width(self) -> usize {
        match self {
            PixType::Char => 1,
            PixType::Int2 => 2,
            PixType::Int4 | PixType::Float4 => 4,
            PixType::Float8 => 8,
        }
    }
}

impl fmt::Display for PixType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Typed raster payload. Values are stored natively and read/written through
/// `f64` accessors with saturating conversion, mirroring how a GIS reads
/// heterogeneous rasters through one arithmetic interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PixelBuffer {
    /// `char` payload.
    U8(Vec<u8>),
    /// `int2` payload.
    I16(Vec<i16>),
    /// `int4` payload.
    I32(Vec<i32>),
    /// `float4` payload.
    F32(Vec<f32>),
    /// `float8` payload.
    F64(Vec<f64>),
}

impl PixelBuffer {
    /// Allocate a zero-filled buffer of `len` pixels of type `pt`.
    pub fn zeros(pt: PixType, len: usize) -> PixelBuffer {
        match pt {
            PixType::Char => PixelBuffer::U8(vec![0; len]),
            PixType::Int2 => PixelBuffer::I16(vec![0; len]),
            PixType::Int4 => PixelBuffer::I32(vec![0; len]),
            PixType::Float4 => PixelBuffer::F32(vec![0.0; len]),
            PixType::Float8 => PixelBuffer::F64(vec![0.0; len]),
        }
    }

    /// Pixel type of this buffer.
    pub fn pixtype(&self) -> PixType {
        match self {
            PixelBuffer::U8(_) => PixType::Char,
            PixelBuffer::I16(_) => PixType::Int2,
            PixelBuffer::I32(_) => PixType::Int4,
            PixelBuffer::F32(_) => PixType::Float4,
            PixelBuffer::F64(_) => PixType::Float8,
        }
    }

    /// Number of pixels.
    pub fn len(&self) -> usize {
        match self {
            PixelBuffer::U8(v) => v.len(),
            PixelBuffer::I16(v) => v.len(),
            PixelBuffer::I32(v) => v.len(),
            PixelBuffer::F32(v) => v.len(),
            PixelBuffer::F64(v) => v.len(),
        }
    }

    /// True if there are no pixels.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read pixel `i` as `f64`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        match self {
            PixelBuffer::U8(v) => v[i] as f64,
            PixelBuffer::I16(v) => v[i] as f64,
            PixelBuffer::I32(v) => v[i] as f64,
            PixelBuffer::F32(v) => v[i] as f64,
            PixelBuffer::F64(v) => v[i],
        }
    }

    /// Write pixel `i`, saturating/rounding to the native type.
    #[inline]
    pub fn set(&mut self, i: usize, val: f64) {
        match self {
            PixelBuffer::U8(v) => v[i] = val.round().clamp(0.0, u8::MAX as f64) as u8,
            PixelBuffer::I16(v) => {
                v[i] = val.round().clamp(i16::MIN as f64, i16::MAX as f64) as i16
            }
            PixelBuffer::I32(v) => {
                v[i] = val.round().clamp(i32::MIN as f64, i32::MAX as f64) as i32
            }
            PixelBuffer::F32(v) => v[i] = val as f32,
            PixelBuffer::F64(v) => v[i] = val,
        }
    }

    /// Raw little-endian byte serialization of the payload (for blob files).
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            PixelBuffer::U8(v) => v.clone(),
            PixelBuffer::I16(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            PixelBuffer::I32(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            PixelBuffer::F32(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            PixelBuffer::F64(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
        }
    }

    /// Inverse of [`PixelBuffer::to_bytes`].
    pub fn from_bytes(pt: PixType, bytes: &[u8]) -> AdtResult<PixelBuffer> {
        let w = pt.width();
        if !bytes.len().is_multiple_of(w) {
            return Err(AdtError::Parse(format!(
                "payload of {} bytes is not a multiple of {w} ({pt})",
                bytes.len()
            )));
        }
        let chunks = bytes.chunks_exact(w);
        Ok(match pt {
            PixType::Char => PixelBuffer::U8(bytes.to_vec()),
            PixType::Int2 => {
                PixelBuffer::I16(chunks.map(|c| i16::from_le_bytes([c[0], c[1]])).collect())
            }
            PixType::Int4 => PixelBuffer::I32(
                chunks
                    .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect(),
            ),
            PixType::Float4 => PixelBuffer::F32(
                chunks
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect(),
            ),
            PixType::Float8 => PixelBuffer::F64(
                chunks
                    .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
                    .collect(),
            ),
        })
    }
}

/// A raster image: the paper's `image` primitive class.
///
/// Images are immutable once built (value identity: editing pixels produces
/// a *new* object); construction goes through [`Image::new`] or the builder
/// helpers, and bulk edits through [`Image::map`] / [`Image::zip_map`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    nrow: u32,
    ncol: u32,
    buf: PixelBuffer,
}

impl Image {
    /// Build an image from a payload buffer. Errors if `nrow * ncol` does not
    /// match the buffer length.
    pub fn new(nrow: u32, ncol: u32, buf: PixelBuffer) -> AdtResult<Image> {
        let expect = nrow as usize * ncol as usize;
        if buf.len() != expect {
            return Err(AdtError::ShapeMismatch(format!(
                "image {nrow}x{ncol} needs {expect} pixels, buffer has {}",
                buf.len()
            )));
        }
        Ok(Image { nrow, ncol, buf })
    }

    /// Zero-filled image of the given shape and pixel type.
    pub fn zeros(nrow: u32, ncol: u32, pt: PixType) -> Image {
        Image {
            nrow,
            ncol,
            buf: PixelBuffer::zeros(pt, nrow as usize * ncol as usize),
        }
    }

    /// Constant-filled image.
    pub fn filled(nrow: u32, ncol: u32, pt: PixType, val: f64) -> Image {
        let mut img = Image::zeros(nrow, ncol, pt);
        for i in 0..img.len() {
            img.buf.set(i, val);
        }
        img
    }

    /// Build a `float8` image from row-major samples.
    pub fn from_f64(nrow: u32, ncol: u32, data: Vec<f64>) -> AdtResult<Image> {
        Image::new(nrow, ncol, PixelBuffer::F64(data))
    }

    /// Number of rows (`img_nrow` operator).
    pub fn nrow(&self) -> u32 {
        self.nrow
    }

    /// Number of columns (`img_ncol` operator).
    pub fn ncol(&self) -> u32 {
        self.ncol
    }

    /// Pixel type (`img_type` operator).
    pub fn pixtype(&self) -> PixType {
        self.buf.pixtype()
    }

    /// Total pixel count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if the image has no pixels.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Payload access.
    pub fn buffer(&self) -> &PixelBuffer {
        &self.buf
    }

    /// Read pixel (r, c) as `f64`.
    #[inline]
    pub fn get(&self, r: u32, c: u32) -> f64 {
        debug_assert!(r < self.nrow && c < self.ncol);
        self.buf.get(r as usize * self.ncol as usize + c as usize)
    }

    /// Read pixel by flat row-major index.
    #[inline]
    pub fn get_flat(&self, i: usize) -> f64 {
        self.buf.get(i)
    }

    /// Same shape (rows and columns) as another image (`img_size_eq`).
    pub fn size_eq(&self, other: &Image) -> bool {
        self.nrow == other.nrow && self.ncol == other.ncol
    }

    /// Apply `f` to every pixel, producing a new image of pixel type `pt`.
    pub fn map(&self, pt: PixType, mut f: impl FnMut(f64) -> f64) -> Image {
        let mut out = Image::zeros(self.nrow, self.ncol, pt);
        for i in 0..self.len() {
            out.buf.set(i, f(self.buf.get(i)));
        }
        out
    }

    /// Combine two same-shaped images pixel-wise.
    pub fn zip_map(
        &self,
        other: &Image,
        pt: PixType,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> AdtResult<Image> {
        if !self.size_eq(other) {
            return Err(AdtError::ShapeMismatch(format!(
                "zip_map on {}x{} vs {}x{}",
                self.nrow, self.ncol, other.nrow, other.ncol
            )));
        }
        let mut out = Image::zeros(self.nrow, self.ncol, pt);
        for i in 0..self.len() {
            out.buf.set(i, f(self.buf.get(i), other.buf.get(i)));
        }
        Ok(out)
    }

    /// Row-major samples as `f64`.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.buf.get(i)).collect()
    }

    /// Build a new image of the same shape from `f64` samples.
    pub fn with_samples(&self, pt: PixType, data: &[f64]) -> AdtResult<Image> {
        if data.len() != self.len() {
            return Err(AdtError::ShapeMismatch(format!(
                "expected {} samples, got {}",
                self.len(),
                data.len()
            )));
        }
        let mut out = Image::zeros(self.nrow, self.ncol, pt);
        for (i, v) in data.iter().enumerate() {
            out.buf.set(i, *v);
        }
        Ok(out)
    }

    /// The paper's external representation: `"(nrows, ncols, pixtype, filepath)"`.
    ///
    /// The in-memory reproduction has no intrinsic file path, so callers pass
    /// the path the payload is (or will be) stored at.
    pub fn external_repr(&self, filepath: &str) -> String {
        format!(
            "({}, {}, {}, {})",
            self.nrow,
            self.ncol,
            self.pixtype(),
            filepath
        )
    }

    /// Parse the external representation, returning the header fields.
    /// The payload itself is loaded separately (it lives behind `filepath`).
    pub fn parse_external(s: &str) -> AdtResult<(u32, u32, PixType, String)> {
        let inner = s
            .trim()
            .strip_prefix('(')
            .and_then(|t| t.strip_suffix(')'))
            .ok_or_else(|| {
                AdtError::Parse(format!("image external repr must be parenthesized: {s:?}"))
            })?;
        let parts: Vec<&str> = inner.splitn(4, ',').map(str::trim).collect();
        if parts.len() != 4 {
            return Err(AdtError::Parse(format!(
                "image external repr needs 4 fields, got {}",
                parts.len()
            )));
        }
        let nrow: u32 = parts[0]
            .parse()
            .map_err(|_| AdtError::Parse(format!("bad nrows {:?}", parts[0])))?;
        let ncol: u32 = parts[1]
            .parse()
            .map_err(|_| AdtError::Parse(format!("bad ncols {:?}", parts[1])))?;
        let pt = PixType::parse(parts[2])?;
        Ok((nrow, ncol, pt, parts[3].to_string()))
    }

    /// Total ordering for value identity: shape, then pixel type, then
    /// payload bytes. Used by [`crate::Value`]'s `Ord`.
    pub fn total_cmp(&self, other: &Image) -> std::cmp::Ordering {
        self.nrow
            .cmp(&other.nrow)
            .then(self.ncol.cmp(&other.ncol))
            .then(self.pixtype().cmp(&other.pixtype()))
            .then_with(|| {
                for i in 0..self.len() {
                    let o = self.buf.get(i).total_cmp(&other.buf.get(i));
                    if o != std::cmp::Ordering::Equal {
                        return o;
                    }
                }
                std::cmp::Ordering::Equal
            })
    }
}

/// Shared, cheaply clonable image handle used inside [`crate::Value`].
pub type ImageRef = Arc<Image>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checked_construction() {
        assert!(Image::new(2, 3, PixelBuffer::zeros(PixType::Char, 6)).is_ok());
        assert!(Image::new(2, 3, PixelBuffer::zeros(PixType::Char, 5)).is_err());
    }

    #[test]
    fn get_set_round_trip_all_pixtypes() {
        for pt in [
            PixType::Char,
            PixType::Int2,
            PixType::Int4,
            PixType::Float4,
            PixType::Float8,
        ] {
            let mut buf = PixelBuffer::zeros(pt, 4);
            buf.set(2, 7.0);
            assert_eq!(buf.get(2), 7.0, "pixtype {pt}");
            assert_eq!(buf.get(0), 0.0);
        }
    }

    #[test]
    fn char_pixels_saturate() {
        let mut buf = PixelBuffer::zeros(PixType::Char, 2);
        buf.set(0, -5.0);
        buf.set(1, 300.0);
        assert_eq!(buf.get(0), 0.0);
        assert_eq!(buf.get(1), 255.0);
    }

    #[test]
    fn int_pixels_round() {
        let mut buf = PixelBuffer::zeros(PixType::Int2, 2);
        buf.set(0, 2.6);
        buf.set(1, -2.6);
        assert_eq!(buf.get(0), 3.0);
        assert_eq!(buf.get(1), -3.0);
    }

    #[test]
    fn map_changes_pixtype() {
        let img = Image::filled(2, 2, PixType::Char, 10.0);
        let scaled = img.map(PixType::Float8, |v| v * 1.5);
        assert_eq!(scaled.pixtype(), PixType::Float8);
        assert_eq!(scaled.get(1, 1), 15.0);
    }

    #[test]
    fn zip_map_requires_same_shape() {
        let a = Image::filled(2, 2, PixType::Float8, 4.0);
        let b = Image::filled(2, 3, PixType::Float8, 4.0);
        assert!(a.zip_map(&b, PixType::Float8, |x, y| x + y).is_err());
        let c = Image::filled(2, 2, PixType::Float8, 1.0);
        let sum = a.zip_map(&c, PixType::Float8, |x, y| x + y).unwrap();
        assert_eq!(sum.get(0, 0), 5.0);
    }

    #[test]
    fn external_repr_round_trip() {
        let img = Image::zeros(120, 80, PixType::Int2);
        let s = img.external_repr("/data/ndvi_1988.img");
        assert_eq!(s, "(120, 80, int2, /data/ndvi_1988.img)");
        let (r, c, pt, path) = Image::parse_external(&s).unwrap();
        assert_eq!(
            (r, c, pt, path.as_str()),
            (120, 80, PixType::Int2, "/data/ndvi_1988.img")
        );
    }

    #[test]
    fn parse_external_rejects_malformed() {
        assert!(Image::parse_external("120, 80, int2, f").is_err());
        assert!(Image::parse_external("(120, 80, int2)").is_err());
        assert!(Image::parse_external("(x, 80, int2, f)").is_err());
        assert!(Image::parse_external("(120, 80, int9, f)").is_err());
    }

    #[test]
    fn bytes_round_trip() {
        for pt in [
            PixType::Char,
            PixType::Int2,
            PixType::Int4,
            PixType::Float4,
            PixType::Float8,
        ] {
            let mut buf = PixelBuffer::zeros(pt, 5);
            for i in 0..5 {
                buf.set(i, (i as f64) - 2.0);
            }
            let bytes = buf.to_bytes();
            assert_eq!(bytes.len(), 5 * pt.width());
            let back = PixelBuffer::from_bytes(pt, &bytes).unwrap();
            assert_eq!(back, buf);
        }
    }

    #[test]
    fn from_bytes_rejects_ragged_payload() {
        assert!(PixelBuffer::from_bytes(PixType::Int4, &[1, 2, 3]).is_err());
    }

    #[test]
    fn total_cmp_orders_by_content() {
        let a = Image::filled(1, 2, PixType::Float8, 1.0);
        let b = Image::filled(1, 2, PixType::Float8, 2.0);
        assert_eq!(a.total_cmp(&b), std::cmp::Ordering::Less);
        assert_eq!(a.total_cmp(&a.clone()), std::cmp::Ordering::Equal);
        let c = Image::filled(2, 2, PixType::Float8, 0.0);
        assert_eq!(a.total_cmp(&c), std::cmp::Ordering::Less); // fewer rows
    }

    #[test]
    fn value_identity_map_produces_new_object() {
        // Paper: "Changing the value of an object in a primitive class will
        // always lead to another object."
        let img = Image::filled(2, 2, PixType::Float8, 1.0);
        let edited = img.map(PixType::Float8, |v| v + 1.0);
        assert_ne!(img, edited);
    }
}
