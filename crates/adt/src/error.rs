//! Error type for the ADT layer.

use std::fmt;

/// Errors raised by the system-level semantics layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdtError {
    /// An operator received a value of the wrong primitive class.
    TypeMismatch {
        /// Context (operator or graph name).
        context: String,
        /// The expected type.
        expected: String,
        /// The type actually supplied.
        found: String,
    },
    /// An operator received the wrong number of arguments.
    ArityMismatch {
        /// Operator name.
        op: String,
        /// Number of declared parameters.
        expected: usize,
        /// Number of supplied arguments.
        found: usize,
    },
    /// Lookup of an operator that was never registered.
    UnknownOperator(String),
    /// Attempt to register a second operator under an existing name.
    DuplicateOperator(String),
    /// Matrix / image dimensions do not line up.
    ShapeMismatch(String),
    /// A structurally invalid argument (e.g. empty band set, k = 0).
    InvalidArgument(String),
    /// A compound-operator graph contains a cycle or dangling reference.
    MalformedDataflow(String),
    /// Numeric failure (e.g. eigen solver did not converge).
    Numeric(String),
    /// Parse failure of an external representation string.
    Parse(String),
}

impl fmt::Display for AdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdtError::TypeMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "{context}: type mismatch, expected {expected}, found {found}"
            ),
            AdtError::ArityMismatch {
                op,
                expected,
                found,
            } => write!(
                f,
                "operator {op}: expected {expected} argument(s), found {found}"
            ),
            AdtError::UnknownOperator(name) => write!(f, "unknown operator: {name}"),
            AdtError::DuplicateOperator(name) => write!(f, "operator already registered: {name}"),
            AdtError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            AdtError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            AdtError::MalformedDataflow(msg) => write!(f, "malformed dataflow graph: {msg}"),
            AdtError::Numeric(msg) => write!(f, "numeric error: {msg}"),
            AdtError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for AdtError {}

/// Convenience alias used across the ADT layer.
pub type AdtResult<T> = Result<T, AdtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AdtError::TypeMismatch {
            context: "img_add".into(),
            expected: "image".into(),
            found: "int4".into(),
        };
        let s = e.to_string();
        assert!(s.contains("img_add"));
        assert!(s.contains("image"));
        assert!(s.contains("int4"));
    }

    #[test]
    fn arity_display() {
        let e = AdtError::ArityMismatch {
            op: "composite".into(),
            expected: 1,
            found: 3,
        };
        assert_eq!(
            e.to_string(),
            "operator composite: expected 1 argument(s), found 3"
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(AdtError::UnknownOperator("pca".into()));
        assert!(e.to_string().contains("pca"));
    }
}
