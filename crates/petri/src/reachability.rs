//! Reachability analysis (paper §2.1.6: "we can apply reachability analysis
//! on the network to decide if a non-existing object could be derived from
//! existing data").
//!
//! Two engines:
//!
//! * [`saturate`] — exploits the monotonicity of Gaea's token-preserving
//!   mode: counts never decrease, so the set of fireable transitions only
//!   grows and a least fixpoint answers derivability exactly, in
//!   O(places · transitions) rounds. This is the production path.
//! * [`coverable`] — bounded breadth-first search over explicit markings,
//!   usable in *both* modes (classic semantics are not monotone). Used to
//!   cross-check saturation and for classic-mode analyses.

use crate::error::{PetriError, PetriResult};
use crate::firing::{enabled, enabled_transitions, fire, FiringMode};
use crate::marking::Marking;
use crate::net::{PetriNet, TransitionId};
use std::collections::{HashSet, VecDeque};

/// Result of [`saturate`].
#[derive(Debug, Clone)]
pub struct Saturation {
    /// The saturated marking: for each place, the maximum token count
    /// obtainable (capped at `cap` to keep things finite — in Gaea mode any
    /// repeatedly fireable producer can mint unboundedly many tokens).
    pub marking: Marking,
    /// Transitions that became fireable at some point.
    pub fired: Vec<TransitionId>,
    /// Number of fixpoint rounds.
    pub rounds: usize,
}

/// Gaea-mode saturation fixpoint: starting from `initial`, repeatedly fire
/// every enabled transition (token-preserving), accumulating output tokens,
/// until nothing changes. Token counts are capped at `cap`.
pub fn saturate(net: &PetriNet, initial: &Marking, cap: u64) -> Saturation {
    let mut marking = initial.clone();
    let mut fired_set: HashSet<usize> = HashSet::new();
    let mut fired = Vec::new();
    let mut rounds = 0;
    loop {
        rounds += 1;
        let mut changed = false;
        for t in net.transition_ids() {
            if enabled(net, &marking, t).unwrap_or(false) {
                if fired_set.insert(t.0) {
                    fired.push(t);
                }
                for out in &net.transition(t).expect("valid id").outputs {
                    let cur = marking.get(*out);
                    if cur < cap {
                        // A transition enabled in Gaea mode can fire
                        // arbitrarily often; jump straight to the cap.
                        marking.set(*out, cap);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    Saturation {
        marking,
        fired,
        rounds,
    }
}

/// True if `target` is coverable from `initial` in Gaea mode — i.e. the
/// requested objects are derivable from the stored data.
pub fn derivable(net: &PetriNet, initial: &Marking, target: &Marking) -> bool {
    let t_max = target.raw().iter().copied().max().unwrap_or(1).max(1);
    // The cap must also cover every arc threshold: a repeatedly fireable
    // producer can mint arbitrarily many tokens, so a downstream consumer
    // with a high threshold must be allowed to see enough of them.
    let thr_max = net
        .transition_ids()
        .flat_map(|t| {
            net.transition(t)
                .expect("valid id")
                .inputs
                .iter()
                .map(|a| a.threshold)
                .collect::<Vec<_>>()
        })
        .max()
        .unwrap_or(1);
    let cap = t_max
        .max(thr_max)
        .max(initial.raw().iter().copied().max().unwrap_or(0));
    let sat = saturate(net, initial, cap);
    sat.marking.dominates(target)
}

/// Bounded BFS coverability: can some reachable marking dominate `target`?
///
/// Works for both firing modes; errors with
/// [`PetriError::StateSpaceExceeded`] when more than `max_states` distinct
/// markings are visited.
pub fn coverable(
    net: &PetriNet,
    initial: &Marking,
    target: &Marking,
    mode: FiringMode,
    max_states: usize,
) -> PetriResult<bool> {
    let mut seen: HashSet<Vec<u64>> = HashSet::new();
    let mut queue = VecDeque::new();
    seen.insert(initial.raw().to_vec());
    queue.push_back(initial.clone());
    while let Some(m) = queue.pop_front() {
        if m.dominates(target) {
            return Ok(true);
        }
        for t in enabled_transitions(net, &m) {
            let mut next = fire(net, &m, t, mode)?;
            // Cap counts at the largest target requirement + classic slack:
            // anything above can be truncated without affecting coverability
            // in Gaea mode; in classic mode the cap must leave room for
            // consumption, so cap at target + total thresholds.
            let cap = cap_for(net, target, mode);
            for p in net.place_ids() {
                if next.get(p) > cap {
                    next.set(p, cap);
                }
            }
            if seen.insert(next.raw().to_vec()) {
                if seen.len() > max_states {
                    return Err(PetriError::StateSpaceExceeded(max_states));
                }
                queue.push_back(next);
            }
        }
    }
    Ok(false)
}

fn cap_for(net: &PetriNet, target: &Marking, mode: FiringMode) -> u64 {
    let t_max = target.raw().iter().copied().max().unwrap_or(1);
    match mode {
        FiringMode::GaeaPreserving => t_max.max(
            net.transition_ids()
                .flat_map(|t| {
                    net.transition(t)
                        .expect("valid id")
                        .inputs
                        .iter()
                        .map(|a| a.threshold)
                        .collect::<Vec<_>>()
                })
                .max()
                .unwrap_or(1),
        ),
        FiringMode::Classic => {
            let thr_sum: u64 = net
                .transition_ids()
                .flat_map(|t| {
                    net.transition(t)
                        .expect("valid id")
                        .inputs
                        .iter()
                        .map(|a| a.threshold)
                        .collect::<Vec<_>>()
                })
                .sum();
            t_max + thr_sum.max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::PlaceId;

    /// chain: base --t1--> mid --t2--> goal; alt: base2 --t3--> goal
    fn chain_net() -> (PetriNet, PlaceId, PlaceId, PlaceId, PlaceId) {
        let mut net = PetriNet::new();
        let base = net.add_base_place("base");
        let base2 = net.add_base_place("base2");
        let mid = net.add_place("mid");
        let goal = net.add_place("goal");
        net.add_transition("t1", &[(base, 2)], &[mid]).unwrap();
        net.add_transition("t2", &[(mid, 1)], &[goal]).unwrap();
        net.add_transition("t3", &[(base2, 1)], &[goal]).unwrap();
        (net, base, base2, mid, goal)
    }

    #[test]
    fn saturation_reaches_chain_end() {
        let (net, base, _, mid, goal) = chain_net();
        let init = Marking::from_counts(&net, &[(base, 2)]);
        let sat = saturate(&net, &init, 4);
        assert_eq!(sat.marking.get(mid), 4);
        assert_eq!(sat.marking.get(goal), 4);
        assert_eq!(sat.fired.len(), 2); // t1 and t2; t3 never enabled
    }

    #[test]
    fn saturation_blocked_below_threshold() {
        let (net, base, _, mid, goal) = chain_net();
        let init = Marking::from_counts(&net, &[(base, 1)]); // needs 2
        let sat = saturate(&net, &init, 4);
        assert_eq!(sat.marking.get(mid), 0);
        assert_eq!(sat.marking.get(goal), 0);
        assert!(sat.fired.is_empty());
    }

    #[test]
    fn derivable_answers_goal_queries() {
        let (net, base, base2, _, goal) = chain_net();
        let want_goal = Marking::from_counts(&net, &[(goal, 1)]);
        // Via the chain.
        let with_base = Marking::from_counts(&net, &[(base, 2)]);
        assert!(derivable(&net, &with_base, &want_goal));
        // Via the alternative producer.
        let with_base2 = Marking::from_counts(&net, &[(base2, 1)]);
        assert!(derivable(&net, &with_base2, &want_goal));
        // Insufficient base data.
        let short = Marking::from_counts(&net, &[(base, 1)]);
        assert!(!derivable(&net, &short, &want_goal));
    }

    #[test]
    fn bfs_agrees_with_saturation_in_gaea_mode() {
        let (net, base, base2, _, goal) = chain_net();
        let want = Marking::from_counts(&net, &[(goal, 1)]);
        for (init_counts, expect) in [
            (vec![(base, 2)], true),
            (vec![(base2, 1)], true),
            (vec![(base, 1)], false),
            (vec![], false),
        ] {
            let init = Marking::from_counts(&net, &init_counts);
            let bfs = coverable(&net, &init, &want, FiringMode::GaeaPreserving, 10_000).unwrap();
            assert_eq!(bfs, derivable(&net, &init, &want), "init {init_counts:?}");
            assert_eq!(bfs, expect);
        }
    }

    #[test]
    fn classic_mode_differs_tokens_consumed() {
        // base(2) --t1--> mid; t2: mid -> goal. In classic mode deriving
        // mid consumes the 2 base tokens; goal still reachable. But a net
        // where two consumers compete shows the difference:
        let mut net = PetriNet::new();
        let base = net.add_base_place("base");
        let x = net.add_place("x");
        let y = net.add_place("y");
        let both = net.add_place("both");
        net.add_transition("tx", &[(base, 1)], &[x]).unwrap();
        net.add_transition("ty", &[(base, 1)], &[y]).unwrap();
        net.add_transition("tb", &[(x, 1), (y, 1)], &[both])
            .unwrap();
        let init = Marking::from_counts(&net, &[(base, 1)]);
        let want = Marking::from_counts(&net, &[(both, 1)]);
        // One base token: classic semantics must choose tx OR ty.
        assert!(!coverable(&net, &init, &want, FiringMode::Classic, 10_000).unwrap());
        // Gaea semantics reuse the token: both branches fire.
        assert!(coverable(&net, &init, &want, FiringMode::GaeaPreserving, 10_000).unwrap());
        assert!(derivable(&net, &init, &want));
    }

    #[test]
    fn state_space_bound_enforced() {
        let (net, base, ..) = chain_net();
        let init = Marking::from_counts(&net, &[(base, 2)]);
        let unreachable = {
            let mut m = Marking::empty(&net);
            m.set(PlaceId(3), 1_000); // far beyond any cap
            m
        };
        let r = coverable(&net, &init, &unreachable, FiringMode::GaeaPreserving, 2);
        assert!(matches!(r, Err(PetriError::StateSpaceExceeded(2))));
    }

    #[test]
    fn multi_token_targets() {
        let (net, base, base2, _, goal) = chain_net();
        // Want two goal tokens: both producers can run.
        let init = Marking::from_counts(&net, &[(base, 2), (base2, 1)]);
        let want2 = Marking::from_counts(&net, &[(goal, 2)]);
        assert!(derivable(&net, &init, &want2));
    }
}
