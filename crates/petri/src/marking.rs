//! Markings: token counts per place.

use crate::net::{PetriNet, PlaceId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Token counts, indexed by place.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Marking {
    counts: Vec<u64>,
}

impl Marking {
    /// Empty marking sized for a net.
    pub fn empty(net: &PetriNet) -> Marking {
        Marking {
            counts: vec![0; net.place_count()],
        }
    }

    /// Marking from explicit `(place, count)` pairs.
    pub fn from_counts(net: &PetriNet, counts: &[(PlaceId, u64)]) -> Marking {
        let mut m = Marking::empty(net);
        for (p, c) in counts {
            m.counts[p.0] = *c;
        }
        m
    }

    /// Tokens at a place.
    pub fn get(&self, p: PlaceId) -> u64 {
        self.counts.get(p.0).copied().unwrap_or(0)
    }

    /// Set tokens at a place.
    pub fn set(&mut self, p: PlaceId, count: u64) {
        self.counts[p.0] = count;
    }

    /// Add tokens at a place (saturating).
    pub fn add(&mut self, p: PlaceId, delta: u64) {
        self.counts[p.0] = self.counts[p.0].saturating_add(delta);
    }

    /// Remove tokens (panics on underflow — firing checks enabledness first).
    pub fn remove(&mut self, p: PlaceId, delta: u64) {
        self.counts[p.0] = self.counts[p.0]
            .checked_sub(delta)
            .expect("marking underflow: fired a non-enabled transition");
    }

    /// Total tokens.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// True if every place of `other` is covered (`self ≥ other` pointwise).
    pub fn dominates(&self, other: &Marking) -> bool {
        self.counts.iter().zip(&other.counts).all(|(a, b)| a >= b)
    }

    /// Places currently holding tokens.
    pub fn marked_places(&self) -> Vec<PlaceId> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, _)| PlaceId(i))
            .collect()
    }

    /// Raw counts (for state-space hashing).
    pub fn raw(&self) -> &[u64] {
        &self.counts
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> (PetriNet, PlaceId, PlaceId) {
        let mut n = PetriNet::new();
        let a = n.add_base_place("a");
        let b = n.add_place("b");
        (n, a, b)
    }

    #[test]
    fn counts_and_mutation() {
        let (n, a, b) = net();
        let mut m = Marking::from_counts(&n, &[(a, 3)]);
        assert_eq!(m.get(a), 3);
        assert_eq!(m.get(b), 0);
        m.add(b, 2);
        m.remove(a, 1);
        assert_eq!(m.total(), 4);
        assert_eq!(m.marked_places(), vec![a, b]);
    }

    #[test]
    fn domination() {
        let (n, a, b) = net();
        let big = Marking::from_counts(&n, &[(a, 3), (b, 1)]);
        let small = Marking::from_counts(&n, &[(a, 2), (b, 1)]);
        assert!(big.dominates(&small));
        assert!(!small.dominates(&big));
        assert!(big.dominates(&big));
    }

    #[test]
    #[should_panic(expected = "marking underflow")]
    fn underflow_is_a_bug() {
        let (n, a, _) = net();
        let mut m = Marking::empty(&n);
        m.remove(a, 1);
    }

    #[test]
    fn display() {
        let (n, a, b) = net();
        let m = Marking::from_counts(&n, &[(a, 2), (b, 5)]);
        assert_eq!(m.to_string(), "[2 5]");
    }
}
