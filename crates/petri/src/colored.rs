//! Colored derivation nets: tokens carry data-object attributes and
//! transitions carry guard predicates (paper §2.1.6, modification 3).
//!
//! "In order to guarantee the integrity of data derivation, some form of
//! relationship may be required among the input data objects (tokens). For
//! example, the same or overlapping spatial coverage may be necessary. [...]
//! Only when such relationships are satisfied, will the transition be
//! enabled and fired."
//!
//! The token payload is generic: the kernel instantiates `T` with
//! spatio-temporal object descriptors and installs guards compiled from
//! process ASSERTIONS.

use crate::error::{PetriError, PetriResult};
use crate::net::{PetriNet, PlaceId, TransitionId};
use std::collections::HashMap;
use std::sync::Arc;

/// Guard over a candidate binding (the chosen input tokens, concatenated in
/// input-arc order).
pub type Guard<T> = Arc<dyn Fn(&[&T]) -> bool + Send + Sync>;

/// A binding: for each input arc, the indices of the chosen tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// Chosen token indices per input arc, parallel to the arc list.
    pub chosen: Vec<Vec<usize>>,
}

/// A Petri net whose places hold typed tokens and whose transitions may
/// carry guards. Firing is always token-preserving (Gaea mode).
pub struct ColoredNet<T> {
    net: PetriNet,
    tokens: Vec<Vec<T>>,
    guards: HashMap<usize, Guard<T>>,
    /// Cap on candidate bindings examined per enabling check.
    pub binding_budget: usize,
}

impl<T: Clone> ColoredNet<T> {
    /// Wrap a structural net; all places start empty.
    pub fn new(net: PetriNet) -> ColoredNet<T> {
        let places = net.place_count();
        ColoredNet {
            net,
            tokens: vec![Vec::new(); places],
            guards: HashMap::new(),
            binding_budget: 10_000,
        }
    }

    /// The structural net.
    pub fn net(&self) -> &PetriNet {
        &self.net
    }

    /// Install a guard on a transition.
    pub fn set_guard(&mut self, t: TransitionId, guard: Guard<T>) -> PetriResult<()> {
        self.net.transition(t)?;
        self.guards.insert(t.0, guard);
        Ok(())
    }

    /// Deposit a token (a data object) in a place.
    pub fn put(&mut self, p: PlaceId, token: T) -> PetriResult<()> {
        self.net.place(p)?;
        self.tokens[p.0].push(token);
        Ok(())
    }

    /// Tokens currently at a place.
    pub fn tokens_at(&self, p: PlaceId) -> &[T] {
        &self.tokens[p.0]
    }

    /// Search for a binding enabling `t`: for each input arc pick exactly
    /// `threshold` tokens (the minimum — the paper allows more, the kernel
    /// passes extra objects explicitly when it wants them) such that the
    /// guard accepts the combined selection.
    pub fn find_binding(&self, t: TransitionId) -> PetriResult<Option<Binding>> {
        let tr = self.net.transition(t)?;
        // Quick threshold check.
        for arc in &tr.inputs {
            if self.tokens[arc.place.0].len() < arc.threshold as usize {
                return Ok(None);
            }
        }
        let guard = self.guards.get(&t.0);
        let mut budget = self.binding_budget;
        let mut chosen: Vec<Vec<usize>> = Vec::with_capacity(tr.inputs.len());
        if self.search_arcs(tr, 0, &mut chosen, guard, &mut budget) {
            Ok(Some(Binding { chosen }))
        } else {
            Ok(None)
        }
    }

    fn search_arcs(
        &self,
        tr: &crate::net::Transition,
        arc_idx: usize,
        chosen: &mut Vec<Vec<usize>>,
        guard: Option<&Guard<T>>,
        budget: &mut usize,
    ) -> bool {
        if arc_idx == tr.inputs.len() {
            *budget = budget.saturating_sub(1);
            return match guard {
                None => true,
                Some(g) => {
                    let mut flat: Vec<&T> = Vec::new();
                    for (i, arc) in tr.inputs.iter().enumerate() {
                        for idx in &chosen[i] {
                            flat.push(&self.tokens[arc.place.0][*idx]);
                        }
                    }
                    g(&flat)
                }
            };
        }
        if *budget == 0 {
            return false;
        }
        let arc = &tr.inputs[arc_idx];
        let pool = self.tokens[arc.place.0].len();
        let k = arc.threshold as usize;
        // Enumerate k-combinations of [0, pool).
        let mut combo: Vec<usize> = (0..k).collect();
        loop {
            chosen.push(combo.clone());
            if self.search_arcs(tr, arc_idx + 1, chosen, guard, budget) {
                return true;
            }
            chosen.pop();
            if *budget == 0 {
                return false;
            }
            // Next combination.
            let mut i = k;
            loop {
                if i == 0 {
                    return false;
                }
                i -= 1;
                if combo[i] != i + pool - k {
                    combo[i] += 1;
                    for j in (i + 1)..k {
                        combo[j] = combo[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    /// True if a guard-satisfying binding exists.
    pub fn enabled(&self, t: TransitionId) -> PetriResult<bool> {
        Ok(self.find_binding(t)?.is_some())
    }

    /// Fire `t` with the first satisfying binding; `produce` computes the
    /// new token from the bound inputs (e.g. intersect extents). Inputs are
    /// preserved; the produced token lands in every output place.
    pub fn fire(&mut self, t: TransitionId, produce: impl Fn(&[&T]) -> T) -> PetriResult<Binding> {
        let binding = self.find_binding(t)?.ok_or_else(|| {
            PetriError::NotEnabled(
                self.net
                    .transition(t)
                    .map(|tr| tr.name.clone())
                    .unwrap_or_default(),
            )
        })?;
        let tr = self.net.transition(t)?.clone();
        let mut flat: Vec<&T> = Vec::new();
        for (i, arc) in tr.inputs.iter().enumerate() {
            for idx in &binding.chosen[i] {
                flat.push(&self.tokens[arc.place.0][*idx]);
            }
        }
        let new_token = produce(&flat);
        for out in &tr.outputs {
            self.tokens[out.0].push(new_token.clone());
        }
        Ok(binding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Token = (object id, spatial interval [lo, hi]).
    type Tok = (u32, (f64, f64));

    fn overlap_guard() -> Guard<Tok> {
        Arc::new(|toks: &[&Tok]| {
            for i in 0..toks.len() {
                for j in (i + 1)..toks.len() {
                    let (a, b) = (toks[i].1, toks[j].1);
                    if a.0 > b.1 || b.0 > a.1 {
                        return false;
                    }
                }
            }
            true
        })
    }

    fn scene_net() -> (PetriNet, PlaceId, PlaceId, TransitionId) {
        let mut net = PetriNet::new();
        let scenes = net.add_base_place("scenes");
        let change = net.add_place("change");
        let t = net
            .add_transition("P_change", &[(scenes, 2)], &[change])
            .unwrap();
        (net, scenes, change, t)
    }

    #[test]
    fn guard_blocks_disjoint_extents() {
        let (net, scenes, _, t) = scene_net();
        let mut cn: ColoredNet<Tok> = ColoredNet::new(net);
        cn.set_guard(t, overlap_guard()).unwrap();
        cn.put(scenes, (1, (0.0, 10.0))).unwrap();
        cn.put(scenes, (2, (20.0, 30.0))).unwrap();
        // Two tokens exist (threshold met) but extents are disjoint.
        assert!(!cn.enabled(t).unwrap());
        // Add an overlapping scene: now a binding exists.
        cn.put(scenes, (3, (5.0, 25.0))).unwrap();
        assert!(cn.enabled(t).unwrap());
        let binding = cn.find_binding(t).unwrap().unwrap();
        // The found pair must actually overlap: (1,3) or (2,3).
        let pair = &binding.chosen[0];
        assert!(
            pair.contains(&2),
            "the bridging scene participates: {pair:?}"
        );
    }

    #[test]
    fn fire_preserves_inputs_and_produces_output() {
        let (net, scenes, change, t) = scene_net();
        let mut cn: ColoredNet<Tok> = ColoredNet::new(net);
        cn.set_guard(t, overlap_guard()).unwrap();
        cn.put(scenes, (1, (0.0, 10.0))).unwrap();
        cn.put(scenes, (2, (5.0, 15.0))).unwrap();
        cn.fire(t, |toks| {
            // Intersection of extents, fresh id.
            let lo = toks
                .iter()
                .map(|t| t.1 .0)
                .fold(f64::NEG_INFINITY, f64::max);
            let hi = toks.iter().map(|t| t.1 .1).fold(f64::INFINITY, f64::min);
            (100, (lo, hi))
        })
        .unwrap();
        assert_eq!(cn.tokens_at(scenes).len(), 2, "inputs preserved");
        assert_eq!(cn.tokens_at(change), &[(100, (5.0, 10.0))]);
    }

    #[test]
    fn fire_disabled_errors() {
        let (net, scenes, _, t) = scene_net();
        let mut cn: ColoredNet<Tok> = ColoredNet::new(net);
        cn.put(scenes, (1, (0.0, 1.0))).unwrap();
        let err = cn.fire(t, |_| (0, (0.0, 0.0))).unwrap_err();
        assert!(matches!(err, PetriError::NotEnabled(_)));
    }

    #[test]
    fn unguarded_transition_uses_first_combination() {
        let (net, scenes, change, t) = scene_net();
        let mut cn: ColoredNet<Tok> = ColoredNet::new(net);
        cn.put(scenes, (1, (0.0, 1.0))).unwrap();
        cn.put(scenes, (2, (100.0, 101.0))).unwrap(); // disjoint, no guard
        let b = cn
            .fire(t, |toks| (toks[0].0 * 10 + toks[1].0, (0.0, 0.0)))
            .unwrap();
        assert_eq!(b.chosen, vec![vec![0, 1]]);
        assert_eq!(cn.tokens_at(change)[0].0, 12);
    }

    #[test]
    fn binding_budget_bounds_search() {
        let (net, scenes, _, t) = scene_net();
        let mut cn: ColoredNet<Tok> = ColoredNet::new(net);
        cn.binding_budget = 3;
        // Many tokens, impossible guard: search stops at the budget.
        for i in 0..30 {
            cn.put(scenes, (i, (i as f64 * 100.0, i as f64 * 100.0 + 1.0)))
                .unwrap();
        }
        cn.set_guard(t, overlap_guard()).unwrap();
        assert!(!cn.enabled(t).unwrap());
    }

    #[test]
    fn multi_arc_binding() {
        let mut net = PetriNet::new();
        let a = net.add_base_place("a");
        let b = net.add_base_place("b");
        let out = net.add_place("out");
        let t = net.add_transition("t", &[(a, 1), (b, 1)], &[out]).unwrap();
        let mut cn: ColoredNet<Tok> = ColoredNet::new(net);
        cn.set_guard(t, overlap_guard()).unwrap();
        cn.put(a, (1, (0.0, 10.0))).unwrap();
        cn.put(b, (2, (50.0, 60.0))).unwrap();
        assert!(!cn.enabled(t).unwrap());
        cn.put(b, (3, (8.0, 12.0))).unwrap();
        let binding = cn.find_binding(t).unwrap().unwrap();
        assert_eq!(binding.chosen[0], vec![0]);
        assert_eq!(binding.chosen[1], vec![1]); // the overlapping b-token
    }
}
