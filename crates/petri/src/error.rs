//! Error type for the Petri-net layer.

use std::fmt;

/// Errors raised by net construction and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PetriError {
    /// Reference to a place that does not exist.
    NoSuchPlace(usize),
    /// Reference to a transition that does not exist.
    NoSuchTransition(usize),
    /// A transition was fired while not enabled.
    NotEnabled(String),
    /// State-space exploration exceeded its configured bound.
    StateSpaceExceeded(usize),
    /// Structurally invalid net (e.g. transition without inputs where
    /// required, zero threshold).
    Malformed(String),
}

impl fmt::Display for PetriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PetriError::NoSuchPlace(i) => write!(f, "no such place: {i}"),
            PetriError::NoSuchTransition(i) => write!(f, "no such transition: {i}"),
            PetriError::NotEnabled(name) => write!(f, "transition not enabled: {name}"),
            PetriError::StateSpaceExceeded(n) => {
                write!(f, "state-space exploration exceeded {n} states")
            }
            PetriError::Malformed(msg) => write!(f, "malformed net: {msg}"),
        }
    }
}

impl std::error::Error for PetriError {}

/// Convenience alias.
pub type PetriResult<T> = Result<T, PetriError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            PetriError::NotEnabled("P20".into()).to_string(),
            "transition not enabled: P20"
        );
        assert_eq!(
            PetriError::StateSpaceExceeded(10).to_string(),
            "state-space exploration exceeded 10 states"
        );
    }
}
