//! Backward chaining: the derivation planner (paper §2.1.6).
//!
//! "Using PNs, the above procedure can be formulated as: given a final
//! marking, try to find the initial marking which can lead to this marking.
//! This initial marking will identify the specific data objects that can be
//! retrieved directly from the database."
//!
//! ## The distinct-binding refinement
//!
//! The paper's count-level net (see [`crate::reachability`]) allows a
//! transition to fire repeatedly from the same tokens. But Gaea's *object*
//! semantics make processes deterministic: the same process applied to the
//! same input objects derives the same object (§2.1.2's parameter rule and
//! the experiment-deduplication goal). A plan that fires P20 twice must
//! therefore feed each firing a **disjoint token set**. The planner models
//! this with transition *capacities*:
//!
//! ```text
//! capacity(t) = min over input arcs  ⌊ achievable(place) / threshold ⌋
//! achievable(p) = available(p) + Σ capacity(t) over producers t of p
//! ```
//!
//! computed as a Kleene fixpoint (monotone, bounded), followed by a
//! backward need-distribution pass that assigns firing counts to producers
//! in enabling-round order. Cyclic derivation structures (the paper's P5
//! derives a concept from itself) converge because capacities are bounded.
//!
//! On failure the planner reports where "back propagation stops at some
//! base class": base places with insufficient tokens, and derived places
//! with no producer at all.

use crate::marking::Marking;
use crate::net::{PetriNet, PlaceId, TransitionId};
use std::collections::{BTreeMap, HashMap};

/// Safety bound on per-transition firing capacity (guards unbounded
/// self-feeding cycles with threshold 1).
const CAPACITY_BOUND: u64 = 1 << 20;

/// A successful derivation plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivationPlan {
    /// Firings in execution order; `(transition, repetitions)`.
    pub firings: Vec<(TransitionId, u64)>,
}

impl DerivationPlan {
    /// Total number of individual firings.
    pub fn cost(&self) -> u64 {
        self.firings.iter().map(|(_, n)| n).sum()
    }

    /// True if the goal is already satisfied by stored data.
    pub fn is_empty(&self) -> bool {
        self.firings.is_empty()
    }

    /// Execute the plan against a marking (Gaea mode), returning the final
    /// marking. Panics if the plan is invalid for the marking — plans
    /// produced by [`plan_derivation`] against the same marking always
    /// execute (tested property).
    pub fn execute(&self, net: &PetriNet, initial: &Marking) -> Marking {
        let mut m = initial.clone();
        for (t, times) in &self.firings {
            for _ in 0..*times {
                m = crate::firing::fire(net, &m, *t, crate::firing::FiringMode::GaeaPreserving)
                    .expect("plan firing must be enabled");
            }
        }
        m
    }
}

/// Why planning failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanFailure {
    /// Base places whose stored tokens fall short ("back propagation stops
    /// at some base class and we fail to find the needed data").
    pub missing_base: Vec<PlaceId>,
    /// Derived places on the failure frontier with no producer.
    pub underivable: Vec<PlaceId>,
}

/// Forward capacity fixpoint.
struct Layers {
    /// First fixpoint round at which the transition gained capacity.
    round_of: HashMap<usize, usize>,
    /// Firing capacity under distinct-binding semantics.
    capacity: HashMap<usize, u64>,
    /// Achievable token counts (available + producible).
    achievable: Marking,
}

fn layered_saturation(net: &PetriNet, available: &Marking) -> Layers {
    let mut achievable = available.clone();
    let mut capacity: HashMap<usize, u64> = net.transition_ids().map(|t| (t.0, 0u64)).collect();
    let mut round_of: HashMap<usize, usize> = HashMap::new();
    let mut round = 0usize;
    loop {
        let mut changed = false;
        // Capacities from current achievable counts.
        for t in net.transition_ids() {
            let tr = net.transition(t).expect("valid id");
            let f = tr
                .inputs
                .iter()
                .map(|arc| achievable.get(arc.place) / arc.threshold)
                .min()
                .unwrap_or(CAPACITY_BOUND)
                .min(CAPACITY_BOUND);
            let entry = capacity.get_mut(&t.0).expect("prefilled");
            if f > *entry {
                *entry = f;
                changed = true;
                round_of.entry(t.0).or_insert(round);
            }
        }
        // Achievable counts from capacities.
        for p in net.place_ids() {
            let add: u64 = net
                .producers_of(p)
                .iter()
                .map(|t| capacity[&t.0])
                .fold(0u64, u64::saturating_add);
            let new = available.get(p).saturating_add(add.min(CAPACITY_BOUND));
            if new > achievable.get(p) {
                achievable.set(p, new);
                changed = true;
            }
        }
        if !changed {
            break;
        }
        round += 1;
    }
    Layers {
        round_of,
        capacity,
        achievable,
    }
}

/// Plan the derivation of `need` tokens in `goal` from `available`.
pub fn plan_derivation(
    net: &PetriNet,
    available: &Marking,
    goal: PlaceId,
    need: u64,
) -> Result<DerivationPlan, PlanFailure> {
    plan_derivation_multi(net, available, &[(goal, need)])
}

/// Plan several goals at once; shared sub-derivations are merged (a
/// producer fired for two goals is planned once with the combined count).
pub fn plan_derivation_multi(
    net: &PetriNet,
    available: &Marking,
    goals: &[(PlaceId, u64)],
) -> Result<DerivationPlan, PlanFailure> {
    let layers = layered_saturation(net, available);

    // Feasibility.
    let unreachable: Vec<PlaceId> = goals
        .iter()
        .filter(|(p, n)| layers.achievable.get(*p) < *n)
        .map(|(p, _)| *p)
        .collect();
    if !unreachable.is_empty() {
        return Err(diagnose_failure(
            net,
            available,
            &layers,
            &unreachable,
            goals,
        ));
    }

    // Backward need distribution (iterative fixpoint; monotone, bounded by
    // the capacities, which feasibility has already validated).
    let mut needed: HashMap<usize, u64> = HashMap::new();
    for (p, n) in goals {
        let e = needed.entry(p.0).or_insert(0);
        *e = (*e).max(*n);
    }
    let mut planned: BTreeMap<usize, u64> = BTreeMap::new();
    loop {
        let mut changed = false;
        // (1) Cover each place's deficit with producer firings, cheapest
        //     (earliest-enabled) producers first.
        let snapshot: Vec<(usize, u64)> = needed.iter().map(|(p, n)| (*p, *n)).collect();
        for (p, n) in snapshot {
            let place = PlaceId(p);
            let have = available.get(place);
            let deficit = n.saturating_sub(have);
            if deficit == 0 {
                continue;
            }
            let mut producers: Vec<(usize, TransitionId)> = net
                .producers_of(place)
                .into_iter()
                .filter_map(|t| layers.round_of.get(&t.0).map(|r| (*r, t)))
                .collect();
            producers.sort_by_key(|(r, t)| (*r, t.0));
            let produced: u64 = producers
                .iter()
                .map(|(_, t)| planned.get(&t.0).copied().unwrap_or(0))
                .sum();
            if produced >= deficit {
                continue;
            }
            let mut remaining = deficit - produced;
            for (_, t) in producers {
                let cur = planned.entry(t.0).or_insert(0);
                let headroom = layers.capacity[&t.0].saturating_sub(*cur);
                let take = headroom.min(remaining);
                if take > 0 {
                    *cur += take;
                    remaining -= take;
                    changed = true;
                }
                if remaining == 0 {
                    break;
                }
            }
            debug_assert_eq!(
                remaining, 0,
                "feasibility check guarantees coverable deficits"
            );
        }
        // (2) Planned firings induce input-token requirements. Distinct
        //     firings of one transition need disjoint sets (threshold × f);
        //     different transitions share tokens freely (max, not sum).
        for (t, f) in &planned {
            let tr = net.transition(TransitionId(*t)).expect("valid id");
            for arc in &tr.inputs {
                let req = arc.threshold.saturating_mul(*f);
                let e = needed.entry(arc.place.0).or_insert(0);
                if req > *e {
                    *e = req;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Execution order: by enabling round, then id.
    let mut firings: Vec<(TransitionId, u64)> = planned
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .map(|(t, n)| (TransitionId(t), n))
        .collect();
    firings.sort_by_key(|(t, _)| (layers.round_of[&t.0], t.0));
    Ok(DerivationPlan { firings })
}

/// Walk backward from unreachable goals, collecting the failure frontier.
fn diagnose_failure(
    net: &PetriNet,
    available: &Marking,
    layers: &Layers,
    unreachable_goals: &[PlaceId],
    goals: &[(PlaceId, u64)],
) -> PlanFailure {
    use std::collections::BTreeSet;
    let mut missing_base: BTreeSet<usize> = BTreeSet::new();
    let mut underivable: BTreeSet<usize> = BTreeSet::new();
    let mut visited: BTreeSet<usize> = BTreeSet::new();
    // (place, tokens still wanted there)
    let mut stack: Vec<(PlaceId, u64)> = unreachable_goals
        .iter()
        .map(|p| {
            let n = goals
                .iter()
                .find(|(g, _)| g == p)
                .map(|(_, n)| *n)
                .unwrap_or(1);
            (*p, n)
        })
        .collect();
    while let Some((p, want)) = stack.pop() {
        if !visited.insert(p.0) {
            continue;
        }
        if layers.achievable.get(p) >= want {
            continue; // satisfiable here; shortage lies elsewhere
        }
        let place = net.place(p).expect("valid id");
        if place.is_base {
            missing_base.insert(p.0);
            continue;
        }
        let producers = net.producers_of(p);
        if producers.is_empty() {
            underivable.insert(p.0);
            continue;
        }
        let deficit = want.saturating_sub(available.get(p)).max(1);
        for t in producers {
            let tr = net.transition(t).expect("valid id");
            for arc in &tr.inputs {
                // The producer would need `threshold × deficit` distinct
                // tokens here to close the gap alone; anything short of
                // that makes the input part of the frontier.
                let req = arc.threshold.saturating_mul(deficit);
                if layers.achievable.get(arc.place) < req {
                    stack.push((arc.place, req));
                }
            }
        }
    }
    PlanFailure {
        missing_base: missing_base.into_iter().map(PlaceId).collect(),
        underivable: underivable.into_iter().map(PlaceId).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reachability::derivable;

    /// Figure-2-like net:
    ///   tm (base) --P20(≥3)--> land_cover
    ///   land_cover x2 --P_change--> change
    ///   tm (base) --P_ndvi(≥2)--> ndvi
    ///   ndvi (≥2) --P5(interp, self-concept)--> ndvi   (cycle)
    fn figure_net() -> (PetriNet, [PlaceId; 4], [TransitionId; 4]) {
        let mut net = PetriNet::new();
        let tm = net.add_base_place("tm");
        let lc = net.add_place("land_cover");
        let change = net.add_place("change");
        let ndvi = net.add_place("ndvi");
        let p20 = net.add_transition("P20", &[(tm, 3)], &[lc]).unwrap();
        let pch = net
            .add_transition("P_change", &[(lc, 2)], &[change])
            .unwrap();
        let pnd = net.add_transition("P_ndvi", &[(tm, 2)], &[ndvi]).unwrap();
        let p5 = net
            .add_transition("P5_interp", &[(ndvi, 2)], &[ndvi])
            .unwrap();
        (net, [tm, lc, change, ndvi], [p20, pch, pnd, p5])
    }

    #[test]
    fn empty_plan_when_stored() {
        let (net, [_, lc, ..], _) = figure_net();
        let avail = Marking::from_counts(&net, &[(lc, 1)]);
        let plan = plan_derivation(&net, &avail, lc, 1).unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.cost(), 0);
    }

    #[test]
    fn single_step_plan() {
        let (net, [tm, lc, ..], [p20, ..]) = figure_net();
        let avail = Marking::from_counts(&net, &[(tm, 3)]);
        let plan = plan_derivation(&net, &avail, lc, 1).unwrap();
        assert_eq!(plan.firings, vec![(p20, 1)]);
        let end = plan.execute(&net, &avail);
        assert_eq!(end.get(lc), 1);
        assert_eq!(end.get(tm), 3, "token preservation");
    }

    #[test]
    fn distinct_binding_rule_requires_disjoint_inputs() {
        // change needs 2 land_cover objects. With only 3 tm scenes, P20 can
        // realize ONE distinct classification — firing it twice on the same
        // bands would derive the same object, so the plan must fail.
        let (net, [tm, _, change, _], _) = figure_net();
        let avail = Marking::from_counts(&net, &[(tm, 3)]);
        let err = plan_derivation(&net, &avail, change, 1).unwrap_err();
        assert_eq!(err.missing_base, vec![tm]);
        // Six scenes (two epochs) make it feasible: P20 ×2, P_change ×1.
        let avail6 = Marking::from_counts(&net, &[(tm, 6)]);
        let plan = plan_derivation(&net, &avail6, change, 1).unwrap();
        let (p20, pch) = (TransitionId(0), TransitionId(1));
        assert_eq!(plan.firings, vec![(p20, 2), (pch, 1)]);
        assert_eq!(plan.cost(), 3);
        let end = plan.execute(&net, &avail6);
        assert_eq!(end.get(change), 1);
    }

    #[test]
    fn stored_partials_reduce_the_plan() {
        // One land_cover stored: P20 fires once, not twice.
        let (net, [tm, lc, change, _], [p20, pch, ..]) = figure_net();
        let avail = Marking::from_counts(&net, &[(tm, 3), (lc, 1)]);
        let plan = plan_derivation(&net, &avail, change, 1).unwrap();
        assert_eq!(plan.firings, vec![(p20, 1), (pch, 1)]);
        let end = plan.execute(&net, &avail);
        assert_eq!(end.get(change), 1);
    }

    #[test]
    fn failure_reports_missing_base() {
        let (net, [tm, _, change, _], _) = figure_net();
        let avail = Marking::from_counts(&net, &[(tm, 2)]); // P20 needs 3
        let err = plan_derivation(&net, &avail, change, 1).unwrap_err();
        assert_eq!(err.missing_base, vec![tm]);
        assert!(err.underivable.is_empty());
    }

    #[test]
    fn failure_reports_underivable_orphan() {
        let mut net = PetriNet::new();
        let orphan = net.add_place("orphan");
        let avail = Marking::empty(&net);
        let err = plan_derivation(&net, &avail, orphan, 1).unwrap_err();
        assert!(err.missing_base.is_empty());
        assert_eq!(err.underivable, vec![orphan]);
    }

    #[test]
    fn self_cycle_interpolation_terminates() {
        // P5 derives ndvi from ndvi (threshold 2): with 2 stored ndvi
        // objects a third is derivable via the cycle.
        let (net, [_, _, _, ndvi], [_, _, _, p5]) = figure_net();
        let avail = Marking::from_counts(&net, &[(ndvi, 2)]);
        let plan = plan_derivation(&net, &avail, ndvi, 3).unwrap();
        assert_eq!(plan.firings, vec![(p5, 1)]);
        let end = plan.execute(&net, &avail);
        assert_eq!(end.get(ndvi), 3);
        // But with only 1 stored object the cycle cannot bootstrap itself.
        let short = Marking::from_counts(&net, &[(ndvi, 1)]);
        assert!(plan_derivation(&net, &short, ndvi, 3).is_err());
    }

    #[test]
    fn threshold_one_self_cycle_is_bounded() {
        // f(x) = x self-feeding loop: capacities are clamped, planning a
        // large-but-finite need still terminates and succeeds.
        let mut net = PetriNet::new();
        let x = net.add_place("x");
        let t = net.add_transition("dup", &[(x, 1)], &[x]).unwrap();
        let avail = Marking::from_counts(&net, &[(x, 1)]);
        let plan = plan_derivation(&net, &avail, x, 100).unwrap();
        assert_eq!(plan.firings, vec![(t, 99)]);
    }

    #[test]
    fn alternative_producers_earliest_round_wins() {
        let mut net = PetriNet::new();
        let b1 = net.add_base_place("b1");
        let b2 = net.add_base_place("b2");
        let mid = net.add_place("mid");
        let goal = net.add_place("goal");
        // Long path: b1 -> mid -> goal ; short path: b2 -> goal
        net.add_transition("t_long1", &[(b1, 1)], &[mid]).unwrap();
        let t_long2 = net.add_transition("t_long2", &[(mid, 1)], &[goal]).unwrap();
        let t_short = net.add_transition("t_short", &[(b2, 1)], &[goal]).unwrap();
        // Both available: planner picks a round-0 producer (t_short).
        let avail = Marking::from_counts(&net, &[(b1, 1), (b2, 1)]);
        let plan = plan_derivation(&net, &avail, goal, 1).unwrap();
        assert_eq!(plan.firings, vec![(t_short, 1)]);
        // Only the long path available: planner uses it.
        let only_long = Marking::from_counts(&net, &[(b1, 1)]);
        let plan2 = plan_derivation(&net, &only_long, goal, 1).unwrap();
        assert_eq!(plan2.firings.last().unwrap().0, t_long2);
        assert_eq!(plan2.cost(), 2);
    }

    #[test]
    fn alternatives_combine_capacities() {
        // Two producers each capable of one firing jointly cover a need of
        // 2 + 1 stored = 3.
        let mut net = PetriNet::new();
        let b1 = net.add_base_place("b1");
        let b2 = net.add_base_place("b2");
        let goal = net.add_place("goal");
        let ta = net.add_transition("ta", &[(b1, 1)], &[goal]).unwrap();
        let tb = net.add_transition("tb", &[(b2, 1)], &[goal]).unwrap();
        let avail = Marking::from_counts(&net, &[(b1, 1), (b2, 1), (goal, 1)]);
        let plan = plan_derivation(&net, &avail, goal, 3).unwrap();
        assert_eq!(plan.cost(), 2);
        assert!(plan.firings.contains(&(ta, 1)));
        assert!(plan.firings.contains(&(tb, 1)));
        // Need 4: infeasible.
        assert!(plan_derivation(&net, &avail, goal, 4).is_err());
    }

    #[test]
    fn multi_goal_plans_share_subderivations() {
        let (net, [tm, lc, change, ndvi], [p20, pch, pnd, _]) = figure_net();
        let avail = Marking::from_counts(&net, &[(tm, 6)]);
        let plan = plan_derivation_multi(&net, &avail, &[(change, 1), (ndvi, 1), (lc, 2)]).unwrap();
        // P20 fired exactly twice (shared between the change goal and the
        // explicit lc goal), not four times.
        let p20_times = plan
            .firings
            .iter()
            .find(|(t, _)| *t == p20)
            .map(|(_, n)| *n)
            .unwrap();
        assert_eq!(p20_times, 2);
        let end = plan.execute(&net, &avail);
        assert_eq!(end.get(change), 1);
        assert!(end.get(ndvi) >= 1);
        assert!(end.get(lc) >= 2);
        assert!(plan.firings.iter().any(|(t, _)| *t == pch));
        assert!(plan.firings.iter().any(|(t, _)| *t == pnd));
    }

    #[test]
    fn planner_is_sound_wrt_reachability() {
        // The distinct-binding refinement only *restricts* the paper's
        // count semantics: whenever the planner succeeds, count-level
        // reachability must agree, and the plan must execute to the goal.
        let (net, [tm, lc, change, ndvi], _) = figure_net();
        for counts in [
            vec![],
            vec![(tm, 1)],
            vec![(tm, 3)],
            vec![(tm, 6)],
            vec![(lc, 2)],
            vec![(ndvi, 2)],
            vec![(tm, 2), (lc, 1)],
        ] {
            let avail = Marking::from_counts(&net, &counts);
            for goal in [lc, change, ndvi] {
                if let Ok(plan) = plan_derivation(&net, &avail, goal, 1) {
                    let want = Marking::from_counts(&net, &[(goal, 1)]);
                    assert!(
                        derivable(&net, &avail, &want),
                        "planner accepted an underivable goal: {counts:?} -> {goal:?}"
                    );
                    let end = plan.execute(&net, &avail);
                    assert!(end.get(goal) >= 1);
                }
            }
        }
    }

    #[test]
    fn quantitative_shortage_diagnosed_to_base() {
        // change needs 2 distinct land_cover; 3 tm scenes support only one
        // P20 firing. The diagnosis should point at tm (quantitative), not
        // claim underivability.
        let (net, [tm, _, change, _], _) = figure_net();
        let avail = Marking::from_counts(&net, &[(tm, 3)]);
        let err = plan_derivation(&net, &avail, change, 1).unwrap_err();
        assert_eq!(err.missing_base, vec![tm]);
        assert!(err.underivable.is_empty());
    }
}
