//! Net structure: places, transitions, threshold arcs.

use crate::error::{PetriError, PetriResult};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a place (a non-primitive class in the derivation diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PlaceId(pub usize);

/// Index of a transition (a derivation process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TransitionId(pub usize);

/// A place.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Place {
    /// Human-readable name (class name, e.g. "C20" / "land_cover").
    pub name: String,
    /// True if this place holds base data (cannot be derived; back
    /// propagation stops here, §2.1.6 step 3).
    pub is_base: bool,
}

/// An input arc with the paper's threshold semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputArc {
    /// Source place.
    pub place: PlaceId,
    /// Minimum number of tokens required to enable ("more tokens than the
    /// threshold may be used").
    pub threshold: u64,
}

/// A transition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Transition {
    /// Human-readable name (process name, e.g. "P20").
    pub name: String,
    /// Input arcs.
    pub inputs: Vec<InputArc>,
    /// Output places (one token produced in each on firing).
    pub outputs: Vec<PlaceId>,
}

/// A derivation diagram.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PetriNet {
    places: Vec<Place>,
    transitions: Vec<Transition>,
}

impl PetriNet {
    /// Empty net.
    pub fn new() -> PetriNet {
        PetriNet::default()
    }

    /// Add a derivable (non-base) place.
    pub fn add_place(&mut self, name: &str) -> PlaceId {
        self.places.push(Place {
            name: name.into(),
            is_base: false,
        });
        PlaceId(self.places.len() - 1)
    }

    /// Add a base-data place.
    pub fn add_base_place(&mut self, name: &str) -> PlaceId {
        self.places.push(Place {
            name: name.into(),
            is_base: true,
        });
        PlaceId(self.places.len() - 1)
    }

    /// Add a transition; inputs are `(place, threshold)` pairs.
    pub fn add_transition(
        &mut self,
        name: &str,
        inputs: &[(PlaceId, u64)],
        outputs: &[PlaceId],
    ) -> PetriResult<TransitionId> {
        for (p, thr) in inputs {
            self.place(*p)?;
            if *thr == 0 {
                return Err(PetriError::Malformed(format!(
                    "transition {name}: zero threshold on input {}",
                    p.0
                )));
            }
        }
        if outputs.is_empty() {
            return Err(PetriError::Malformed(format!(
                "transition {name}: no outputs (a process derives something)"
            )));
        }
        for p in outputs {
            self.place(*p)?;
            if self.places[p.0].is_base {
                return Err(PetriError::Malformed(format!(
                    "transition {name}: output to base place {}",
                    self.places[p.0].name
                )));
            }
        }
        self.transitions.push(Transition {
            name: name.into(),
            inputs: inputs
                .iter()
                .map(|(place, threshold)| InputArc {
                    place: *place,
                    threshold: *threshold,
                })
                .collect(),
            outputs: outputs.to_vec(),
        });
        Ok(TransitionId(self.transitions.len() - 1))
    }

    /// Place accessor.
    pub fn place(&self, id: PlaceId) -> PetriResult<&Place> {
        self.places.get(id.0).ok_or(PetriError::NoSuchPlace(id.0))
    }

    /// Transition accessor.
    pub fn transition(&self, id: TransitionId) -> PetriResult<&Transition> {
        self.transitions
            .get(id.0)
            .ok_or(PetriError::NoSuchTransition(id.0))
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// All place ids.
    pub fn place_ids(&self) -> impl Iterator<Item = PlaceId> {
        (0..self.places.len()).map(PlaceId)
    }

    /// All transition ids.
    pub fn transition_ids(&self) -> impl Iterator<Item = TransitionId> {
        (0..self.transitions.len()).map(TransitionId)
    }

    /// Transitions with `place` among their outputs (the alternative
    /// derivation processes for a class).
    pub fn producers_of(&self, place: PlaceId) -> Vec<TransitionId> {
        self.transition_ids()
            .filter(|t| self.transitions[t.0].outputs.contains(&place))
            .collect()
    }

    /// Transitions with `place` among their inputs.
    pub fn consumers_of(&self, place: PlaceId) -> Vec<TransitionId> {
        self.transition_ids()
            .filter(|t| {
                self.transitions[t.0]
                    .inputs
                    .iter()
                    .any(|a| a.place == place)
            })
            .collect()
    }

    /// Find a place by name.
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.places.iter().position(|p| p.name == name).map(PlaceId)
    }

    /// Find a transition by name.
    pub fn transition_by_name(&self, name: &str) -> Option<TransitionId> {
        self.transitions
            .iter()
            .position(|t| t.name == name)
            .map(TransitionId)
    }
}

impl fmt::Display for PetriNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "petri net: {} places, {} transitions",
            self.places.len(),
            self.transitions.len()
        )?;
        for t in &self.transitions {
            write!(f, "  {}: ", t.name)?;
            for (i, arc) in t.inputs.iter().enumerate() {
                if i > 0 {
                    write!(f, " + ")?;
                }
                write!(f, "{}", self.places[arc.place.0].name)?;
                if arc.threshold > 1 {
                    write!(f, "(≥{})", arc.threshold)?;
                }
            }
            write!(f, " -> ")?;
            for (i, p) in t.outputs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.places[p.0].name)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example: Landsat TM (base) --P20--> land cover.
    pub(crate) fn p20_net() -> (PetriNet, PlaceId, PlaceId, TransitionId) {
        let mut net = PetriNet::new();
        let tm = net.add_base_place("rectified_tm");
        let lc = net.add_place("land_cover");
        // card(bands) = 3: threshold 3 on the TM place.
        let p20 = net.add_transition("P20", &[(tm, 3)], &[lc]).unwrap();
        (net, tm, lc, p20)
    }

    #[test]
    fn construction_and_lookup() {
        let (net, tm, lc, p20) = p20_net();
        assert_eq!(net.place_count(), 2);
        assert_eq!(net.transition_count(), 1);
        assert!(net.place(tm).unwrap().is_base);
        assert!(!net.place(lc).unwrap().is_base);
        assert_eq!(net.transition(p20).unwrap().inputs[0].threshold, 3);
        assert_eq!(net.place_by_name("land_cover"), Some(lc));
        assert_eq!(net.transition_by_name("P20"), Some(p20));
        assert_eq!(net.place_by_name("nope"), None);
    }

    #[test]
    fn producers_and_consumers() {
        let (net, tm, lc, p20) = p20_net();
        assert_eq!(net.producers_of(lc), vec![p20]);
        assert!(net.producers_of(tm).is_empty());
        assert_eq!(net.consumers_of(tm), vec![p20]);
        assert!(net.consumers_of(lc).is_empty());
    }

    #[test]
    fn malformed_rejected() {
        let mut net = PetriNet::new();
        let a = net.add_base_place("a");
        let b = net.add_place("b");
        // Zero threshold.
        assert!(net.add_transition("t", &[(a, 0)], &[b]).is_err());
        // No outputs.
        assert!(net.add_transition("t", &[(a, 1)], &[]).is_err());
        // Output into base data.
        assert!(net.add_transition("t", &[(b, 1)], &[a]).is_err());
        // Dangling place reference.
        assert!(net.add_transition("t", &[(PlaceId(99), 1)], &[b]).is_err());
    }

    #[test]
    fn display_shows_thresholds() {
        let (net, ..) = p20_net();
        let s = net.to_string();
        assert!(s.contains("P20"));
        assert!(s.contains("rectified_tm(≥3) -> land_cover"));
    }

    #[test]
    fn alternative_producers_listed() {
        // Figure 2: C7 by P7 (PCA), C8 by P8 (SPCA) — vegetation change has
        // two derivations; and P5 derives C5 from C2 (same concept).
        let mut net = PetriNet::new();
        let tm = net.add_base_place("tm");
        let veg = net.add_place("veg_change");
        let p7 = net.add_transition("P7_pca", &[(tm, 2)], &[veg]).unwrap();
        let p8 = net.add_transition("P8_spca", &[(tm, 2)], &[veg]).unwrap();
        assert_eq!(net.producers_of(veg), vec![p7, p8]);
    }
}
