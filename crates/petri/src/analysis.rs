//! Structural analysis of derivation diagrams.
//!
//! §4.2: "Derivation diagrams can be used to 1) browse data following their
//! derivation relationships, 2) compare derivation procedures [...]". The
//! helpers here support browsing and schema sanity checks: dead processes,
//! underivable classes, cyclic derivation structures (legal — interpolation
//! is self-cyclic — but worth surfacing), and ancestor/descendant closures.

use crate::marking::Marking;
use crate::net::{PetriNet, PlaceId, TransitionId};
use crate::reachability::saturate;
use std::collections::BTreeSet;

/// Transitions that can never fire from `initial` (their guards aside).
pub fn dead_transitions(net: &PetriNet, initial: &Marking) -> Vec<TransitionId> {
    let cap = net
        .transition_ids()
        .flat_map(|t| {
            net.transition(t)
                .expect("valid id")
                .inputs
                .iter()
                .map(|a| a.threshold)
                .collect::<Vec<_>>()
        })
        .max()
        .unwrap_or(1);
    let sat = saturate(net, initial, cap);
    let fired: BTreeSet<usize> = sat.fired.iter().map(|t| t.0).collect();
    net.transition_ids()
        .filter(|t| !fired.contains(&t.0))
        .collect()
}

/// Derived (non-base) places that no reachable firing can populate.
pub fn underivable_places(net: &PetriNet, initial: &Marking) -> Vec<PlaceId> {
    let cap = 1;
    let sat = saturate(net, initial, cap);
    net.place_ids()
        .filter(|p| !net.place(*p).expect("valid id").is_base)
        .filter(|p| sat.marking.get(*p) == 0)
        .collect()
}

/// All places from which `place` can be derived (transitive inputs of its
/// producers): the "derivation ancestors" used for lineage browsing.
pub fn ancestor_places(net: &PetriNet, place: PlaceId) -> Vec<PlaceId> {
    let mut out: BTreeSet<usize> = BTreeSet::new();
    let mut stack = vec![place];
    while let Some(p) = stack.pop() {
        for t in net.producers_of(p) {
            for arc in &net.transition(t).expect("valid id").inputs {
                if arc.place != place && out.insert(arc.place.0) {
                    stack.push(arc.place);
                }
            }
        }
    }
    out.into_iter().map(PlaceId).collect()
}

/// All places derivable (transitively) from `place`: the "derivation
/// descendants".
pub fn descendant_places(net: &PetriNet, place: PlaceId) -> Vec<PlaceId> {
    let mut out: BTreeSet<usize> = BTreeSet::new();
    let mut stack = vec![place];
    while let Some(p) = stack.pop() {
        for t in net.consumers_of(p) {
            for o in &net.transition(t).expect("valid id").outputs {
                if *o != place && out.insert(o.0) {
                    stack.push(*o);
                }
            }
        }
    }
    out.into_iter().map(PlaceId).collect()
}

/// True if the derivation structure contains a place-level cycle (a class
/// transitively derivable from itself, like interpolation's P5).
pub fn has_derivation_cycle(net: &PetriNet) -> bool {
    // DFS over the place → place edges induced by transitions.
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Unseen,
        Active,
        Done,
    }
    let n = net.place_count();
    let mut state = vec![State::Unseen; n];
    fn dfs(net: &PetriNet, p: usize, state: &mut Vec<State>) -> bool {
        state[p] = State::Active;
        for t in net.consumers_of(PlaceId(p)) {
            for o in &net.transition(t).expect("valid id").outputs {
                match state[o.0] {
                    State::Active => return true,
                    State::Unseen => {
                        if dfs(net, o.0, state) {
                            return true;
                        }
                    }
                    State::Done => {}
                }
            }
        }
        state[p] = State::Done;
        false
    }
    for p in 0..n {
        if state[p] == State::Unseen && dfs(net, p, &mut state) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> (PetriNet, [PlaceId; 4]) {
        let mut net = PetriNet::new();
        let base = net.add_base_place("base");
        let a = net.add_place("a");
        let b = net.add_place("b");
        let orphan = net.add_place("orphan");
        net.add_transition("t1", &[(base, 1)], &[a]).unwrap();
        net.add_transition("t2", &[(a, 1)], &[b]).unwrap();
        net.add_transition("t3", &[(orphan, 1)], &[b]).unwrap();
        (net, [base, a, b, orphan])
    }

    #[test]
    fn dead_and_underivable() {
        let (net, [base, _, _, orphan]) = chain();
        let init = Marking::from_counts(&net, &[(base, 1)]);
        let dead = dead_transitions(&net, &init);
        assert_eq!(dead.len(), 1); // t3: orphan never marked
        assert_eq!(net.transition(dead[0]).unwrap().name, "t3");
        let und = underivable_places(&net, &init);
        assert_eq!(und, vec![orphan]);
        // With nothing stored, everything derived is underivable.
        let empty = Marking::empty(&net);
        assert_eq!(underivable_places(&net, &empty).len(), 3);
    }

    #[test]
    fn ancestors_and_descendants() {
        let (net, [base, a, b, orphan]) = chain();
        assert_eq!(ancestor_places(&net, b), vec![base, a, orphan]);
        assert_eq!(ancestor_places(&net, a), vec![base]);
        assert!(ancestor_places(&net, base).is_empty());
        assert_eq!(descendant_places(&net, base), vec![a, b]);
        assert_eq!(descendant_places(&net, orphan), vec![b]);
        assert!(descendant_places(&net, b).is_empty());
    }

    #[test]
    fn cycle_detection() {
        let (net, _) = chain();
        assert!(!has_derivation_cycle(&net));
        // Interpolation-style self-derivation.
        let mut cyclic = PetriNet::new();
        let ndvi = cyclic.add_place("ndvi");
        cyclic.add_transition("P5", &[(ndvi, 2)], &[ndvi]).unwrap();
        assert!(has_derivation_cycle(&cyclic));
        // Two-step cycle.
        let mut two = PetriNet::new();
        let x = two.add_place("x");
        let y = two.add_place("y");
        two.add_transition("f", &[(x, 1)], &[y]).unwrap();
        two.add_transition("g", &[(y, 1)], &[x]).unwrap();
        assert!(has_derivation_cycle(&two));
    }
}
