//! # gaea-petri — derivation diagrams (paper §2.1.6)
//!
//! "Every non-primitive class, which is a member of a concept, corresponds
//! to a place in a PN, and every process corresponds to a transition.
//! Tokens in every place represent the data objects needed for the
//! instantiation of a process."
//!
//! The paper modifies classic Petri-net semantics in three ways, all
//! implemented here:
//!
//! 1. **Token preservation** — "tokens (data objects) used for derivation
//!    are permanent and can be reused"; firing does not remove input
//!    tokens ([`firing::FiringMode::GaeaPreserving`]).
//! 2. **Threshold arcs** — "the number of inputs to a transition denotes
//!    the *minimum* number of tokens needed [...] more tokens than the
//!    threshold may be used" (input-arc `threshold`, e.g. PCA needs ≥ 2
//!    images).
//! 3. **Guards** — "some form of relationship may be required among the
//!    input data objects (tokens). For example, the same or overlapping
//!    spatial coverage" ([`colored`] nets bind real token attributes and
//!    evaluate guard predicates before enabling).
//!
//! Token preservation makes the net *monotone*: a fired transition stays
//! fireable, token counts never decrease, and derivability becomes a simple
//! saturation fixpoint ([`reachability::saturate`]) instead of general
//! Petri reachability. The planner ([`backward`]) answers the paper's
//! retrieval question — "given a final marking, try to find the initial
//! marking which can lead to this marking" — by AND-OR search over
//! producing transitions, reporting either an ordered firing plan or the
//! set of missing base places where "back propagation stops".

pub mod analysis;
pub mod backward;
pub mod colored;
pub mod dot;
pub mod error;
pub mod firing;
pub mod marking;
pub mod net;
pub mod reachability;

pub use backward::{plan_derivation, DerivationPlan, PlanFailure};
pub use error::{PetriError, PetriResult};
pub use firing::FiringMode;
pub use marking::Marking;
pub use net::{PetriNet, PlaceId, TransitionId};
