//! Graphviz (DOT) export of derivation diagrams.
//!
//! §5: "Derivation diagrams provide a knowledge acquisition environment
//! that can be used for learning and automated derivation of scientific
//! data" and §4.2: users "browse data following their derivation
//! relationships". The visual environment of ref. \[40\] is out of scope (see
//! DESIGN.md), but its data feed is this exporter: places render as
//! ellipses (base data shaded), transitions as boxes, threshold arcs
//! labelled, optionally annotated with a marking.

use crate::marking::Marking;
use crate::net::PetriNet;

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

/// Render the net as a DOT digraph. If `marking` is given, places show
/// their token counts and marked places are emphasized.
pub fn to_dot(net: &PetriNet, marking: Option<&Marking>) -> String {
    let mut out = String::from("digraph derivation {\n  rankdir=LR;\n");
    for p in net.place_ids() {
        let place = net.place(p).expect("valid id");
        let tokens = marking.map(|m| m.get(p)).unwrap_or(0);
        let label = if marking.is_some() {
            format!("{} ({tokens})", place.name)
        } else {
            place.name.clone()
        };
        let fill = if place.is_base {
            ", style=filled, fillcolor=lightgray"
        } else if tokens > 0 {
            ", style=filled, fillcolor=palegreen"
        } else {
            ""
        };
        out.push_str(&format!(
            "  p{} [label=\"{}\", shape=ellipse{}];\n",
            p.0,
            escape(&label),
            fill
        ));
    }
    for t in net.transition_ids() {
        let tr = net.transition(t).expect("valid id");
        out.push_str(&format!(
            "  t{} [label=\"{}\", shape=box];\n",
            t.0,
            escape(&tr.name)
        ));
        for arc in &tr.inputs {
            if arc.threshold > 1 {
                out.push_str(&format!(
                    "  p{} -> t{} [label=\"≥{}\"];\n",
                    arc.place.0, t.0, arc.threshold
                ));
            } else {
                out.push_str(&format!("  p{} -> t{};\n", arc.place.0, t.0));
            }
        }
        for o in &tr.outputs {
            out.push_str(&format!("  t{} -> p{};\n", t.0, o.0));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p20_net() -> (PetriNet, crate::net::PlaceId, crate::net::PlaceId) {
        let mut net = PetriNet::new();
        let tm = net.add_base_place("rectified_tm");
        let lc = net.add_place("land_cover");
        net.add_transition("P20", &[(tm, 3)], &[lc]).unwrap();
        (net, tm, lc)
    }

    #[test]
    fn renders_structure() {
        let (net, ..) = p20_net();
        let dot = to_dot(&net, None);
        assert!(dot.starts_with("digraph derivation {"));
        assert!(dot.contains(
            "p0 [label=\"rectified_tm\", shape=ellipse, style=filled, fillcolor=lightgray];"
        ));
        assert!(dot.contains("p1 [label=\"land_cover\", shape=ellipse];"));
        assert!(dot.contains("t0 [label=\"P20\", shape=box];"));
        assert!(dot.contains("p0 -> t0 [label=\"≥3\"];"));
        assert!(dot.contains("t0 -> p1;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn marking_annotations() {
        let (net, tm, lc) = p20_net();
        let m = Marking::from_counts(&net, &[(tm, 3), (lc, 1)]);
        let dot = to_dot(&net, Some(&m));
        assert!(dot.contains("rectified_tm (3)"));
        assert!(dot.contains("land_cover (1)"));
        assert!(
            dot.contains("palegreen"),
            "marked derived places highlighted"
        );
    }

    #[test]
    fn names_are_escaped() {
        let mut net = PetriNet::new();
        let a = net.add_base_place("weird\"name");
        let b = net.add_place("out");
        net.add_transition("t", &[(a, 1)], &[b]).unwrap();
        let dot = to_dot(&net, None);
        assert!(dot.contains("weird\\\"name"));
    }
}
