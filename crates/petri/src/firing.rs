//! Firing rules: classic vs. the paper's token-preserving mode.

use crate::error::{PetriError, PetriResult};
use crate::marking::Marking;
use crate::net::{PetriNet, TransitionId};
use serde::{Deserialize, Serialize};

/// Which execution semantics to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FiringMode {
    /// Standard P/T semantics: firing consumes `threshold` tokens per input
    /// arc. Provided for comparison and for modelling consumable resources.
    Classic,
    /// The paper's modification 1: "tokens are not removed from input
    /// places upon the firing of a transition" — data used in a derivation
    /// remains available.
    GaeaPreserving,
}

/// True if `t` may fire under `marking` (threshold check; guards live at
/// the colored level).
pub fn enabled(net: &PetriNet, marking: &Marking, t: TransitionId) -> PetriResult<bool> {
    let tr = net.transition(t)?;
    Ok(tr
        .inputs
        .iter()
        .all(|arc| marking.get(arc.place) >= arc.threshold))
}

/// Fire `t`, returning the successor marking.
pub fn fire(
    net: &PetriNet,
    marking: &Marking,
    t: TransitionId,
    mode: FiringMode,
) -> PetriResult<Marking> {
    let tr = net.transition(t)?;
    if !enabled(net, marking, t)? {
        return Err(PetriError::NotEnabled(tr.name.clone()));
    }
    let mut next = marking.clone();
    if mode == FiringMode::Classic {
        for arc in &tr.inputs {
            next.remove(arc.place, arc.threshold);
        }
    }
    for out in &tr.outputs {
        next.add(*out, 1);
    }
    Ok(next)
}

/// All transitions enabled under `marking`.
pub fn enabled_transitions(net: &PetriNet, marking: &Marking) -> Vec<TransitionId> {
    net.transition_ids()
        .filter(|t| enabled(net, marking, *t).unwrap_or(false))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::PlaceId;

    fn p20() -> (PetriNet, PlaceId, PlaceId, TransitionId) {
        let mut net = PetriNet::new();
        let tm = net.add_base_place("tm");
        let lc = net.add_place("land_cover");
        let t = net.add_transition("P20", &[(tm, 3)], &[lc]).unwrap();
        (net, tm, lc, t)
    }

    #[test]
    fn threshold_gates_enabling() {
        let (net, tm, _, t) = p20();
        let m2 = Marking::from_counts(&net, &[(tm, 2)]);
        assert!(!enabled(&net, &m2, t).unwrap());
        let m3 = Marking::from_counts(&net, &[(tm, 3)]);
        assert!(enabled(&net, &m3, t).unwrap());
        // Modified rule 2: more than the threshold also enables.
        let m7 = Marking::from_counts(&net, &[(tm, 7)]);
        assert!(enabled(&net, &m7, t).unwrap());
    }

    #[test]
    fn gaea_mode_preserves_input_tokens() {
        let (net, tm, lc, t) = p20();
        let m = Marking::from_counts(&net, &[(tm, 3)]);
        let next = fire(&net, &m, t, FiringMode::GaeaPreserving).unwrap();
        assert_eq!(next.get(tm), 3, "inputs preserved");
        assert_eq!(next.get(lc), 1, "output produced");
        // The transition remains enabled: derivations are repeatable.
        assert!(enabled(&net, &next, t).unwrap());
    }

    #[test]
    fn classic_mode_consumes() {
        let (net, tm, lc, t) = p20();
        let m = Marking::from_counts(&net, &[(tm, 3)]);
        let next = fire(&net, &m, t, FiringMode::Classic).unwrap();
        assert_eq!(next.get(tm), 0);
        assert_eq!(next.get(lc), 1);
        assert!(!enabled(&net, &next, t).unwrap());
    }

    #[test]
    fn firing_disabled_transition_errors() {
        let (net, _, _, t) = p20();
        let m = Marking::empty(&net);
        assert!(matches!(
            fire(&net, &m, t, FiringMode::GaeaPreserving),
            Err(PetriError::NotEnabled(_))
        ));
    }

    #[test]
    fn enabled_listing() {
        let (net, tm, _, t) = p20();
        assert!(enabled_transitions(&net, &Marking::empty(&net)).is_empty());
        let m = Marking::from_counts(&net, &[(tm, 5)]);
        assert_eq!(enabled_transitions(&net, &m), vec![t]);
    }
}
