//! Offline, workspace-local substitute for the `rand` crate.
//!
//! Provides the API surface this workspace uses — `SmallRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer and
//! float ranges — backed by a deterministic xorshift64* generator. Not
//! cryptographic; intended for synthetic workload generation and k-means
//! seeding, where reproducibility per seed is what matters.

use std::ops::{Range, RangeInclusive};

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A distribution-like range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from `rng` within this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types with a standard uniform distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        uniform_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        uniform_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform value in the given range (`low..high` or `low..=high`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A value from the type's standard distribution (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_from(self)
    }

    /// A bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        uniform_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits onto `[0, 1)`.
fn uniform_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_range_impl {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let v = rng.next_u64() % span;
                ((self.start as $wide).wrapping_add(v as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty inclusive range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = rng.next_u64() % (span + 1);
                ((start as $wide).wrapping_add(v as $wide)) as $t
            }
        }
    )*};
}

int_range_impl!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty float range");
        self.start + uniform_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty float range");
        self.start + (uniform_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 scrambles the seed so nearby seeds diverge.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng {
                state: if z == 0 { 0x1234_5678_9ABC_DEF1 } else { z },
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1i64..=5);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }
}
