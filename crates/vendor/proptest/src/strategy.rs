//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// How many times a filter retries before giving up.
const FILTER_RETRIES: usize = 4096;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discard values failing `pred` (regenerating, bounded retries).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Generate an intermediate value, then generate from a strategy
    /// built out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `recurse` receives the strategy so far and
    /// widens it; applied `depth` times, each level able to fall back to
    /// the base case.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let wider = recurse(current).boxed();
            current = Union::new(vec![base.clone(), wider]).boxed();
        }
        current
    }

    /// Type-erase into a clonable, shareable strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform (or weighted) choice among boxed strategies; what
/// `prop_oneof!` builds.
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Uniform choice.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice.
    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total = options.iter().map(|(w, _)| *w).sum::<u32>().max(1);
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = (rng.next_u64() % u64::from(self.total)) as u32;
        for (w, s) in &self.options {
            if roll < *w {
                return s.generate(rng);
            }
            roll -= w;
        }
        self.options.last().expect("non-empty").1.generate(rng)
    }
}

// ---------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

// ---------------------------------------------------------------------
// Regex-pattern string strategy
// ---------------------------------------------------------------------

/// One atom of the supported pattern subset.
#[derive(Debug, Clone)]
enum PatternAtom {
    /// Literal character.
    Lit(char),
    /// Character class alternatives (expanded ranges).
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct PatternPiece {
    atom: PatternAtom,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<PatternPiece> {
    let chars: Vec<char> = pat.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut alts = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            alts.push(c);
                        }
                        i += 3;
                    } else {
                        alts.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated [class] in pattern {pat:?}");
                i += 1; // ']'
                assert!(!alts.is_empty(), "empty [class] in pattern {pat:?}");
                PatternAtom::Class(alts)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "trailing backslash in pattern {pat:?}");
                let c = chars[i];
                i += 1;
                match c {
                    'd' => PatternAtom::Class(('0'..='9').collect()),
                    'w' => {
                        let mut alts: Vec<char> = ('a'..='z').collect();
                        alts.extend('A'..='Z');
                        alts.extend('0'..='9');
                        alts.push('_');
                        PatternAtom::Class(alts)
                    }
                    other => PatternAtom::Lit(other),
                }
            }
            c => {
                i += 1;
                PatternAtom::Lit(c)
            }
        };
        // Quantifier?
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|c| *c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unterminated {{}} in pattern {pat:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("pattern {m,n} lower bound"),
                            hi.trim().parse().expect("pattern {m,n} upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("pattern {n} count");
                            (n, n)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(PatternPiece { atom, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let n = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..n {
                match &piece.atom {
                    PatternAtom::Lit(c) => out.push(*c),
                    PatternAtom::Class(alts) => out.push(alts[rng.below(alts.len())]),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_strings_match_shape() {
        let mut rng = TestRng::for_test("pattern");
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase(), "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn union_and_combinators_generate() {
        let mut rng = TestRng::for_test("union");
        let s = crate::prop_oneof![(0i32..10).prop_map(|v| v * 2), Just(1i32),]
            .prop_filter("nonnegative", |v| *v >= 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || (v % 2 == 0 && (0..20).contains(&v)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i32),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i32..100)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::for_test("recursive");
        for _ in 0..100 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 5);
        }
    }
}
