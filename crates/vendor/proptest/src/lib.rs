//! Offline, workspace-local substitute for the `proptest` crate.
//!
//! Implements the generation side of the proptest API this workspace's
//! property tests use — strategies over ranges, regex-like string
//! patterns, tuples, collections, `prop_oneof!`, `prop_recursive`, map /
//! filter / flat-map combinators, and the `proptest!` test macro. There is
//! no shrinking: a failing case panics with the generated inputs left to
//! the assertion message. Deterministic per test name, so failures
//! reproduce across runs.

pub mod strategy;

pub mod test_runner {
    //! Test configuration and the deterministic case RNG.

    pub use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Per-test configuration (only `cases` is interpreted).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    /// The `PROPTEST_CASES` environment override, like real proptest's
    /// `--cfg`-free knob. Unlike upstream it also overrides explicit
    /// `with_cases(..)` configs: CI raises the whole suite to a known
    /// count (e.g. 256) with one variable, and because generation is
    /// seeded from the test name the raised run is still deterministic.
    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    impl ProptestConfig {
        /// A config running `cases` cases (or `PROPTEST_CASES`, when set).
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases: env_cases().unwrap_or(cases),
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig::with_cases(64)
        }
    }

    /// The RNG driving generation; seeded from the test name so runs are
    /// reproducible.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// Deterministic RNG for a named test.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: SmallRng::seed_from_u64(h),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.inner.next_u64()
        }

        /// Uniform integer in `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let n = self.size.min + rng.below(span.max(1));
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`prop::option::of`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` about half the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(2) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Namespace mirror of proptest's `prop::` prelude alias.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// See [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values over a wide dynamic range (no NaN/inf: property
            // bodies compare values, and proptest's default strategy for
            // floats is likewise finite-leaning).
            let mantissa = rng.unit_f64() * 2.0 - 1.0;
            let exp = (rng.below(61) as i32) - 30;
            mantissa * (2.0f64).powi(exp)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text lexer-safe.
            (b' ' + rng.below(95) as u8) as char
        }
    }
}

pub mod prelude {
    //! Everything a property test file imports.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Reject the current case and move on to the next one. Only meaningful
/// inside a `proptest!` body (it continues the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Assert inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Choose uniformly among the given strategies (weights are accepted and
/// treated as relative integer weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The property-test macro: each `fn name(pat in strategy, ...)` runs
/// `config.cases` times over freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases {
                let ($($pat,)*) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut rng),)*
                );
                $body
            }
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}
