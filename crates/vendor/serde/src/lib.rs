//! Offline, workspace-local substitute for the `serde` crate.
//!
//! The build must succeed with no network access and no registry cache, so
//! the workspace vendors a minimal serde replacement. Instead of serde's
//! visitor architecture, types convert to and from a self-describing
//! [`Content`] tree; `serde_json` (also vendored) renders that tree as JSON.
//! The `#[derive(Serialize, Deserialize)]` macros (from the vendored
//! `serde_derive`) generate the conversions, honouring `#[serde(skip)]`
//! and `#[serde(default)]` with serde's externally-tagged enum encoding,
//! so catalogs written by earlier revisions keep loading.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized form; the data model all impls target.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Unit / nothing / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples, multi-field tuple structs).
    Seq(Vec<Content>),
    /// Map (structs, maps, tagged enum variants). Insertion-ordered.
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Borrow as a map if this is one.
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence if this is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a string if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) => "integer",
            Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Look up a string key in a content map (derive-generated code calls this).
pub fn content_get<'a>(map: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
    map.iter()
        .find(|(k, _)| matches!(k, Content::Str(s) if s == key))
        .map(|(_, v)| v)
}

/// Deserialization failure.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A new error with the given message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Content`] data model.
pub trait Serialize {
    /// Serialize `self` into content form.
    fn to_content(&self) -> Content;
}

/// Conversion out of the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuild a value from content form.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                #[allow(unused_comparisons)]
                if *self < 0 {
                    Content::I64(*self as i64)
                } else {
                    Content::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let fail = || DeError::new(format!(
                    "expected {}, got {}", stringify!($t), c.kind()
                ));
                match c {
                    Content::I64(v) => <$t>::try_from(*v).map_err(|_| fail()),
                    Content::U64(v) => <$t>::try_from(*v).map_err(|_| fail()),
                    // JSON object keys arrive as strings; integer keys
                    // (newtype-id map keys) parse back out of them.
                    Content::Str(s) => s.parse::<$t>().map_err(|_| fail()),
                    _ => Err(fail()),
                }
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    _ => Err(DeError::new(format!(
                        "expected {}, got {}", stringify!($t), c.kind()
                    ))),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::new(format!("expected bool, got {}", c.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::new(format!("expected char, got {}", c.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new(format!("expected string, got {}", c.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(()),
            _ => Err(DeError::new(format!("expected null, got {}", c.kind()))),
        }
    }
}

// ---------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (*self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Rc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::new(format!("expected sequence, got {}", c.kind())))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v = Vec::<T>::from_content(c)?;
        let n = v.len();
        <[T; N]>::try_from(v).map_err(|_| DeError::new(format!("expected {N} elements, got {n}")))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::new(format!("expected map, got {}", c.kind())))?
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::new(format!("expected map, got {}", c.kind())))?
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::new(format!("expected sequence, got {}", c.kind())))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Eq + Hash, S: std::hash::BuildHasher + Default> Deserialize
    for HashSet<T, S>
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::new(format!("expected sequence, got {}", c.kind())))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let seq = c.as_seq().ok_or_else(|| {
                    DeError::new(format!("expected tuple sequence, got {}", c.kind()))
                })?;
                let mut it = seq.iter();
                let mut next = || {
                    it.next()
                        .ok_or_else(|| DeError::new("tuple sequence too short"))
                };
                Ok(($($t::from_content(next()?)?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Serialize for std::time::Duration {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (Content::Str("secs".into()), Content::U64(self.as_secs())),
            (
                Content::Str("nanos".into()),
                Content::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let map = c
            .as_map()
            .ok_or_else(|| DeError::new("expected duration map"))?;
        let secs = content_get(map, "secs")
            .map(u64::from_content)
            .transpose()?
            .unwrap_or(0);
        let nanos = content_get(map, "nanos")
            .map(u32::from_content)
            .transpose()?
            .unwrap_or(0);
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_and_parse_from_keys() {
        assert_eq!(i32::from_content(&(-5i32).to_content()).unwrap(), -5);
        assert_eq!(u64::from_content(&Content::Str("17".into())).unwrap(), 17);
        assert!(u8::from_content(&Content::I64(300)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let mut m = BTreeMap::new();
        m.insert(3u32, vec![1i32, -2]);
        let back: BTreeMap<u32, Vec<i32>> = Deserialize::from_content(&m.to_content()).unwrap();
        assert_eq!(back, m);
        let opt: Option<String> = None;
        assert_eq!(opt.to_content(), Content::Null);
    }
}
