//! Offline, workspace-local substitute for `serde_json`.
//!
//! Renders the vendored serde [`Content`] model as JSON text and parses it
//! back. Compatible with the subset of JSON the workspace writes: maps with
//! string or integer keys (integer keys are emitted as JSON strings, the
//! way real serde_json does), finite floats in shortest round-trip form,
//! and externally-tagged enums.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Serialization / parse failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serialize a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out)?;
    Ok(out)
}

/// Serialize a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_content(&content)?)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new("JSON cannot represent non-finite floats"));
            }
            // `{:?}` is Rust's shortest round-trip float form and always
            // keeps a marker (`.0` / exponent) so the value re-parses as a
            // float rather than an integer.
            out.push_str(&format!("{v:?}"));
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out)?;
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match k {
                    Content::Str(s) => write_escaped(s, out),
                    // Integer map keys become JSON strings, as in the
                    // real serde_json.
                    Content::I64(n) => write_escaped(&n.to_string(), out),
                    Content::U64(n) => write_escaped(&n.to_string(), out),
                    Content::Bool(b) => write_escaped(if *b { "true" } else { "false" }, out),
                    other => {
                        return Err(Error::new(format!(
                            "JSON object keys must be strings, got {}",
                            other.kind()
                        )))
                    }
                }
                out.push(':');
                write_content(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error::new(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error::new(e.to_string()))?;
                            // Surrogate pairs: peek for a low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                let rest = self.bytes.get(self.pos + 5..self.pos + 11);
                                match rest {
                                    Some([b'\\', b'u', h @ ..]) => {
                                        let low = u32::from_str_radix(
                                            std::str::from_utf8(h)
                                                .map_err(|e| Error::new(e.to_string()))?,
                                            16,
                                        )
                                        .map_err(|e| Error::new(e.to_string()))?;
                                        self.pos += 6;
                                        let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                        char::from_u32(c)
                                            .ok_or_else(|| Error::new("invalid surrogate pair"))?
                                    }
                                    _ => return Err(Error::new("lone surrogate in string")),
                                }
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            s.push(ch);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        if float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|e| Error::new(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|e| Error::new(e.to_string()))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|e| Error::new(e.to_string()))
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']', got {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}', got {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_round_trip() {
        let s = to_string(&1.5f64).unwrap();
        assert_eq!(s, "1.5");
        assert_eq!(from_str::<f64>(&s).unwrap(), 1.5);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn whole_floats_keep_their_marker() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
    }

    #[test]
    fn integer_keyed_maps_round_trip() {
        let mut m = BTreeMap::new();
        m.insert(7u64, "seven".to_string());
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"7\":\"seven\"}");
        let back: BTreeMap<u64, String> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v: Vec<Option<Vec<i64>>> = vec![None, Some(vec![1, -2, 3])];
        let json = to_string(&v).unwrap();
        let back: Vec<Option<Vec<i64>>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
