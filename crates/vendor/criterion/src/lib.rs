//! Offline, workspace-local substitute for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness with criterion's API shape:
//! groups, `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! `criterion_group!` / `criterion_main!`. Each benchmark warms up, then
//! runs timed samples inside the configured measurement window and prints
//! `group/id  median  (mean, samples)` to stdout. No statistics beyond
//! that — the workspace uses benchmarks for relative shape, not
//! publication-grade confidence intervals.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub mod measurement {
    //! Measurement kinds (wall clock only).

    /// Marker trait for measurement sources.
    pub trait Measurement {}

    /// Wall-clock time.
    pub struct WallTime;

    impl Measurement for WallTime {}
}

use measurement::{Measurement, WallTime};

/// Benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendered after `/`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from just a parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { name: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// How `iter_batched` amortizes setup; only a hint here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Exactly one iteration per batch.
    PerIteration,
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    measurement_time: Duration,
    sample_size: usize,
    /// Collected per-iteration durations, in nanoseconds.
    samples: Vec<u128>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_nanos());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Time `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut first = setup();
        black_box(routine(&mut first));
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(start.elapsed().as_nanos());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M: Measurement> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _marker: std::marker::PhantomData<M>,
}

impl<'a, M: Measurement> BenchmarkGroup<'a, M> {
    /// Target number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget (accepted; warm-up here is a single untimed call).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Throughput annotation (accepted and ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        self.criterion.report(&self.name, &id.name, &b.samples);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        self.criterion.report(&self.name, &id.name, &b.samples);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Throughput annotations (accepted and ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 20,
            default_measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_, WallTime> {
        let name = name.into();
        println!("benchmarking group {name}");
        BenchmarkGroup {
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            criterion: self,
            name,
            _marker: std::marker::PhantomData,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            measurement_time: self.default_measurement_time,
            sample_size: self.default_sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        let name = id.name.clone();
        self.report("", &name, &b.samples);
        self
    }

    fn report(&mut self, group: &str, id: &str, samples: &[u128]) {
        let label = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        if samples.is_empty() {
            println!("  {label:<56} (no samples)");
            return;
        }
        let mut sorted: Vec<u128> = samples.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        let mean = sorted.iter().sum::<u128>() as f64 / sorted.len() as f64;
        println!(
            "  {label:<56} median {:>12}   mean {:>12}   ({} samples)",
            format_ns(median),
            format_ns(mean),
            sorted.len()
        );
        // Machine-readable trail for CI perf tracking: when
        // GAEA_BENCH_JSON names a file, append one JSON object per
        // benchmark (JSONL). Group/id strings come from source literals,
        // so no escaping is needed.
        if let Ok(path) = std::env::var("GAEA_BENCH_JSON") {
            if !path.is_empty() {
                use std::io::Write as _;
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let _ = writeln!(
                        f,
                        "{{\"group\":\"{group}\",\"id\":\"{id}\",\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\"samples\":{}}}",
                        sorted.len()
                    );
                }
            }
        }
    }
}

/// Declare a group-runner function invoking each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
