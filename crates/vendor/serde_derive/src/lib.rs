//! Offline, workspace-local substitute for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` content model — no `syn`/`quote`, since the build must
//! work without the registry. The macro parses the item's token stream
//! directly and emits impl source as text. Supported shape space (exactly
//! what this workspace uses): non-generic named structs, tuple structs,
//! unit structs, and enums with unit / tuple / struct variants; field
//! attributes `#[serde(skip)]` and `#[serde(default)]`; serde's
//! externally-tagged enum encoding.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (content-model flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

/// Derive `serde::Deserialize` (content-model flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok((name, data)) => {
            let code = match mode {
                Mode::Ser => gen_serialize(&name, &data),
                Mode::De => gen_deserialize(&name, &data),
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Consume leading attributes; return whether `#[serde(skip)]` /
    /// `#[serde(default)]` were among them.
    fn take_attrs(&mut self) -> (bool, bool) {
        let (mut skip, mut default) = (false, false);
        while self.at_punct('#') {
            self.next();
            // An inner attribute marker (`#!`) never occurs in item bodies
            // we derive on; the bracket group follows directly.
            if let Some(TokenTree::Group(g)) = self.next() {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(i)) = inner.first() {
                    if i.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            for t in args.stream() {
                                if let TokenTree::Ident(w) = t {
                                    match w.to_string().as_str() {
                                        "skip" => skip = true,
                                        "default" => default = true,
                                        _ => {}
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        (skip, default)
    }

    /// Consume `pub`, `pub(crate)`, `pub(super)`, … if present.
    fn take_visibility(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(
                self.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                self.next();
            }
        }
    }

    /// Consume tokens of a type (or expression) until a comma at angle
    /// depth zero; the comma itself is consumed too.
    fn skip_to_field_end(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Result<(String, Data), String> {
    let mut c = Cursor::new(input);
    c.take_attrs();
    c.take_visibility();
    let kind = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("serde derive: expected struct/enum, got {other:?}")),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("serde derive: expected type name, got {other:?}")),
    };
    if c.at_punct('<') {
        return Err(format!(
            "serde derive (vendored): generic type {name} is not supported"
        ));
    }
    match kind.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Data::NamedStruct(parse_named_fields(g.stream()))))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Data::TupleStruct(count_tuple_fields(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Data::UnitStruct)),
            other => Err(format!("serde derive: unexpected struct body {other:?}")),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Data::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("serde derive: unexpected enum body {other:?}")),
        },
        other => Err(format!("serde derive: cannot derive for `{other}`")),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let (skip, default) = c.take_attrs();
        c.take_visibility();
        let Some(TokenTree::Ident(name)) = c.next() else {
            break;
        };
        // Skip the `:` then the type.
        if c.at_punct(':') {
            c.next();
        }
        c.skip_to_field_end();
        fields.push(Field {
            name: name.to_string(),
            skip,
            default,
        });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    let mut n = 0usize;
    let mut saw_tokens = false;
    let mut depth = 0i32;
    while let Some(t) = c.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                n += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        n += 1;
    }
    n
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.take_attrs();
        let Some(TokenTree::Ident(name)) = c.next() else {
            break;
        };
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        if c.at_punct('=') {
            return Err(format!(
                "serde derive (vendored): explicit discriminant on variant {name} unsupported"
            ));
        }
        if c.at_punct(',') {
            c.next();
        }
        variants.push(Variant {
            name: name.to_string(),
            shape,
        });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(name: &str, data: &Data) -> String {
    let body = match data {
        Data::NamedStruct(fields) => {
            let mut s =
                String::from("let mut m: Vec<(serde::Content, serde::Content)> = Vec::new();\n");
            for f in fields {
                if f.skip {
                    continue;
                }
                s.push_str(&format!(
                    "m.push((serde::Content::Str(String::from({n:?})), \
                     serde::Serialize::to_content(&self.{n})));\n",
                    n = f.name
                ));
            }
            s.push_str("serde::Content::Map(m)");
            s
        }
        Data::TupleStruct(1) => "serde::Serialize::to_content(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Data::UnitStruct => "serde::Content::Null".to_string(),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => serde::Content::Str(String::from({v:?})),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(f0) => serde::Content::Map(vec![\
                         (serde::Content::Str(String::from({v:?})), \
                         serde::Serialize::to_content(f0))]),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Serialize::to_content(f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({b}) => serde::Content::Map(vec![\
                             (serde::Content::Str(String::from({v:?})), \
                             serde::Content::Seq(vec![{items}]))]),\n",
                            v = v.name,
                            b = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from(
                            "let mut fm: Vec<(serde::Content, serde::Content)> = Vec::new();\n",
                        );
                        for f in fields {
                            if f.skip {
                                continue;
                            }
                            inner.push_str(&format!(
                                "fm.push((serde::Content::Str(String::from({n:?})), \
                                 serde::Serialize::to_content({n})));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {b} }} => {{ {inner} \
                             serde::Content::Map(vec![\
                             (serde::Content::Str(String::from({v:?})), \
                             serde::Content::Map(fm))]) }},\n",
                            v = v.name,
                            b = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
         fn to_content(&self) -> serde::Content {{\n{body}\n}}\n}}\n"
    )
}

/// One named field's deserialization expression, reading from map binding `m`.
fn de_field_expr(owner: &str, f: &Field) -> String {
    if f.skip {
        return "Default::default()".to_string();
    }
    if f.default {
        format!(
            "match serde::content_get({m}, {n:?}) {{\n\
             Some(v) => serde::Deserialize::from_content(v)?,\n\
             None => Default::default(),\n}}",
            m = "m",
            n = f.name
        )
    } else {
        // A missing field falls back to deserializing `Null`, which
        // succeeds for `Option` fields (serde's missing-means-None rule)
        // and produces a missing-field error for everything else.
        format!(
            "{{ let r = match serde::content_get(m, {n:?}) {{\n\
             Some(v) => serde::Deserialize::from_content(v),\n\
             None => serde::Deserialize::from_content(&serde::Content::Null)\n\
             .map_err(|_| serde::DeError::new(concat!({owner:?}, \": missing field `\", {n:?}, \"`\"))),\n\
             }}; r? }}",
            n = f.name
        )
    }
}

fn gen_deserialize(name: &str, data: &Data) -> String {
    let body = match data {
        Data::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{}: {}", f.name, de_field_expr(name, f)))
                .collect();
            format!(
                "let m = c.as_map().ok_or_else(|| serde::DeError::new(\
                 concat!(\"expected map for \", {name:?})))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(",\n")
            )
        }
        Data::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_content(c)?))")
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_content(&s[{i}])?"))
                .collect();
            format!(
                "let s = c.as_seq().ok_or_else(|| serde::DeError::new(\
                 concat!(\"expected sequence for \", {name:?})))?;\n\
                 if s.len() != {n} {{ return Err(serde::DeError::new(\
                 concat!(\"wrong arity for \", {name:?}))); }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Data::UnitStruct => format!("let _ = c; Ok({name})"),
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("{n:?} => Ok({name}::{n}),\n", n = v.name))
                    }
                    VariantShape::Tuple(1) => data_arms.push_str(&format!(
                        "{n:?} => Ok({name}::{n}(serde::Deserialize::from_content(v)?)),\n",
                        n = v.name
                    )),
                    VariantShape::Tuple(k) => {
                        let items: Vec<String> = (0..*k)
                            .map(|i| format!("serde::Deserialize::from_content(&s[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{n:?} => {{\n\
                             let s = v.as_seq().ok_or_else(|| serde::DeError::new(\
                             concat!(\"expected sequence for variant \", {n:?})))?;\n\
                             if s.len() != {k} {{ return Err(serde::DeError::new(\
                             concat!(\"wrong arity for variant \", {n:?}))); }}\n\
                             Ok({name}::{n}({items}))\n}},\n",
                            n = v.name,
                            items = items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{}: {}", f.name, de_field_expr(name, f)))
                            .collect();
                        data_arms.push_str(&format!(
                            "{n:?} => {{\n\
                             let m = v.as_map().ok_or_else(|| serde::DeError::new(\
                             concat!(\"expected map for variant \", {n:?})))?;\n\
                             Ok({name}::{n} {{ {inits} }})\n}},\n",
                            n = v.name,
                            inits = inits.join(",\n")
                        ));
                    }
                }
            }
            format!(
                "match c {{\n\
                 serde::Content::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(serde::DeError::new(format!(\
                 \"unknown variant {{other:?}} of {name}\"))),\n}},\n\
                 serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                 let (k, v) = &entries[0];\n\
                 let tag = k.as_str().ok_or_else(|| serde::DeError::new(\
                 concat!(\"expected string tag for \", {name:?})))?;\n\
                 match tag {{\n{data_arms}\
                 other => Err(serde::DeError::new(format!(\
                 \"unknown variant {{other:?}} of {name}\"))),\n}}\n}},\n\
                 other => Err(serde::DeError::new(format!(\
                 \"expected {name} variant, got {{}}\", other.kind()))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
         fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
