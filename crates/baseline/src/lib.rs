//! # gaea-baseline — the IDRISI/GRASS-style file-based comparator (§4.1)
//!
//! The paper's critique of 1990s GIS practice, reproduced as a working
//! system so the costs can be measured:
//!
//! 1. "A file name is the only identifier for stored data" — rasters live
//!    in a directory; identity is the file name the user chose.
//! 2. "Data sharing is almost impossible because there is not enough meta
//!    information to describe how the data are generated" — the only
//!    derivation record is an append-only transcript of commands.
//! 3. "Scientists have to manage the analysis process on their own [...]
//!    this often takes the form of awkward transcript files" — provenance
//!    queries are linear scans of the transcript.
//! 4. "It is hard to create abstractions of the analysis process" —
//!    repeating an analysis means replaying transcript lines by hand
//!    ([`FileGis::replay`]).

pub mod filegis;

pub use filegis::{FileGis, FileGisError, TranscriptEntry};
