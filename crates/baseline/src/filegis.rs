//! The file-based GIS emulation.
//!
//! Commands mirror the IDRISI working loop: read rasters from input files,
//! run one operation, write the result to an output file, append a line to
//! `transcript.log`. All weaknesses are faithful: names are the only
//! identity, overwrites clobber silently (§4.1: "inadvertent file overwrite
//! by other users"), and provenance is a text scan.

use gaea_adt::{AdtError, Image, PixType, PixelBuffer};
use gaea_raster::{img_diff, img_ratio, kmeans_classify, min_distance_classify, ndvi};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Errors from the file-based workflow.
#[derive(Debug)]
pub enum FileGisError {
    /// I/O failure.
    Io(std::io::Error),
    /// Raster decode failure.
    Codec(String),
    /// Unknown command in a transcript.
    UnknownCommand(String),
    /// Referenced file does not exist.
    NoSuchFile(String),
    /// Underlying algorithm failure.
    Adt(AdtError),
}

impl fmt::Display for FileGisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FileGisError::Io(e) => write!(f, "io: {e}"),
            FileGisError::Codec(m) => write!(f, "codec: {m}"),
            FileGisError::UnknownCommand(c) => write!(f, "unknown command: {c}"),
            FileGisError::NoSuchFile(p) => write!(f, "no such file: {p}"),
            FileGisError::Adt(e) => write!(f, "algorithm: {e}"),
        }
    }
}

impl std::error::Error for FileGisError {}

impl From<std::io::Error> for FileGisError {
    fn from(e: std::io::Error) -> FileGisError {
        FileGisError::Io(e)
    }
}

impl From<AdtError> for FileGisError {
    fn from(e: AdtError) -> FileGisError {
        FileGisError::Adt(e)
    }
}

/// A parsed transcript line: `output = command(input, ...)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranscriptEntry {
    /// Output file stem.
    pub output: String,
    /// Command name.
    pub command: String,
    /// Input file stems / literal arguments.
    pub inputs: Vec<String>,
}

impl TranscriptEntry {
    fn render(&self) -> String {
        format!(
            "{} = {}({})",
            self.output,
            self.command,
            self.inputs.join(", ")
        )
    }

    fn parse(line: &str) -> Option<TranscriptEntry> {
        let (output, rest) = line.split_once('=')?;
        let rest = rest.trim();
        let open = rest.find('(')?;
        let close = rest.rfind(')')?;
        let command = rest[..open].trim().to_string();
        let args = rest[open + 1..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        Some(TranscriptEntry {
            output: output.trim().to_string(),
            command,
            inputs: args,
        })
    }
}

/// A directory-backed, transcript-logged GIS session.
pub struct FileGis {
    root: PathBuf,
}

impl FileGis {
    /// Open (creating) a working directory.
    pub fn open(root: &Path) -> Result<FileGis, FileGisError> {
        fs::create_dir_all(root)?;
        Ok(FileGis { root: root.into() })
    }

    /// The working directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn raster_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.img"))
    }

    /// Store a raster under a name. Overwrites silently — the §4.1 hazard.
    pub fn put_raster(&self, name: &str, img: &Image) -> Result<(), FileGisError> {
        let header = format!("{} {} {}\n", img.nrow(), img.ncol(), img.pixtype().name());
        let mut bytes = header.into_bytes();
        bytes.extend_from_slice(&img.buffer().to_bytes());
        fs::write(self.raster_path(name), bytes)?;
        Ok(())
    }

    /// Load a raster by name — the *only* retrieval the baseline offers.
    pub fn get_raster(&self, name: &str) -> Result<Image, FileGisError> {
        let path = self.raster_path(name);
        let bytes =
            fs::read(&path).map_err(|_| FileGisError::NoSuchFile(path.display().to_string()))?;
        let newline = bytes
            .iter()
            .position(|b| *b == b'\n')
            .ok_or_else(|| FileGisError::Codec("missing raster header".into()))?;
        let header = std::str::from_utf8(&bytes[..newline])
            .map_err(|_| FileGisError::Codec("bad raster header".into()))?;
        let mut parts = header.split_whitespace();
        let nrow: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| FileGisError::Codec("bad nrow".into()))?;
        let ncol: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| FileGisError::Codec("bad ncol".into()))?;
        let pt = PixType::parse(
            parts
                .next()
                .ok_or_else(|| FileGisError::Codec("missing pixtype".into()))?,
        )
        .map_err(|e| FileGisError::Codec(e.to_string()))?;
        let buf = PixelBuffer::from_bytes(pt, &bytes[newline + 1..])
            .map_err(|e| FileGisError::Codec(e.to_string()))?;
        Image::new(nrow, ncol, buf).map_err(|e| FileGisError::Codec(e.to_string()))
    }

    /// List stored raster names.
    pub fn list(&self) -> Result<Vec<String>, FileGisError> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().to_string();
            if let Some(stem) = name.strip_suffix(".img") {
                names.push(stem.to_string());
            }
        }
        names.sort();
        Ok(names)
    }

    fn log(&self, entry: &TranscriptEntry) -> Result<(), FileGisError> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.root.join("transcript.log"))?;
        writeln!(f, "{}", entry.render())?;
        Ok(())
    }

    /// The transcript, oldest first.
    pub fn transcript(&self) -> Result<Vec<TranscriptEntry>, FileGisError> {
        let path = self.root.join("transcript.log");
        if !path.exists() {
            return Ok(vec![]);
        }
        let text = fs::read_to_string(path)?;
        Ok(text.lines().filter_map(TranscriptEntry::parse).collect())
    }

    /// Run one command: read inputs, compute, write `output`, log.
    ///
    /// Commands: `ndvi(nir, red)`, `diff(a, b)`, `ratio(a, b)`,
    /// `classify(b1, b2, b3, k)`, `copy(a)`.
    pub fn run(&self, command: &str, inputs: &[&str], output: &str) -> Result<(), FileGisError> {
        let result = match command {
            "ndvi" => {
                let nir = self.get_raster(inputs[0])?;
                let red = self.get_raster(inputs[1])?;
                ndvi(&nir, &red)?
            }
            "diff" => {
                let a = self.get_raster(inputs[0])?;
                let b = self.get_raster(inputs[1])?;
                img_diff(&a, &b)?
            }
            "ratio" => {
                let a = self.get_raster(inputs[0])?;
                let b = self.get_raster(inputs[1])?;
                img_ratio(&a, &b)?
            }
            "classify" => {
                let k: usize = inputs
                    .last()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| FileGisError::Codec("classify needs trailing k".into()))?;
                let bands: Result<Vec<Image>, FileGisError> = inputs[..inputs.len() - 1]
                    .iter()
                    .map(|n| self.get_raster(n))
                    .collect();
                let bands = bands?;
                let refs: Vec<&Image> = bands.iter().collect();
                let stack = gaea_raster::composite(&refs)?;
                kmeans_classify(&stack, k, 100, 0x6AEA)?.labels
            }
            "copy" => self.get_raster(inputs[0])?,
            // Supervised classification, file-GIS style: the signature
            // file is just another raster (k rows x bands cols). How it
            // was digitized — the scientist's interaction — is invisible
            // to the transcript; contrast with Gaea's interactive tasks,
            // which record the answers (§4.3 extension).
            "superclassify" => {
                let sig_img = self.get_raster(inputs.last().ok_or_else(|| {
                    FileGisError::Codec("superclassify needs a signature file".into())
                })?)?;
                let bands: Result<Vec<Image>, FileGisError> = inputs[..inputs.len() - 1]
                    .iter()
                    .map(|n| self.get_raster(n))
                    .collect();
                let bands = bands?;
                let refs: Vec<&Image> = bands.iter().collect();
                let stack = gaea_raster::composite(&refs)?;
                let mut sig =
                    gaea_adt::Matrix::zeros(sig_img.nrow() as usize, sig_img.ncol() as usize);
                for r in 0..sig_img.nrow() {
                    for c in 0..sig_img.ncol() {
                        sig.set(r as usize, c as usize, sig_img.get(r, c));
                    }
                }
                min_distance_classify(&stack, &sig)?.labels
            }
            other => return Err(FileGisError::UnknownCommand(other.into())),
        };
        self.put_raster(output, &result)?;
        self.log(&TranscriptEntry {
            output: output.into(),
            command: command.into(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
        })?;
        Ok(())
    }

    /// Provenance lookup, baseline style: scan the transcript backwards for
    /// the last line that wrote `name`. O(transcript length) — the cost the
    /// paper contrasts with Gaea's task records. Returns `None` for files
    /// that were `put` directly (base data) or never logged.
    pub fn provenance(&self, name: &str) -> Result<Option<TranscriptEntry>, FileGisError> {
        Ok(self
            .transcript()?
            .into_iter()
            .rev()
            .find(|e| e.output == name))
    }

    /// Recursive provenance: the full command tree behind `name`, scanning
    /// the transcript once per node.
    pub fn provenance_tree(&self, name: &str) -> Result<Vec<TranscriptEntry>, FileGisError> {
        let mut out = Vec::new();
        let mut stack = vec![name.to_string()];
        let mut seen = std::collections::BTreeSet::new();
        while let Some(n) = stack.pop() {
            if !seen.insert(n.clone()) {
                continue;
            }
            if let Some(entry) = self.provenance(&n)? {
                for input in &entry.inputs {
                    if input.parse::<f64>().is_err() {
                        stack.push(input.clone());
                    }
                }
                out.push(entry);
            }
        }
        Ok(out)
    }

    /// "Reproduce the analysis": replay every transcript line in order —
    /// the baseline has no better granularity (§4.1 item 4: the same steps
    /// must be repeated manually). Returns the number of commands re-run.
    pub fn replay(&self, into: &FileGis) -> Result<usize, FileGisError> {
        // Copy base rasters (those never produced by a command).
        let produced: std::collections::BTreeSet<String> =
            self.transcript()?.into_iter().map(|e| e.output).collect();
        for name in self.list()? {
            if !produced.contains(&name) {
                into.put_raster(&name, &self.get_raster(&name)?)?;
            }
        }
        let mut count = 0;
        for entry in self.transcript()? {
            let inputs: Vec<&str> = entry.inputs.iter().map(String::as_str).collect();
            into.run(&entry.command, &inputs, &entry.output)?;
            count += 1;
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_gis(tag: &str) -> FileGis {
        let dir = std::env::temp_dir().join(format!("gaea-filegis-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        FileGis::open(&dir).unwrap()
    }

    fn img(vals: &[f64]) -> Image {
        Image::from_f64(1, vals.len() as u32, vals.to_vec()).unwrap()
    }

    #[test]
    fn raster_round_trip() {
        let gis = temp_gis("rt");
        let a = Image::filled(3, 4, PixType::Int2, 42.0);
        gis.put_raster("tm_b3", &a).unwrap();
        let back = gis.get_raster("tm_b3").unwrap();
        assert_eq!(back, a);
        assert_eq!(gis.list().unwrap(), vec!["tm_b3"]);
        assert!(matches!(
            gis.get_raster("missing"),
            Err(FileGisError::NoSuchFile(_))
        ));
        fs::remove_dir_all(gis.root()).unwrap();
    }

    #[test]
    fn silent_overwrite_hazard() {
        // §4.1: "inadvertent file overwrite by other users".
        let gis = temp_gis("ow");
        gis.put_raster("result", &img(&[1.0])).unwrap();
        gis.put_raster("result", &img(&[2.0])).unwrap(); // clobbered, no error
        assert_eq!(gis.get_raster("result").unwrap().get(0, 0), 2.0);
        fs::remove_dir_all(gis.root()).unwrap();
    }

    #[test]
    fn commands_log_transcript() {
        let gis = temp_gis("cmd");
        gis.put_raster("nir88", &img(&[100.0, 60.0])).unwrap();
        gis.put_raster("red88", &img(&[20.0, 50.0])).unwrap();
        gis.run("ndvi", &["nir88", "red88"], "ndvi88").unwrap();
        let v = gis.get_raster("ndvi88").unwrap();
        assert!((v.get(0, 0) - 80.0 / 120.0).abs() < 1e-12);
        let t = gis.transcript().unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].output, "ndvi88");
        assert_eq!(t[0].command, "ndvi");
        assert_eq!(t[0].inputs, vec!["nir88", "red88"]);
        fs::remove_dir_all(gis.root()).unwrap();
    }

    #[test]
    fn provenance_is_a_transcript_scan() {
        let gis = temp_gis("prov");
        gis.put_raster("nir88", &img(&[100.0])).unwrap();
        gis.put_raster("red88", &img(&[20.0])).unwrap();
        gis.put_raster("nir89", &img(&[90.0])).unwrap();
        gis.put_raster("red89", &img(&[30.0])).unwrap();
        gis.run("ndvi", &["nir88", "red88"], "ndvi88").unwrap();
        gis.run("ndvi", &["nir89", "red89"], "ndvi89").unwrap();
        gis.run("diff", &["ndvi89", "ndvi88"], "change").unwrap();
        let p = gis.provenance("change").unwrap().unwrap();
        assert_eq!(p.command, "diff");
        // Base data has no provenance line.
        assert!(gis.provenance("nir88").unwrap().is_none());
        // The recursive tree finds all three commands.
        let tree = gis.provenance_tree("change").unwrap();
        assert_eq!(tree.len(), 3);
        fs::remove_dir_all(gis.root()).unwrap();
    }

    #[test]
    fn the_shared_data_ambiguity() {
        // The paper's §1 scenario as the baseline experiences it: two
        // scientists produce "change" maps with different methods; from the
        // files alone the products are indistinguishable in kind.
        let gis = temp_gis("amb");
        gis.put_raster("ndvi88", &img(&[0.2, 0.4])).unwrap();
        gis.put_raster("ndvi89", &img(&[0.4, 0.2])).unwrap();
        gis.run("diff", &["ndvi89", "ndvi88"], "change_a").unwrap();
        gis.run("ratio", &["ndvi89", "ndvi88"], "change_b").unwrap();
        // Both exist; nothing in the *data model* distinguishes their
        // semantics — only the transcript text does.
        let names = gis.list().unwrap();
        assert!(names.contains(&"change_a".to_string()));
        assert!(names.contains(&"change_b".to_string()));
        let pa = gis.provenance("change_a").unwrap().unwrap();
        let pb = gis.provenance("change_b").unwrap().unwrap();
        assert_ne!(pa.command, pb.command);
        fs::remove_dir_all(gis.root()).unwrap();
    }

    #[test]
    fn replay_reproduces_outputs() {
        let src = temp_gis("replay-src");
        src.put_raster("b1", &img(&[1.0, 5.0, 9.0])).unwrap();
        src.put_raster("b2", &img(&[2.0, 6.0, 8.0])).unwrap();
        src.run("diff", &["b1", "b2"], "d").unwrap();
        src.run("ratio", &["b1", "b2"], "r").unwrap();
        let dst = temp_gis("replay-dst");
        let n = src.replay(&dst).unwrap();
        assert_eq!(n, 2);
        assert_eq!(dst.get_raster("d").unwrap(), src.get_raster("d").unwrap());
        assert_eq!(dst.get_raster("r").unwrap(), src.get_raster("r").unwrap());
        fs::remove_dir_all(src.root()).unwrap();
        fs::remove_dir_all(dst.root()).unwrap();
    }

    #[test]
    fn classify_command() {
        let gis = temp_gis("cls");
        gis.put_raster("b1", &img(&[1.0, 2.0, 100.0, 101.0]))
            .unwrap();
        gis.put_raster("b2", &img(&[5.0, 6.0, 200.0, 201.0]))
            .unwrap();
        gis.run("classify", &["b1", "b2", "2"], "lc").unwrap();
        let lc = gis.get_raster("lc").unwrap();
        assert_ne!(lc.get(0, 0), lc.get(0, 2)); // two clusters separated
        assert!(matches!(
            gis.run("warp", &["b1"], "x"),
            Err(FileGisError::UnknownCommand(_))
        ));
        fs::remove_dir_all(gis.root()).unwrap();
    }

    #[test]
    fn superclassify_provenance_bottoms_out_at_an_untracked_signature_file() {
        // The §4.3 contrast: the baseline *can* run supervised
        // classification, but the transcript's provenance for the result
        // ends at `sig` — a file that was `put` directly, whose derivation
        // (the scientist's training-site digitization) is unrecorded and
        // unrecoverable. Gaea's interactive tasks record those answers.
        let gis = temp_gis("superclassify");
        gis.put_raster("b1", &img(&[1.0, 2.0, 100.0, 101.0]))
            .unwrap();
        gis.put_raster("b2", &img(&[5.0, 6.0, 200.0, 201.0]))
            .unwrap();
        // 2 classes x 2 bands signature raster, digitized who-knows-how.
        let sig = Image::from_f64(2, 2, vec![1.5, 5.5, 100.5, 200.5]).unwrap();
        gis.put_raster("sig", &sig).unwrap();
        gis.run("superclassify", &["b1", "b2", "sig"], "lc")
            .unwrap();
        let lc = gis.get_raster("lc").unwrap();
        assert_eq!(lc.get(0, 0), 0.0);
        assert_eq!(lc.get(0, 3), 1.0);
        // The class map's provenance names sig as an input...
        let p = gis.provenance("lc").unwrap().unwrap();
        assert!(p.inputs.contains(&"sig".to_string()));
        // ...but sig itself has none: the interaction is lost.
        assert_eq!(gis.provenance("sig").unwrap(), None);
        fs::remove_dir_all(gis.root()).unwrap();
    }

    #[test]
    fn transcript_parse_round_trip() {
        let e = TranscriptEntry {
            output: "lc".into(),
            command: "classify".into(),
            inputs: vec!["b1".into(), "b2".into(), "12".into()],
        };
        assert_eq!(TranscriptEntry::parse(&e.render()), Some(e));
        assert_eq!(TranscriptEntry::parse("garbage"), None);
    }
}
