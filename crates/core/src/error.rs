//! Kernel error type, aggregating the substrate errors.

use gaea_adt::AdtError;
use gaea_petri::PetriError;
use gaea_store::StoreError;
use std::fmt;

/// Errors raised by the Gaea kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// System-level (ADT/operator) failure.
    Adt(AdtError),
    /// Storage failure.
    Store(StoreError),
    /// Derivation-net failure.
    Petri(PetriError),
    /// Named entity not found in the catalog.
    NotFound { kind: &'static str, name: String },
    /// Entity id not found in the catalog.
    NoSuchId { kind: &'static str, id: u64 },
    /// Name already taken (processes/classes/concepts are never overwritten).
    Duplicate { kind: &'static str, name: String },
    /// A process ASSERTION failed (guard rule, Figure 3).
    AssertionFailed { process: String, assertion: String },
    /// Template evaluation problem (bad attr reference, type error...).
    Template(String),
    /// Schema-level inconsistency (e.g. process output attrs not matching
    /// the class definition).
    Schema(String),
    /// The planner found no derivation (with the failure frontier rendered).
    DerivationImpossible(String),
    /// Query produced nothing by any of the three steps.
    NoData(String),
    /// Experiment reproduction diverged from the recorded outputs.
    ReproductionMismatch(String),
    /// An external process's site is unregistered or unreachable (§5
    /// extension: non-local processes).
    SiteUnavailable { site: String, process: String },
    /// The process cannot be fired automatically: it is non-applicative
    /// (§5) or awaits scientist interaction (§4.3).
    NotAutoFirable { process: String, reason: String },
    /// The exact derivation is already in flight as a background job
    /// (another session submitted it); await or cancel that job instead
    /// of firing a duplicate.
    DerivationPending {
        process: String,
        job: gaea_sched::JobId,
    },
    /// An interactive session was finished before every declared
    /// interaction was answered.
    InteractionPending { process: String, param: String },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Adt(e) => write!(f, "adt: {e}"),
            KernelError::Store(e) => write!(f, "store: {e}"),
            KernelError::Petri(e) => write!(f, "petri: {e}"),
            KernelError::NotFound { kind, name } => write!(f, "no such {kind}: {name}"),
            KernelError::NoSuchId { kind, id } => write!(f, "no {kind} with oid {id}"),
            KernelError::Duplicate { kind, name } => {
                write!(
                    f,
                    "{kind} already defined: {name} (definitions are never overwritten)"
                )
            }
            KernelError::AssertionFailed { process, assertion } => {
                write!(f, "process {process}: assertion failed: {assertion}")
            }
            KernelError::Template(msg) => write!(f, "template: {msg}"),
            KernelError::Schema(msg) => write!(f, "schema: {msg}"),
            KernelError::DerivationImpossible(msg) => {
                write!(f, "derivation impossible: {msg}")
            }
            KernelError::NoData(msg) => write!(f, "no data: {msg}"),
            KernelError::ReproductionMismatch(msg) => {
                write!(f, "reproduction mismatch: {msg}")
            }
            KernelError::SiteUnavailable { site, process } => {
                write!(f, "process {process}: site {site:?} is not available")
            }
            KernelError::NotAutoFirable { process, reason } => {
                write!(
                    f,
                    "process {process} cannot be fired automatically: {reason}"
                )
            }
            KernelError::DerivationPending { process, job } => {
                write!(
                    f,
                    "process {process}: this derivation is already in flight as \
                     background {job}; await or cancel it instead of re-firing"
                )
            }
            KernelError::InteractionPending { process, param } => {
                write!(
                    f,
                    "process {process}: interaction {param:?} has not been answered"
                )
            }
        }
    }
}

impl std::error::Error for KernelError {}

impl From<AdtError> for KernelError {
    fn from(e: AdtError) -> KernelError {
        KernelError::Adt(e)
    }
}
impl From<StoreError> for KernelError {
    fn from(e: StoreError) -> KernelError {
        KernelError::Store(e)
    }
}
impl From<PetriError> for KernelError {
    fn from(e: PetriError) -> KernelError {
        KernelError::Petri(e)
    }
}

/// Convenience alias.
pub type KernelResult<T> = Result<T, KernelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: KernelError = AdtError::UnknownOperator("pca".into()).into();
        assert!(e.to_string().contains("pca"));
        let e: KernelError = StoreError::NoSuchRelation("r".into()).into();
        assert!(e.to_string().contains("store"));
        let e = KernelError::AssertionFailed {
            process: "P20".into(),
            assertion: "card(bands) = 3".into(),
        };
        assert_eq!(
            e.to_string(),
            "process P20: assertion failed: card(bands) = 3"
        );
        let e = KernelError::Duplicate {
            kind: "process",
            name: "P20".into(),
        };
        assert!(e.to_string().contains("never overwritten"));
    }
}
