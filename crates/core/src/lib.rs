//! # gaea-core — the Gaea kernel (the paper's primary contribution)
//!
//! The metadata manager of §2, organized exactly as the paper's three
//! semantic layers:
//!
//! * **High level (experiment) semantics** — [`schema::concept`]:
//!   concepts as sets of non-primitive classes with ISA specialization
//!   DAGs; [`experiment`]: recording, reproducing, comparing experiments.
//! * **Derivation semantics** — [`schema::process`] (primitive & compound
//!   processes with ASSERTIONS/MAPPINGS templates, [`template`]),
//!   [`task`] (object-level derivation records), [`derivation`] (the
//!   catalog→Petri-net mapping, backward-chaining planner and executor),
//!   [`lineage`] (derivation trees, structural comparison, duplicate
//!   detection).
//! * **System level semantics** — delegated to `gaea-adt` (primitive
//!   classes + operators) and `gaea-store` (the Postgres substitute).
//!
//! The [`kernel::Gaea`] facade ties the layers together and implements the
//! §2.1.5 retrieval sequence: direct retrieval → interpolation →
//! derivation ([`query`]).

pub mod catalog;
pub mod derivation;
pub mod error;
pub mod experiment;
pub mod external;
pub mod ids;
pub mod interact;
pub mod kernel;
pub mod lineage;
pub mod object;
pub mod query;
pub mod report;
pub mod schema;
pub mod task;
pub mod template;

pub use error::{KernelError, KernelResult};
pub use external::{ExternalExecutor, ExternalRegistry, SimulatedSite};
pub use ids::{ClassId, ConceptId, ExperimentId, ObjectId, ProcessId, TaskId};
pub use interact::InteractiveSession;
pub use kernel::{Gaea, JobId, JobStatus};
pub use object::DataObject;
pub use query::{AttrCmp, AttrPred, CostHint, Query, QueryMethod, QueryOutcome, QueryStrategy};
