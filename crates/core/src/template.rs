//! Process templates: ASSERTIONS and MAPPINGS (paper §2.1.2, Figure 3).
//!
//! "TEMPLATE: this is the part that defines the input to output mapping
//! between the attributes of the classes involved in the process. It
//! consists of a set of ASSERTIONS and the actual MAPPINGS. Assertions are
//! conditions on the input classes [...] guard rules which need to hold
//! before a process can be applied. Mappings are the transfer functions
//! that are used to derive the attributes of the output class from the
//! attributes of the input classes."
//!
//! The expression language is exactly what Figure 3 exercises: constants,
//! argument-attribute projection (`bands.spatialextent`), `ANYOF` (the
//! invariant-transfer idiom), `card`, `common`, operator application, and
//! comparisons for assertions.

use crate::error::{KernelError, KernelResult};
use crate::object::DataObject;
use gaea_adt::{GeoBox, OperatorRegistry, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Comparison operators usable in assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Value-identity equality.
    Eq,
    /// Numeric less-than.
    Lt,
    /// Numeric greater-than.
    Gt,
}

/// A template expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Literal value.
    Const(Value),
    /// A whole argument. For image-bearing classes this resolves to the
    /// object's `data` attribute (the Figure 3 idiom where `bands` denotes
    /// the images themselves inside operator applications).
    Arg(String),
    /// Attribute projection: `bands.timestamp`. For `SETOF` arguments the
    /// result is the set of attribute values.
    ArgAttr {
        /// Argument name.
        arg: String,
        /// Attribute to project.
        attr: String,
    },
    /// `ANYOF expr` — pick a representative member of a set (invariant
    /// transfer of extents).
    AnyOf(Box<Expr>),
    /// `card(expr)` — cardinality of a set.
    Card(Box<Expr>),
    /// `common(expr)` — the spatio-temporal compatibility guard.
    Common(Box<Expr>),
    /// Operator application resolved through the system-level registry.
    Apply {
        /// Operator name.
        op: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Comparison (assertions like `card(bands) = 3`).
    Cmp {
        /// Comparison kind.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A task-time parameter (`PARAM name`), supplied by the scientist at
    /// an interaction point (§4.3 extension) and recorded on the task for
    /// faithful reproduction.
    Param(String),
}

impl Expr {
    /// Shorthand: integer constant.
    pub fn int(v: i32) -> Expr {
        Expr::Const(Value::Int4(v))
    }

    /// Shorthand: float constant.
    pub fn float(v: f64) -> Expr {
        Expr::Const(Value::Float8(v))
    }

    /// Shorthand: projection.
    pub fn proj(arg: &str, attr: &str) -> Expr {
        Expr::ArgAttr {
            arg: arg.into(),
            attr: attr.into(),
        }
    }

    /// Shorthand: application.
    pub fn apply(op: &str, args: Vec<Expr>) -> Expr {
        Expr::Apply {
            op: op.into(),
            args,
        }
    }

    /// Shorthand: equality assertion.
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp {
            op: CmpOp::Eq,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Shorthand: task-time parameter.
    pub fn param(name: &str) -> Expr {
        Expr::Param(name.into())
    }

    /// Names of arguments referenced anywhere in this expression.
    pub fn referenced_args(&self, out: &mut Vec<String>) {
        match self {
            Expr::Const(_) | Expr::Param(_) => {}
            Expr::Arg(a) => out.push(a.clone()),
            Expr::ArgAttr { arg, .. } => out.push(arg.clone()),
            Expr::AnyOf(e) | Expr::Card(e) | Expr::Common(e) => e.referenced_args(out),
            Expr::Apply { args, .. } => {
                for a in args {
                    a.referenced_args(out);
                }
            }
            Expr::Cmp { lhs, rhs, .. } => {
                lhs.referenced_args(out);
                rhs.referenced_args(out);
            }
        }
    }

    /// Names of task-time parameters referenced anywhere in this expression.
    pub fn referenced_params(&self, out: &mut Vec<String>) {
        match self {
            Expr::Param(p) => out.push(p.clone()),
            Expr::Const(_) | Expr::Arg(_) | Expr::ArgAttr { .. } => {}
            Expr::AnyOf(e) | Expr::Card(e) | Expr::Common(e) => e.referenced_params(out),
            Expr::Apply { args, .. } => {
                for a in args {
                    a.referenced_params(out);
                }
            }
            Expr::Cmp { lhs, rhs, .. } => {
                lhs.referenced_params(out);
                rhs.referenced_params(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Arg(a) => write!(f, "{a}"),
            Expr::ArgAttr { arg, attr } => write!(f, "{arg}.{attr}"),
            Expr::AnyOf(e) => write!(f, "ANYOF {e}"),
            Expr::Card(e) => write!(f, "card({e})"),
            Expr::Common(e) => write!(f, "common({e})"),
            Expr::Apply { op, args } => {
                write!(f, "{op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Cmp { op, lhs, rhs } => {
                let sym = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Lt => "<",
                    CmpOp::Gt => ">",
                };
                write!(f, "{lhs} {sym} {rhs}")
            }
            Expr::Param(p) => write!(f, "PARAM {p}"),
        }
    }
}

/// One output-attribute mapping: `C20.data = ...`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// Output attribute name.
    pub attr: String,
    /// Transfer function.
    pub expr: Expr,
}

/// The TEMPLATE of a process definition.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Template {
    /// Guard rules, all of which must evaluate to `true`.
    pub assertions: Vec<Expr>,
    /// Transfer functions, one per output attribute.
    pub mappings: Vec<Mapping>,
}

/// An argument binding at task-instantiation time.
#[derive(Debug, Clone)]
pub enum Binding {
    /// Scalar argument: one object.
    One(DataObject),
    /// `SETOF` argument: several objects.
    Many(Vec<DataObject>),
}

impl Binding {
    /// The bound objects as a slice.
    pub fn objects(&self) -> Vec<&DataObject> {
        match self {
            Binding::One(o) => vec![o],
            Binding::Many(os) => os.iter().collect(),
        }
    }
}

/// Empty parameter map for non-interactive evaluation contexts.
pub static NO_PARAMS: BTreeMap<String, Value> = BTreeMap::new();

/// Evaluation context: argument bindings + the operator registry, plus any
/// task-time parameters (scientist-supplied at interaction points, or
/// recorded on a task being replayed).
pub struct EvalContext<'a> {
    /// Bindings by argument name.
    pub bindings: &'a BTreeMap<String, Binding>,
    /// System-level operator registry.
    pub registry: &'a OperatorRegistry,
    /// Task-time parameters for `PARAM name` expressions.
    pub params: &'a BTreeMap<String, Value>,
}

impl EvalContext<'_> {
    fn binding(&self, name: &str) -> KernelResult<&Binding> {
        self.bindings
            .get(name)
            .ok_or_else(|| KernelError::Template(format!("unbound argument {name:?} in template")))
    }

    fn project(&self, obj: &DataObject, attr: &str) -> KernelResult<Value> {
        obj.attr(attr).cloned().ok_or_else(|| {
            KernelError::Template(format!("object {} has no attribute {attr:?}", obj.id))
        })
    }

    /// Evaluate an expression.
    pub fn eval(&self, expr: &Expr) -> KernelResult<Value> {
        Ok(match expr {
            Expr::Const(v) => v.clone(),
            Expr::Arg(name) => {
                // The Figure 3 idiom: a bare argument inside an operator
                // application denotes the objects' payload (`data` attr).
                match self.binding(name)? {
                    Binding::One(o) => self.project(o, "data")?,
                    Binding::Many(os) => Value::Set(
                        os.iter()
                            .map(|o| self.project(o, "data"))
                            .collect::<KernelResult<Vec<Value>>>()?,
                    ),
                }
            }
            Expr::ArgAttr { arg, attr } => match self.binding(arg)? {
                Binding::One(o) => self.project(o, attr)?,
                Binding::Many(os) => Value::Set(
                    os.iter()
                        .map(|o| self.project(o, attr))
                        .collect::<KernelResult<Vec<Value>>>()?,
                ),
            },
            Expr::AnyOf(e) => {
                let v = self.eval(e)?;
                match v {
                    Value::Set(items) => items
                        .into_iter()
                        .next()
                        .ok_or_else(|| KernelError::Template("ANYOF over an empty set".into()))?,
                    other => other, // ANYOF of a scalar is the scalar
                }
            }
            Expr::Card(e) => {
                let v = self.eval(e)?;
                let set = v.as_set().ok_or_else(|| {
                    KernelError::Template(format!("card() of non-set expression {e}"))
                })?;
                Value::Int4(set.len() as i32)
            }
            Expr::Common(e) => {
                let v = self.eval(e)?;
                let set = v.as_set().ok_or_else(|| {
                    KernelError::Template(format!("common() of non-set expression {e}"))
                })?;
                Value::Bool(eval_common(set)?)
            }
            Expr::Apply { op, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                self.registry.invoke(op, &vals)?
            }
            Expr::Param(name) => self.params.get(name).cloned().ok_or_else(|| {
                KernelError::Template(format!(
                    "parameter {name:?} was not supplied (interactive processes \
                     require every declared interaction to be answered)"
                ))
            })?,
            Expr::Cmp { op, lhs, rhs } => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                let b = match op {
                    CmpOp::Eq => {
                        // Numeric comparison tolerates int/float width
                        // differences (card() yields int4; literals may be
                        // float8); everything else is value identity.
                        match (l.as_f64(), r.as_f64()) {
                            (Some(a), Some(b)) => a == b,
                            _ => l == r,
                        }
                    }
                    CmpOp::Lt => num_cmp(&l, &r, lhs, rhs)? == std::cmp::Ordering::Less,
                    CmpOp::Gt => num_cmp(&l, &r, lhs, rhs)? == std::cmp::Ordering::Greater,
                };
                Value::Bool(b)
            }
        })
    }

    /// Evaluate all assertions; the first failure is reported with its
    /// rendered source (for the task log).
    pub fn check_assertions(&self, process: &str, template: &Template) -> KernelResult<()> {
        for a in &template.assertions {
            let v = self.eval(a)?;
            match v {
                Value::Bool(true) => {}
                Value::Bool(false) => {
                    return Err(KernelError::AssertionFailed {
                        process: process.into(),
                        assertion: a.to_string(),
                    })
                }
                other => {
                    return Err(KernelError::Template(format!(
                        "assertion {a} evaluated to non-boolean {other}"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Evaluate all mappings into output attribute values.
    pub fn eval_mappings(&self, template: &Template) -> KernelResult<BTreeMap<String, Value>> {
        let mut out = BTreeMap::new();
        for m in &template.mappings {
            let v = self.eval(&m.expr)?;
            out.insert(m.attr.clone(), v);
        }
        Ok(out)
    }
}

/// `common()` over a set of extents: boxes must pairwise overlap,
/// timestamps must be pairwise equal. Empty/singleton sets pass.
fn eval_common(set: &[Value]) -> KernelResult<bool> {
    if set.len() < 2 {
        return Ok(true);
    }
    if set.iter().all(|v| v.as_geobox().is_some()) {
        let boxes: Vec<GeoBox> = set
            .iter()
            .map(|v| v.as_geobox().expect("checked"))
            .collect();
        return Ok(GeoBox::common(&boxes));
    }
    if set.iter().all(|v| v.as_abstime().is_some()) {
        return Ok(set.windows(2).all(|w| w[0] == w[1]));
    }
    Err(KernelError::Template(
        "common() requires a homogeneous set of boxes or timestamps".into(),
    ))
}

fn num_cmp(l: &Value, r: &Value, le: &Expr, re: &Expr) -> KernelResult<std::cmp::Ordering> {
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => Ok(a.total_cmp(&b)),
        _ => Err(KernelError::Template(format!(
            "numeric comparison of non-numeric operands: {le} vs {re}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClassId, ObjectId};
    use gaea_adt::{AbsTime, Image, PixType};
    use gaea_store::Oid;

    fn band(id: u64, fill: f64, bbox: GeoBox, t: AbsTime) -> DataObject {
        let mut attrs = BTreeMap::new();
        attrs.insert(
            "data".into(),
            Value::image(Image::filled(4, 4, PixType::Float8, fill)),
        );
        attrs.insert("spatialextent".into(), Value::GeoBox(bbox));
        attrs.insert("timestamp".into(), Value::AbsTime(t));
        DataObject {
            id: ObjectId(Oid(id)),
            class: ClassId(Oid(100)),
            attrs,
        }
    }

    fn ctx_with_bands(bands: Vec<DataObject>) -> (BTreeMap<String, Binding>, OperatorRegistry) {
        let mut bindings = BTreeMap::new();
        bindings.insert("bands".to_string(), Binding::Many(bands));
        let mut reg = OperatorRegistry::with_builtins();
        gaea_raster::register_raster_ops(&mut reg).unwrap();
        (bindings, reg)
    }

    fn figure3_template() -> Template {
        Template {
            assertions: vec![
                Expr::eq(
                    Expr::Card(Box::new(Expr::Arg("bands".into()))),
                    Expr::int(3),
                ),
                Expr::Common(Box::new(Expr::proj("bands", "spatialextent"))),
                Expr::Common(Box::new(Expr::proj("bands", "timestamp"))),
            ],
            mappings: vec![
                Mapping {
                    attr: "data".into(),
                    expr: Expr::apply(
                        "unsuperclassify",
                        vec![
                            Expr::apply("composite", vec![Expr::Arg("bands".into())]),
                            Expr::int(12),
                        ],
                    ),
                },
                Mapping {
                    attr: "numclass".into(),
                    expr: Expr::int(12),
                },
                Mapping {
                    attr: "spatialextent".into(),
                    expr: Expr::AnyOf(Box::new(Expr::proj("bands", "spatialextent"))),
                },
                Mapping {
                    attr: "timestamp".into(),
                    expr: Expr::AnyOf(Box::new(Expr::proj("bands", "timestamp"))),
                },
            ],
        }
    }

    fn africa() -> GeoBox {
        GeoBox::new(-20.0, -35.0, 55.0, 38.0)
    }

    #[test]
    fn figure3_template_end_to_end() {
        let t0 = AbsTime::from_ymd(1986, 1, 15).unwrap();
        let bands = vec![
            band(1, 10.0, africa(), t0),
            band(2, 60.0, africa(), t0),
            band(3, 200.0, africa(), t0),
        ];
        let (bindings, reg) = ctx_with_bands(bands);
        let ctx = EvalContext {
            bindings: &bindings,
            registry: &reg,
            params: &NO_PARAMS,
        };
        let tpl = figure3_template();
        ctx.check_assertions("P20", &tpl).unwrap();
        let out = ctx.eval_mappings(&tpl).unwrap();
        assert_eq!(out["numclass"], Value::Int4(12));
        assert_eq!(out["spatialextent"], Value::GeoBox(africa()));
        assert_eq!(out["timestamp"], Value::AbsTime(t0));
        let img = out["data"].as_image().unwrap();
        assert_eq!((img.nrow(), img.ncol()), (4, 4));
    }

    #[test]
    fn card_assertion_fails_with_two_bands() {
        let t0 = AbsTime::from_ymd(1986, 1, 15).unwrap();
        let bands = vec![band(1, 1.0, africa(), t0), band(2, 2.0, africa(), t0)];
        let (bindings, reg) = ctx_with_bands(bands);
        let ctx = EvalContext {
            bindings: &bindings,
            registry: &reg,
            params: &NO_PARAMS,
        };
        let err = ctx
            .check_assertions("P20", &figure3_template())
            .unwrap_err();
        match err {
            KernelError::AssertionFailed { process, assertion } => {
                assert_eq!(process, "P20");
                assert_eq!(assertion, "card(bands) = 3");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn common_assertion_fails_on_disjoint_extents() {
        let t0 = AbsTime::from_ymd(1986, 1, 15).unwrap();
        let amazon = GeoBox::new(-75.0, -15.0, -50.0, 5.0);
        let bands = vec![
            band(1, 1.0, africa(), t0),
            band(2, 2.0, africa(), t0),
            band(3, 3.0, amazon, t0),
        ];
        let (bindings, reg) = ctx_with_bands(bands);
        let ctx = EvalContext {
            bindings: &bindings,
            registry: &reg,
            params: &NO_PARAMS,
        };
        let err = ctx
            .check_assertions("P20", &figure3_template())
            .unwrap_err();
        assert!(err.to_string().contains("common(bands.spatialextent)"));
    }

    #[test]
    fn common_assertion_fails_on_mixed_timestamps() {
        let t0 = AbsTime::from_ymd(1986, 1, 15).unwrap();
        let t1 = AbsTime::from_ymd(1987, 1, 15).unwrap();
        let bands = vec![
            band(1, 1.0, africa(), t0),
            band(2, 2.0, africa(), t0),
            band(3, 3.0, africa(), t1),
        ];
        let (bindings, reg) = ctx_with_bands(bands);
        let ctx = EvalContext {
            bindings: &bindings,
            registry: &reg,
            params: &NO_PARAMS,
        };
        let err = ctx
            .check_assertions("P20", &figure3_template())
            .unwrap_err();
        assert!(err.to_string().contains("common(bands.timestamp)"));
    }

    #[test]
    fn anyof_scalar_and_empty() {
        let (bindings, reg) = ctx_with_bands(vec![]);
        let ctx = EvalContext {
            bindings: &bindings,
            registry: &reg,
            params: &NO_PARAMS,
        };
        // ANYOF of a constant scalar passes through.
        assert_eq!(
            ctx.eval(&Expr::AnyOf(Box::new(Expr::int(5)))).unwrap(),
            Value::Int4(5)
        );
        // ANYOF over the (empty) band set errors.
        assert!(ctx
            .eval(&Expr::AnyOf(Box::new(Expr::proj("bands", "timestamp"))))
            .is_err());
    }

    #[test]
    fn unbound_argument_and_missing_attr() {
        let (bindings, reg) = ctx_with_bands(vec![band(1, 1.0, africa(), AbsTime(0))]);
        let ctx = EvalContext {
            bindings: &bindings,
            registry: &reg,
            params: &NO_PARAMS,
        };
        assert!(ctx.eval(&Expr::Arg("nope".into())).is_err());
        assert!(ctx.eval(&Expr::proj("bands", "nope")).is_err());
    }

    #[test]
    fn comparison_semantics() {
        let (bindings, reg) = ctx_with_bands(vec![]);
        let ctx = EvalContext {
            bindings: &bindings,
            registry: &reg,
            params: &NO_PARAMS,
        };
        // Mixed-width numeric equality.
        assert_eq!(
            ctx.eval(&Expr::eq(Expr::int(3), Expr::float(3.0))).unwrap(),
            Value::Bool(true)
        );
        let lt = Expr::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(Expr::float(1.0)),
            rhs: Box::new(Expr::float(2.0)),
        };
        assert_eq!(ctx.eval(&lt).unwrap(), Value::Bool(true));
        // Non-numeric Lt errors.
        let bad = Expr::Cmp {
            op: CmpOp::Gt,
            lhs: Box::new(Expr::Const(Value::Text("a".into()))),
            rhs: Box::new(Expr::float(2.0)),
        };
        assert!(ctx.eval(&bad).is_err());
    }

    #[test]
    fn display_round_trips_the_figure3_surface_syntax() {
        let tpl = figure3_template();
        assert_eq!(tpl.assertions[0].to_string(), "card(bands) = 3");
        assert_eq!(tpl.assertions[1].to_string(), "common(bands.spatialextent)");
        assert_eq!(
            tpl.mappings[0].expr.to_string(),
            "unsuperclassify(composite(bands), 12)"
        );
        assert_eq!(
            tpl.mappings[2].expr.to_string(),
            "ANYOF bands.spatialextent"
        );
    }

    #[test]
    fn referenced_args_collected() {
        let tpl = figure3_template();
        let mut args = Vec::new();
        for a in &tpl.assertions {
            a.referenced_args(&mut args);
        }
        for m in &tpl.mappings {
            m.expr.referenced_args(&mut args);
        }
        assert!(args.iter().all(|a| a == "bands"));
        assert!(args.len() >= 5);
    }

    #[test]
    fn non_boolean_assertion_is_a_template_error() {
        let (bindings, reg) = ctx_with_bands(vec![]);
        let ctx = EvalContext {
            bindings: &bindings,
            registry: &reg,
            params: &NO_PARAMS,
        };
        let tpl = Template {
            assertions: vec![Expr::int(1)],
            mappings: vec![],
        };
        assert!(matches!(
            ctx.check_assertions("P", &tpl),
            Err(KernelError::Template(_))
        ));
    }
}
