//! Data objects: instances of non-primitive classes.
//!
//! A data object is a tuple of attribute values plus the two extents every
//! Gaea class carries (paper §2.1.2: `SPATIAL EXTENT` / `TEMPORAL EXTENT`).
//! The "automatically defined retrieval functions" of the paper
//! (`area(landcover)`, `timestamp(landcover)`) correspond to [`DataObject::attr`]
//! and the typed extent accessors.

use crate::ids::{ClassId, ObjectId};
use gaea_adt::{AbsTime, GeoBox, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Reserved attribute name for the spatial extent.
pub const SPATIAL_ATTR: &str = "spatialextent";
/// Reserved attribute name for the temporal extent.
pub const TEMPORAL_ATTR: &str = "timestamp";

/// An instance of a non-primitive class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataObject {
    /// Object identifier.
    pub id: ObjectId,
    /// Owning class.
    pub class: ClassId,
    /// Attribute values, including the extents under their reserved names.
    pub attrs: BTreeMap<String, Value>,
}

impl DataObject {
    /// Attribute lookup (the auto-defined retrieval function).
    pub fn attr(&self, name: &str) -> Option<&Value> {
        self.attrs.get(name)
    }

    /// Spatial extent, if the object carries one.
    pub fn spatial_extent(&self) -> Option<GeoBox> {
        self.attrs.get(SPATIAL_ATTR).and_then(Value::as_geobox)
    }

    /// Temporal extent, if the object carries one.
    pub fn timestamp(&self) -> Option<AbsTime> {
        self.attrs.get(TEMPORAL_ATTR).and_then(Value::as_abstime)
    }
}

impl fmt::Display for DataObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} of {} {{", self.id, self.class)?;
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaea_store::Oid;

    fn obj() -> DataObject {
        let mut attrs = BTreeMap::new();
        attrs.insert("area".into(), Value::Char16("africa".into()));
        attrs.insert(
            SPATIAL_ATTR.into(),
            Value::GeoBox(GeoBox::new(-20.0, -35.0, 55.0, 38.0)),
        );
        attrs.insert(
            TEMPORAL_ATTR.into(),
            Value::AbsTime(AbsTime::from_ymd(1986, 1, 15).unwrap()),
        );
        DataObject {
            id: ObjectId(Oid(7)),
            class: ClassId(Oid(3)),
            attrs,
        }
    }

    #[test]
    fn retrieval_functions() {
        let o = obj();
        assert_eq!(o.attr("area"), Some(&Value::Char16("africa".into())));
        assert_eq!(o.attr("missing"), None);
        assert_eq!(
            o.spatial_extent().unwrap(),
            GeoBox::new(-20.0, -35.0, 55.0, 38.0)
        );
        assert_eq!(
            o.timestamp().unwrap(),
            AbsTime::from_ymd(1986, 1, 15).unwrap()
        );
    }

    #[test]
    fn extents_absent_when_not_set() {
        let o = DataObject {
            id: ObjectId(Oid(1)),
            class: ClassId(Oid(2)),
            attrs: BTreeMap::new(),
        };
        assert!(o.spatial_extent().is_none());
        assert!(o.timestamp().is_none());
    }

    #[test]
    fn display_lists_attrs() {
        let s = obj().to_string();
        assert!(s.contains("object:7"));
        assert!(s.contains("area"));
    }
}
