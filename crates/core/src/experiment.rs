//! Experiments: the high-level semantics layer's unit of work (§2.1.1).
//!
//! "Experiment management also helps avoid unnecessary duplication of
//! experiments and may encourage the reuse of aspects of previously
//! performed experiments [...] Experiments can be reproduced, allowing
//! rapid and reliable confirmation of results."
//!
//! An experiment is a named, attributed group of tasks. Reproduction
//! re-fires every recorded task against its recorded inputs and verifies
//! the outputs by value identity (see `kernel::Gaea::reproduce_experiment`).

use crate::ids::{ExperimentId, TaskId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A recorded experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Experiment {
    /// Identifier.
    pub id: ExperimentId,
    /// Name (unique).
    pub name: String,
    /// What the scientist was after.
    pub description: String,
    /// Who ran it.
    pub user: String,
    /// Member tasks, in execution order.
    pub tasks: Vec<TaskId>,
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EXPERIMENT {} by {}: {} task(s) — {}",
            self.name,
            self.user,
            self.tasks.len(),
            self.description
        )
    }
}

/// Outcome of reproducing an experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reproduction {
    /// Tasks re-executed.
    pub tasks_rerun: usize,
    /// Tasks whose regenerated outputs matched the stored objects exactly
    /// (value identity).
    pub matching: usize,
    /// Human-readable notes on any divergence.
    pub divergences: Vec<String>,
    /// Tasks that cannot be re-executed by construction: manual records of
    /// non-applicative procedures, and external tasks whose site is down.
    /// These are audit notes, not divergences — the derivation *history*
    /// is intact even where the computation cannot be repeated.
    pub not_replayable: Vec<String>,
}

impl Reproduction {
    /// True if every rerun reproduced its recorded outputs. Tasks in
    /// [`Reproduction::not_replayable`] do not affect faithfulness.
    pub fn is_faithful(&self) -> bool {
        self.matching == self.tasks_rerun && self.divergences.is_empty()
    }

    /// True if some recorded work could not be re-executed at all.
    pub fn has_unreplayable(&self) -> bool {
        !self.not_replayable.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaea_store::Oid;

    #[test]
    fn display_and_faithfulness() {
        let e = Experiment {
            id: ExperimentId(Oid(1)),
            name: "veg_change_88_89".into(),
            description: "NDVI change Africa 1988-1989".into(),
            user: "hachem".into(),
            tasks: vec![TaskId(Oid(5)), TaskId(Oid(6))],
        };
        let s = e.to_string();
        assert!(s.contains("veg_change_88_89"));
        assert!(s.contains("2 task(s)"));
        let r = Reproduction {
            tasks_rerun: 2,
            matching: 2,
            divergences: vec![],
            not_replayable: vec![],
        };
        assert!(r.is_faithful());
        assert!(!r.has_unreplayable());
        let bad = Reproduction {
            tasks_rerun: 2,
            matching: 1,
            divergences: vec!["task:6 output differs".into()],
            not_replayable: vec![],
        };
        assert!(!bad.is_faithful());
        // Manual/external-down tasks do not break faithfulness, but they
        // are visible.
        let partial = Reproduction {
            tasks_rerun: 1,
            matching: 1,
            divergences: vec![],
            not_replayable: vec!["task:7: non-applicative".into()],
        };
        assert!(partial.is_faithful());
        assert!(partial.has_unreplayable());
    }
}
