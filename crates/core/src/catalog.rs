//! The kernel catalog: definitions, tasks, experiments and the object
//! directory.
//!
//! All catalog entities are kept in ordered maps (deterministic iteration)
//! and serialized as one JSON document into the store snapshot, alongside
//! the per-class object relations. Definitions are immutable once
//! registered — the paper's "in no case is the old process overwritten"
//! generalized to every catalog kind.

use crate::error::{KernelError, KernelResult};
use crate::experiment::Experiment;
use crate::ids::{ClassId, ConceptId, ExperimentId, ObjectId, ProcessId, TaskId};
use crate::schema::{ClassDef, Concept, ProcessDef};
use crate::task::Task;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The catalog body.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    /// Non-primitive classes.
    pub classes: BTreeMap<ClassId, ClassDef>,
    /// Concepts.
    pub concepts: BTreeMap<ConceptId, Concept>,
    /// Processes.
    pub processes: BTreeMap<ProcessId, ProcessDef>,
    /// Tasks (append-only).
    pub tasks: BTreeMap<TaskId, Task>,
    /// Experiments.
    pub experiments: BTreeMap<ExperimentId, Experiment>,
    /// Object directory: which class each stored object belongs to.
    pub object_class: BTreeMap<ObjectId, ClassId>,
    /// Name indexes.
    class_names: BTreeMap<String, ClassId>,
    concept_names: BTreeMap<String, ConceptId>,
    process_names: BTreeMap<String, ProcessId>,
    experiment_names: BTreeMap<String, ExperimentId>,
    /// Reverse index object → earliest task that produced it (compound
    /// umbrellas share outputs with their last step; the step keeps the
    /// entry). Not serialized — rebuilt via [`Catalog::rebuild_task_index`]
    /// after a load.
    #[serde(skip)]
    produced_by: BTreeMap<ObjectId, TaskId>,
    /// Reverse index process → its recorded tasks, in task-id order (ids
    /// are allocated monotonically, so append order *is* id order). The
    /// query mechanism's dedup walk and the scheduler's impact analysis
    /// consult this instead of scanning the whole task map. Not
    /// serialized — rebuilt via [`Catalog::rebuild_task_index`].
    #[serde(skip)]
    tasks_by_process: BTreeMap<ProcessId, Vec<TaskId>>,
    /// Logical clock for task ordering.
    pub next_seq: u64,
}

impl Catalog {
    /// Register a class (name must be fresh).
    pub fn add_class(&mut self, def: ClassDef) -> KernelResult<()> {
        if self.class_names.contains_key(&def.name) {
            return Err(KernelError::Duplicate {
                kind: "class",
                name: def.name,
            });
        }
        self.class_names.insert(def.name.clone(), def.id);
        self.classes.insert(def.id, def);
        Ok(())
    }

    /// Register a concept.
    pub fn add_concept(&mut self, def: Concept) -> KernelResult<()> {
        if self.concept_names.contains_key(&def.name) {
            return Err(KernelError::Duplicate {
                kind: "concept",
                name: def.name,
            });
        }
        self.concept_names.insert(def.name.clone(), def.id);
        self.concepts.insert(def.id, def);
        Ok(())
    }

    /// Register a process and link it into its output class's DERIVED BY.
    pub fn add_process(&mut self, def: ProcessDef) -> KernelResult<()> {
        if self.process_names.contains_key(&def.name) {
            return Err(KernelError::Duplicate {
                kind: "process",
                name: def.name,
            });
        }
        let out = def.output;
        self.process_names.insert(def.name.clone(), def.id);
        let id = def.id;
        self.processes.insert(def.id, def);
        if let Some(class) = self.classes.get_mut(&out) {
            class.derived_by.push(id);
        }
        Ok(())
    }

    /// Register an experiment.
    pub fn add_experiment(&mut self, def: Experiment) -> KernelResult<()> {
        if self.experiment_names.contains_key(&def.name) {
            return Err(KernelError::Duplicate {
                kind: "experiment",
                name: def.name,
            });
        }
        self.experiment_names.insert(def.name.clone(), def.id);
        self.experiments.insert(def.id, def);
        Ok(())
    }

    /// Append a task and bump the logical clock.
    pub fn add_task(&mut self, task: Task) {
        self.next_seq = self.next_seq.max(task.seq + 1);
        for out in &task.outputs {
            // First producer wins: a compound umbrella re-lists its last
            // step's outputs, but the step (added first, lower id) is the
            // object's real producer.
            self.produced_by.entry(*out).or_insert(task.id);
        }
        self.tasks_by_process
            .entry(task.process)
            .or_default()
            .push(task.id);
        self.tasks.insert(task.id, task);
    }

    /// Remove a task record (compound compensation), unlinking it from the
    /// producer index. Returns the removed task.
    pub fn remove_task(&mut self, id: TaskId) -> Option<Task> {
        let task = self.tasks.remove(&id)?;
        for out in &task.outputs {
            if self.produced_by.get(out) == Some(&id) {
                self.produced_by.remove(out);
            }
        }
        if let Some(ids) = self.tasks_by_process.get_mut(&task.process) {
            ids.retain(|t| *t != id);
            if ids.is_empty() {
                self.tasks_by_process.remove(&task.process);
            }
        }
        Some(task)
    }

    /// Rebuild the object → producing-task and process → tasks indexes
    /// from the task map. Called after deserializing a catalog (the
    /// indexes are not persisted).
    pub fn rebuild_task_index(&mut self) {
        self.produced_by.clear();
        self.tasks_by_process.clear();
        // Iterate in id order so the earliest producer wins and the
        // per-process lists come out id-sorted, exactly as incremental
        // `add_task` maintenance would have left them.
        for (id, task) in &self.tasks {
            for out in &task.outputs {
                self.produced_by.entry(*out).or_insert(*id);
            }
            self.tasks_by_process
                .entry(task.process)
                .or_default()
                .push(*id);
        }
    }

    /// Recorded tasks of one process, in task-id (= recording) order.
    /// O(log n + answers) through the per-process index — the query
    /// mechanism's duplicate-derivation walk runs this per firing, and
    /// used to scan every task on record instead.
    pub fn tasks_of_process(&self, pid: ProcessId) -> impl Iterator<Item = &Task> {
        self.tasks_by_process
            .get(&pid)
            .into_iter()
            .flatten()
            .filter_map(|id| self.tasks.get(id))
    }

    /// Allocate the next task sequence number.
    pub fn next_task_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Class by id.
    pub fn class(&self, id: ClassId) -> KernelResult<&ClassDef> {
        self.classes.get(&id).ok_or(KernelError::NoSuchId {
            kind: "class",
            id: id.raw(),
        })
    }

    /// Class by name.
    pub fn class_by_name(&self, name: &str) -> KernelResult<&ClassDef> {
        let id = self
            .class_names
            .get(name)
            .ok_or_else(|| KernelError::NotFound {
                kind: "class",
                name: name.into(),
            })?;
        self.class(*id)
    }

    /// Concept by id.
    pub fn concept(&self, id: ConceptId) -> KernelResult<&Concept> {
        self.concepts.get(&id).ok_or(KernelError::NoSuchId {
            kind: "concept",
            id: id.raw(),
        })
    }

    /// Concept by name.
    pub fn concept_by_name(&self, name: &str) -> KernelResult<&Concept> {
        let id = self
            .concept_names
            .get(name)
            .ok_or_else(|| KernelError::NotFound {
                kind: "concept",
                name: name.into(),
            })?;
        self.concept(*id)
    }

    /// Process by id.
    pub fn process(&self, id: ProcessId) -> KernelResult<&ProcessDef> {
        self.processes.get(&id).ok_or(KernelError::NoSuchId {
            kind: "process",
            id: id.raw(),
        })
    }

    /// Process by name.
    pub fn process_by_name(&self, name: &str) -> KernelResult<&ProcessDef> {
        let id = self
            .process_names
            .get(name)
            .ok_or_else(|| KernelError::NotFound {
                kind: "process",
                name: name.into(),
            })?;
        self.process(*id)
    }

    /// Declared cost hint of a process (`COST oldest` / `COST newest` on
    /// its definition), consulted by the query mechanism's bind stage when
    /// the query itself declares none. `None` for unknown processes and
    /// processes without a declared hint alike — absence simply leaves the
    /// bind stage on its heuristic.
    pub fn cost_hint(&self, id: ProcessId) -> Option<crate::query::CostHint> {
        self.processes.get(&id).and_then(|p| p.cost)
    }

    /// Experiment by name.
    pub fn experiment_by_name(&self, name: &str) -> KernelResult<&Experiment> {
        let id = self
            .experiment_names
            .get(name)
            .ok_or_else(|| KernelError::NotFound {
                kind: "experiment",
                name: name.into(),
            })?;
        self.experiments.get(id).ok_or(KernelError::NoSuchId {
            kind: "experiment",
            id: id.raw(),
        })
    }

    /// Task by id.
    pub fn task(&self, id: TaskId) -> KernelResult<&Task> {
        self.tasks.get(&id).ok_or(KernelError::NoSuchId {
            kind: "task",
            id: id.raw(),
        })
    }

    /// Owning class of a stored object.
    pub fn class_of_object(&self, obj: ObjectId) -> KernelResult<ClassId> {
        self.object_class
            .get(&obj)
            .copied()
            .ok_or(KernelError::NoSuchId {
                kind: "object",
                id: obj.raw(),
            })
    }

    /// The task that produced an object, if it was derived (base objects
    /// have none). O(log n) through the producer index — staleness
    /// classification calls this once per ancestor on hot query paths.
    pub fn producing_task(&self, obj: ObjectId) -> Option<&Task> {
        self.produced_by.get(&obj).and_then(|id| self.tasks.get(id))
    }

    /// All member classes of a concept, including those inherited from
    /// specializations is NOT done — the paper maps a concept to its own
    /// class set; ISA links are for browsing generalization.
    pub fn concept_member_classes(&self, name: &str) -> KernelResult<Vec<&ClassDef>> {
        let c = self.concept_by_name(name)?;
        c.members.iter().map(|id| self.class(*id)).collect()
    }

    /// Concepts reachable upward through ISA links (generalizations).
    pub fn concept_ancestors(&self, name: &str) -> KernelResult<Vec<&Concept>> {
        let start = self.concept_by_name(name)?;
        let mut out = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        let mut stack: Vec<ConceptId> = start.parents.clone();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let c = self.concept(id)?;
            stack.extend(c.parents.iter().copied());
            out.push(c);
        }
        Ok(out)
    }

    /// Concepts that specialize the named one (ISA children).
    pub fn concept_children(&self, id: ConceptId) -> Vec<&Concept> {
        self.concepts
            .values()
            .filter(|c| c.parents.contains(&id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrDef, ClassKind};
    use gaea_adt::TypeTag;
    use gaea_store::Oid;

    fn class(id: u64, name: &str) -> ClassDef {
        ClassDef {
            id: ClassId(Oid(id)),
            name: name.into(),
            kind: ClassKind::Derived,
            attrs: vec![AttrDef::new("data", TypeTag::Image)],
            has_spatial: true,
            has_temporal: true,
            derived_by: vec![],
            doc: String::new(),
        }
    }

    #[test]
    fn duplicate_names_rejected_everywhere() {
        let mut cat = Catalog::default();
        cat.add_class(class(1, "ndvi")).unwrap();
        assert!(matches!(
            cat.add_class(class(2, "ndvi")),
            Err(KernelError::Duplicate { kind: "class", .. })
        ));
    }

    #[test]
    fn process_registration_links_derived_by() {
        use crate::schema::{ProcessArg, ProcessKind};
        use crate::template::Template;
        let mut cat = Catalog::default();
        cat.add_class(class(1, "tm")).unwrap();
        cat.add_class(class(2, "landcover")).unwrap();
        let p = ProcessDef {
            id: ProcessId(Oid(10)),
            name: "P20".into(),
            output: ClassId(Oid(2)),
            args: vec![ProcessArg::set("bands", ClassId(Oid(1)), 3)],
            template: Template::default(),
            kind: ProcessKind::Primitive,
            interactions: vec![],
            cost: None,
            doc: String::new(),
        };
        cat.add_process(p).unwrap();
        assert_eq!(
            cat.class_by_name("landcover").unwrap().derived_by,
            vec![ProcessId(Oid(10))]
        );
        assert_eq!(cat.process_by_name("P20").unwrap().id, ProcessId(Oid(10)));
        assert!(cat.process_by_name("P99").is_err());
    }

    #[test]
    fn concept_isa_traversal() {
        let mut cat = Catalog::default();
        cat.add_class(class(1, "c1")).unwrap();
        let desert = Concept {
            id: ConceptId(Oid(100)),
            name: "desert".into(),
            members: Default::default(),
            parents: vec![],
            doc: String::new(),
        };
        let hot = Concept {
            id: ConceptId(Oid(101)),
            name: "hot_trade_wind_desert".into(),
            members: [ClassId(Oid(1))].into_iter().collect(),
            parents: vec![ConceptId(Oid(100))],
            doc: String::new(),
        };
        cat.add_concept(desert).unwrap();
        cat.add_concept(hot).unwrap();
        let ancestors = cat.concept_ancestors("hot_trade_wind_desert").unwrap();
        assert_eq!(ancestors.len(), 1);
        assert_eq!(ancestors[0].name, "desert");
        let children = cat.concept_children(ConceptId(Oid(100)));
        assert_eq!(children.len(), 1);
        assert_eq!(children[0].name, "hot_trade_wind_desert");
        let members = cat.concept_member_classes("hot_trade_wind_desert").unwrap();
        assert_eq!(members[0].name, "c1");
    }

    #[test]
    fn task_seq_monotone() {
        let mut cat = Catalog::default();
        assert_eq!(cat.next_task_seq(), 0);
        assert_eq!(cat.next_task_seq(), 1);
    }

    #[test]
    fn object_directory() {
        let mut cat = Catalog::default();
        cat.object_class.insert(ObjectId(Oid(5)), ClassId(Oid(1)));
        assert_eq!(
            cat.class_of_object(ObjectId(Oid(5))).unwrap(),
            ClassId(Oid(1))
        );
        assert!(cat.class_of_object(ObjectId(Oid(6))).is_err());
    }
}
