//! Tasks: object-level derivation records (paper §2.1.2, §2.1.5).
//!
//! "The instantiation of a process with input data objects is called a
//! task. Every task will generate a set of objects (most of the time just
//! one) for the output class. [...] The data object level derivation will
//! record the actual derivation relationship among data objects."
//!
//! Tasks are the provenance substrate: lineage trees, experiment
//! reproduction and duplicate-work detection are all queries over tasks.

use crate::ids::{ObjectId, ProcessId, TaskId};
use gaea_adt::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// How the task came to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Direct firing of a primitive process.
    Primitive,
    /// Umbrella record for a compound process (children carry the work).
    Compound,
    /// The generic interpolation derivation of §2.1.5 step 2.
    Interpolation,
    /// Primitive firing completed through an interactive session (§4.3
    /// extension); the scientist's answers are in `params`.
    Interactive,
    /// Mapping executed at a remote site (§5 extension); the site name is
    /// in `params["site"]`.
    External,
    /// Non-applicative derivation recorded by the scientist (§5 extension):
    /// outputs were observed, not computed, so the task can never be
    /// replayed — only audited.
    Manual,
}

impl TaskKind {
    /// Can the system re-fire a task of this kind on its own? `false`
    /// for manual tasks (the procedure happened outside the system) and
    /// interpolations (query-driven — re-issue the query instead); the
    /// refresh machinery reports such derivations as skipped rather
    /// than re-firing them.
    pub fn auto_firable(&self) -> bool {
        !matches!(self, TaskKind::Manual | TaskKind::Interpolation)
    }
}

/// One derivation record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Task identifier.
    pub id: TaskId,
    /// The instantiated process.
    pub process: ProcessId,
    /// Process name at instantiation time (processes are immutable, so this
    /// never dangles).
    pub process_name: String,
    /// Input objects per argument name, in binding order.
    pub inputs: BTreeMap<String, Vec<ObjectId>>,
    /// Store version of each input object observed when the task fired —
    /// the derivation's MVCC fingerprint. A recorded derivation is
    /// *current* while every input's live version still equals its
    /// fingerprinted one (and every input is itself current); it turns
    /// *stale* the moment an input is mutated or deleted. Empty on tasks
    /// recorded before versioning existed: such tasks classify as current
    /// (nothing recorded to contradict them).
    #[serde(default)]
    pub input_versions: BTreeMap<ObjectId, u64>,
    /// Objects generated for the output class.
    pub outputs: Vec<ObjectId>,
    /// Extra parameters outside the template (e.g. the interpolation target
    /// time), needed for faithful reproduction.
    pub params: BTreeMap<String, Value>,
    /// Logical sequence number (monotone per kernel; deterministic, unlike
    /// wall-clock time).
    pub seq: u64,
    /// Who ran it (data sharing needs attribution).
    pub user: String,
    /// Primitive / compound / interpolation.
    pub kind: TaskKind,
    /// Child tasks (compound expansion, §2.1.4).
    pub children: Vec<TaskId>,
}

impl Task {
    /// All input objects, flattened in argument order.
    pub fn all_inputs(&self) -> Vec<ObjectId> {
        self.inputs.values().flatten().copied().collect()
    }

    /// True if `obj` was produced by this task.
    pub fn produced(&self, obj: ObjectId) -> bool {
        self.outputs.contains(&obj)
    }

    /// A duplicate-detection key: same process + same inputs + same params
    /// ⇒ the same derivation (the experiment-management goal of avoiding
    /// "unnecessary duplication of experiments").
    ///
    /// Parameters are keyed by *content* (value-identity hash), not by
    /// display form — a `matrix(4x3)` of different coefficients is a
    /// different derivation (the paper's rule that different parameters
    /// mean different processes extends to interaction answers).
    pub fn dedup_key(&self) -> String {
        dedup_key_parts(self.process, &self.inputs, &self.params)
    }
}

/// The canonical derivation-identity key over explicit parts — the one
/// implementation behind [`Task::dedup_key`] and the kernel's
/// *prospective* firing keys (`kernel::query::dedup_key_for`), which
/// must agree byte for byte: a prospective key built from the params a
/// fresh firing *would* record (e.g. an external process's `site`)
/// matches the key of the task that firing then records.
pub fn dedup_key_parts(
    process: ProcessId,
    inputs: &BTreeMap<String, Vec<ObjectId>>,
    params: &BTreeMap<String, Value>,
) -> String {
    use std::hash::{Hash, Hasher};
    let mut key = format!("p{}", process.raw());
    for (arg, objs) in inputs {
        // `SETOF` bindings are sets, so the key sorts ids — the same
        // canonical form `DerivedCache::canonical_key` uses, keeping
        // every dedup layer's notion of derivation identity aligned.
        let mut ids: Vec<u64> = objs.iter().map(|o| o.raw()).collect();
        ids.sort_unstable();
        key.push_str(&format!(
            ";{arg}={}",
            ids.iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    for (k, v) in params {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        v.hash(&mut h);
        key.push_str(&format!(";{k}:{}:{:016x}", v.type_tag(), h.finish()));
    }
    key
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}(",
            self.id,
            match self.kind {
                TaskKind::Primitive => "prim",
                TaskKind::Compound => "comp",
                TaskKind::Interpolation => "interp",
                TaskKind::Interactive => "interact",
                TaskKind::External => "extern",
                TaskKind::Manual => "manual",
            },
            self.process_name
        )?;
        for (i, (arg, objs)) in self.inputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{arg}={{{}}}",
                objs.iter()
                    .map(|o| o.raw().to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            )?;
        }
        write!(
            f,
            ") -> {{{}}} by {}",
            self.outputs
                .iter()
                .map(|o| o.raw().to_string())
                .collect::<Vec<_>>()
                .join(","),
            self.user
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaea_store::Oid;

    fn task(seq: u64, in_ids: &[u64], out: u64) -> Task {
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "bands".to_string(),
            in_ids.iter().map(|i| ObjectId(Oid(*i))).collect(),
        );
        Task {
            id: TaskId(Oid(100 + seq)),
            process: ProcessId(Oid(7)),
            process_name: "P20".into(),
            inputs,
            input_versions: BTreeMap::new(),
            outputs: vec![ObjectId(Oid(out))],
            params: BTreeMap::new(),
            seq,
            user: "qiu".into(),
            kind: TaskKind::Primitive,
            children: vec![],
        }
    }

    #[test]
    fn flattened_inputs_and_produced() {
        let t = task(1, &[1, 2, 3], 9);
        assert_eq!(t.all_inputs().len(), 3);
        assert!(t.produced(ObjectId(Oid(9))));
        assert!(!t.produced(ObjectId(Oid(1))));
    }

    #[test]
    fn dedup_key_identity() {
        let a = task(1, &[1, 2, 3], 9);
        let b = task(2, &[1, 2, 3], 10); // same derivation, later run
        let c = task(3, &[1, 2, 4], 11); // different inputs
        assert_eq!(a.dedup_key(), b.dedup_key());
        assert_ne!(a.dedup_key(), c.dedup_key());
        // Parameters distinguish derivations too.
        let mut d = task(4, &[1, 2, 3], 12);
        d.params.insert("at".into(), Value::Int4(5));
        assert_ne!(a.dedup_key(), d.dedup_key());
    }

    #[test]
    fn display_is_informative() {
        let s = task(1, &[1, 2], 9).to_string();
        assert!(s.contains("P20"));
        assert!(s.contains("bands={1,2}"));
        assert!(s.contains("-> {9} by qiu"));
    }
}
