//! Interactive derivation sessions (paper §4.3 limitation 2).
//!
//! "There are many situations in global change analysis that require the
//! user to conduct the analysis process based on the intermediate result
//! [...] A typical example is supervised classification. This process
//! requires interaction with the scientist before a task completes the
//! derivation of the output land cover classification data. We have not
//! yet developed methods to express such interactions in a process."
//!
//! This module develops that method. A process may declare
//! [`InteractionPoint`]s; the template refers to the scientist's answers
//! as `PARAM name` expressions. Firing such a process goes through an
//! [`InteractiveSession`]:
//!
//! 1. `Gaea::begin_interactive` validates the input bindings and opens
//!    the session;
//! 2. for each pending point, `Gaea::interaction_preview` renders the
//!    "temporary result visualized on the screen" (an expression over the
//!    bound inputs and earlier answers) and
//!    [`InteractiveSession::supply`] records the scientist's answer;
//! 3. `Gaea::finish_interactive` checks assertions, evaluates the
//!    mappings with the answers bound, and records a task of kind
//!    [`TaskKind::Interactive`] whose `params` are the answers —
//!    so the interaction is *part of the derivation history* and the task
//!    replays faithfully without the scientist present.
//!
//! [`TaskKind::Interactive`]: crate::task::TaskKind::Interactive

use crate::error::{KernelError, KernelResult};
use crate::ids::ObjectId;
use crate::schema::{InteractionPoint, ProcessDef};
use gaea_adt::Value;
use std::collections::BTreeMap;

/// An in-flight interactive derivation.
///
/// The session owns a clone of the (immutable) process definition and the
/// chosen bindings; it does not borrow the kernel, so the scientist can
/// interleave queries and browsing while a session is open.
#[derive(Debug, Clone)]
pub struct InteractiveSession {
    pub(crate) def: ProcessDef,
    pub(crate) bindings: Vec<(String, Vec<ObjectId>)>,
    pub(crate) supplied: BTreeMap<String, Value>,
    pub(crate) next: usize,
}

impl InteractiveSession {
    pub(crate) fn new(
        def: ProcessDef,
        bindings: Vec<(String, Vec<ObjectId>)>,
    ) -> InteractiveSession {
        InteractiveSession {
            def,
            bindings,
            supplied: BTreeMap::new(),
            next: 0,
        }
    }

    /// The process being instantiated.
    pub fn process(&self) -> &ProcessDef {
        &self.def
    }

    /// The chosen input bindings.
    pub fn bindings(&self) -> &[(String, Vec<ObjectId>)] {
        &self.bindings
    }

    /// The interaction point awaiting an answer, if any.
    pub fn pending(&self) -> Option<&InteractionPoint> {
        self.def.interactions.get(self.next)
    }

    /// Number of answered interaction points.
    pub fn answered(&self) -> usize {
        self.next
    }

    /// Number of interaction points still awaiting answers.
    pub fn remaining(&self) -> usize {
        self.def.interactions.len() - self.next
    }

    /// True once every declared interaction has an answer.
    pub fn is_ready(&self) -> bool {
        self.next == self.def.interactions.len()
    }

    /// Answers supplied so far, by parameter name.
    pub fn supplied(&self) -> &BTreeMap<String, Value> {
        &self.supplied
    }

    /// Answer the pending interaction point. The value must match the
    /// point's declared type; points are answered in declaration order
    /// (later previews may depend on earlier answers).
    pub fn supply(&mut self, value: Value) -> KernelResult<()> {
        let point = self.pending().ok_or_else(|| {
            KernelError::Template(format!(
                "process {}: every interaction is already answered",
                self.def.name
            ))
        })?;
        if !point.expected.accepts(&value.type_tag()) {
            return Err(KernelError::Template(format!(
                "process {}: interaction {:?} expects {}, got {}",
                self.def.name,
                point.param,
                point.expected,
                value.type_tag()
            )));
        }
        self.supplied.insert(point.param.clone(), value);
        self.next += 1;
        Ok(())
    }

    /// Withdraw the most recent answer ("modification of input parameters
    /// based on some temporary result": the scientist may reconsider).
    pub fn retract(&mut self) -> Option<Value> {
        if self.next == 0 {
            return None;
        }
        self.next -= 1;
        let param = self.def.interactions[self.next].param.clone();
        self.supplied.remove(&param)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClassId, ProcessId};
    use crate::schema::{ProcessArg, ProcessKind};
    use crate::template::{Expr, Template};
    use gaea_adt::{Matrix, TypeTag};
    use gaea_store::Oid;

    fn interactive_def() -> ProcessDef {
        ProcessDef {
            id: ProcessId(Oid(1)),
            name: "P_super".into(),
            output: ClassId(Oid(3)),
            args: vec![ProcessArg::set("bands", ClassId(Oid(2)), 3)],
            template: Template::default(),
            kind: ProcessKind::Primitive,
            interactions: vec![
                InteractionPoint {
                    param: "signatures".into(),
                    prompt: "digitize training sites on the composite".into(),
                    preview: Some(Expr::apply("composite", vec![Expr::Arg("bands".into())])),
                    expected: TypeTag::Matrix,
                },
                InteractionPoint {
                    param: "confidence".into(),
                    prompt: "rate the training quality".into(),
                    preview: None,
                    expected: TypeTag::Float8,
                },
            ],
            cost: None,
            doc: String::new(),
        }
    }

    fn session() -> InteractiveSession {
        InteractiveSession::new(
            interactive_def(),
            vec![(
                "bands".into(),
                vec![ObjectId(Oid(10)), ObjectId(Oid(11)), ObjectId(Oid(12))],
            )],
        )
    }

    #[test]
    fn walks_points_in_order() {
        let mut s = session();
        assert_eq!(s.remaining(), 2);
        assert!(!s.is_ready());
        assert_eq!(s.pending().unwrap().param, "signatures");
        s.supply(Value::matrix(Matrix::zeros(2, 3))).unwrap();
        assert_eq!(s.pending().unwrap().param, "confidence");
        s.supply(Value::Float8(0.9)).unwrap();
        assert!(s.is_ready());
        assert!(s.pending().is_none());
        assert_eq!(s.supplied().len(), 2);
        // Supplying past the end errors.
        assert!(s.supply(Value::Int4(1)).is_err());
    }

    #[test]
    fn type_checks_answers() {
        let mut s = session();
        let err = s.supply(Value::Int4(5)).unwrap_err();
        assert!(err.to_string().contains("expects matrix"), "{err}");
        // Session state is unchanged after a rejected answer.
        assert_eq!(s.answered(), 0);
        assert_eq!(s.pending().unwrap().param, "signatures");
    }

    #[test]
    fn retract_reopens_the_last_point() {
        let mut s = session();
        assert!(s.retract().is_none());
        s.supply(Value::matrix(Matrix::zeros(2, 3))).unwrap();
        s.supply(Value::Float8(0.5)).unwrap();
        assert!(s.is_ready());
        let back = s.retract().unwrap();
        assert_eq!(back, Value::Float8(0.5));
        assert_eq!(s.pending().unwrap().param, "confidence");
        // Reconsidered answer replaces the old one.
        s.supply(Value::Float8(0.99)).unwrap();
        assert_eq!(s.supplied()["confidence"], Value::Float8(0.99));
    }
}
