//! The derivation executor: fires processes, creates objects, records tasks.
//!
//! Execution is atomic: a primitive firing validates bindings and checks
//! every assertion *before* materializing anything, so a failing guard or
//! template error leaves no partial objects behind; a compound firing
//! (expanded into its primitive steps, §2.1.4) compensates on a failing
//! step by undoing the objects and task records of the steps already run.
//! External processes (§5 extension) check their guard assertions locally,
//! then dispatch the loaded inputs to their registered site;
//! non-applicative processes and interactive processes refuse automatic
//! firing (the former are recorded via manual tasks, the latter driven
//! through interactive sessions).
//!
//! Every firing is staged as **prepare / commit**: [`prepare_firing`] is
//! read-only over the store and catalog (validate bindings, load inputs,
//! check guards, evaluate the template, fingerprint input versions) and
//! returns a [`PreparedFiring`]; [`apply_result`] materializes the
//! output object and the task record. [`run_process`] composes the two
//! back to back, so serial execution is one unchanged code path — and
//! the `gaea-sched` wave executor can run many prepares concurrently on
//! shared `&Database` / `&Catalog` borrows while only the cheap commits
//! serialize.

use crate::catalog::Catalog;
use crate::error::{KernelError, KernelResult};
use crate::external::{ExternalExecutor, ExternalInputs, ExternalRegistry};
use crate::ids::{ClassId, ObjectId, ProcessId, TaskId};
use crate::object::DataObject;
use crate::schema::{ClassDef, ProcessDef, ProcessKind, StepSource};
use crate::task::{Task, TaskKind};
use crate::template::{Binding, EvalContext, NO_PARAMS};
use gaea_adt::{OperatorRegistry, Value};
use gaea_store::{Database, Tuple};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Owned input bindings of one firing: argument name → chosen objects,
/// in declared argument order.
pub type Bindings = Vec<(String, Vec<ObjectId>)>;

/// Result of firing a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskRun {
    /// The recorded task.
    pub task: TaskId,
    /// Objects generated for the output class.
    pub outputs: Vec<ObjectId>,
}

/// A firing that has been computed but not yet committed: the output of
/// the read-only [`prepare_firing`] stage, consumed by [`apply_result`].
///
/// Everything expensive — input loading, guard checking, template (or
/// external-site) evaluation — already happened; what remains is the
/// store insert and the task record. Prepared firings are `Send`, so a
/// `gaea-sched` worker can compute one on a borrowed snapshot and hand
/// it to the committing thread.
#[derive(Debug, Clone)]
pub struct PreparedFiring {
    pub(crate) process: ProcessId,
    pub(crate) process_name: String,
    pub(crate) output_class: ClassId,
    pub(crate) bindings: Vec<(String, Vec<ObjectId>)>,
    pub(crate) attrs: BTreeMap<String, Value>,
    pub(crate) input_versions: BTreeMap<ObjectId, u64>,
    pub(crate) params: BTreeMap<String, Value>,
    pub(crate) kind: TaskKind,
}

impl PreparedFiring {
    /// The process this firing instantiates.
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// The chosen input bindings, in declared argument order.
    pub fn bindings(&self) -> &[(String, Vec<ObjectId>)] {
        &self.bindings
    }
}

/// Can [`prepare_firing`] stage this process definition? True for plain
/// primitives and external processes — the kinds whose evaluation is a
/// pure function of loaded inputs. Compounds expand into a step network
/// with intermediate materialization, and interactive / non-applicative
/// processes need a scientist, so they all fire through the serial path.
pub fn is_preparable(def: &ProcessDef) -> bool {
    match &def.kind {
        ProcessKind::Primitive => !def.is_interactive(),
        ProcessKind::External { .. } => true,
        ProcessKind::Compound(_) | ProcessKind::NonApplicative { .. } => false,
    }
}

/// Stage 1 of a firing — read-only: validate the bindings, load the
/// inputs, check every guard assertion, evaluate the template (or
/// dispatch to the external site), validate the computed output
/// attributes against the output class, and fingerprint the input
/// versions. Nothing in the store or catalog changes; concurrent
/// prepares over shared borrows are safe.
///
/// Only preparable processes ([`is_preparable`]) are accepted; compound,
/// interactive and non-applicative processes return
/// [`KernelError::NotAutoFirable`].
pub fn prepare_firing(
    db: &Database,
    catalog: &Catalog,
    registry: &OperatorRegistry,
    externals: &ExternalRegistry,
    pid: ProcessId,
    bindings: &[(String, Vec<ObjectId>)],
) -> KernelResult<PreparedFiring> {
    let def = catalog.process(pid)?;
    match &def.kind {
        ProcessKind::Primitive => {
            if def.is_interactive() {
                return Err(KernelError::NotAutoFirable {
                    process: def.name.clone(),
                    reason: format!(
                        "declares {} interaction point(s); drive it through an interactive session",
                        def.interactions.len()
                    ),
                });
            }
            prepare_primitive(
                db,
                catalog,
                registry,
                def,
                bindings,
                &NO_PARAMS,
                TaskKind::Primitive,
            )
        }
        ProcessKind::External { site } => {
            prepare_external(db, catalog, registry, externals, def, site, bindings)
        }
        ProcessKind::Compound(_) => Err(KernelError::NotAutoFirable {
            process: def.name.clone(),
            reason: "compound processes expand into a step network with intermediate \
                     materialization; fire them through the serial path"
                .into(),
        }),
        ProcessKind::NonApplicative { procedure } => Err(KernelError::NotAutoFirable {
            process: def.name.clone(),
            reason: format!("non-applicative procedure ({procedure}); record its tasks manually"),
        }),
    }
}

/// Stage 2 of a firing — the commit: materialize the prepared output
/// object and append the task record. This is the only part of a firing
/// that writes, and it is cheap (one insert, one task append); the wave
/// executor serializes exactly this.
pub fn apply_result(
    db: &mut Database,
    catalog: &mut Catalog,
    prepared: PreparedFiring,
    user: &str,
) -> KernelResult<TaskRun> {
    let out_class = catalog.class(prepared.output_class)?.clone();
    let obj = insert_object(db, catalog, &out_class, &prepared.attrs)?;
    let task_id = TaskId(db.allocate_oid());
    let seq = catalog.next_task_seq();
    let task = Task {
        id: task_id,
        process: prepared.process,
        process_name: prepared.process_name,
        inputs: prepared.bindings.into_iter().collect(),
        input_versions: prepared.input_versions,
        outputs: vec![obj],
        params: prepared.params,
        seq,
        user: user.into(),
        kind: prepared.kind,
        children: vec![],
    };
    catalog.add_task(task);
    Ok(TaskRun {
        task: task_id,
        outputs: vec![obj],
    })
}

/// A firing staged for *background* execution: everything that needs
/// the store, the catalog or the operator registry already happened on
/// the submitting thread; what remains is self-contained and `Send`, so
/// a detached job worker can run it with no borrow of the kernel at
/// all. Produced by [`stage_firing`], consumed by
/// [`StagedFiring::execute`] on the worker; the resulting
/// [`PreparedFiring`] then commits through the ordinary serialized path,
/// making a background firing's committed state identical to a
/// synchronous run's.
pub enum StagedFiring {
    /// A primitive firing: template evaluation is local and cheap, so it
    /// already ran at staging time — the job is born ready to commit.
    Ready(Box<PreparedFiring>),
    /// An external firing (§5): the guards ran locally at staging time;
    /// the remote round-trip — the part that takes minutes — is deferred
    /// to the worker.
    Remote(Box<StagedExternal>),
}

impl StagedFiring {
    /// Run the blocking tail of the firing (for [`StagedFiring::Remote`],
    /// the site round-trip plus output validation; for
    /// [`StagedFiring::Ready`], nothing). Everything needed is owned, so
    /// this is safe to call from any thread.
    pub fn execute(self) -> KernelResult<PreparedFiring> {
        match self {
            StagedFiring::Ready(prepared) => Ok(*prepared),
            StagedFiring::Remote(staged) => staged.execute(),
        }
    }
}

/// The deferred half of an external firing: the site handle, the loaded
/// inputs, and the cloned definitions the output validation needs. See
/// [`StagedFiring`].
pub struct StagedExternal {
    site: Arc<dyn ExternalExecutor>,
    site_name: String,
    def: ProcessDef,
    out_class: ClassDef,
    inputs: ExternalInputs,
    bindings: Bindings,
    /// Input versions are fingerprinted at *staging* time: the worker
    /// computes over the inputs as loaded then, so a mutation racing the
    /// round-trip correctly leaves the committed task classified stale.
    input_versions: BTreeMap<ObjectId, u64>,
}

impl StagedExternal {
    /// Ship the inputs to the site and assemble the prepared firing from
    /// its answer. Runs on the job worker; no kernel borrows.
    pub fn execute(self) -> KernelResult<PreparedFiring> {
        let attrs = self.site.execute(&self.def, &self.inputs)?;
        let mut params = BTreeMap::new();
        params.insert("site".to_string(), Value::Text(self.site_name));
        assemble_prepared(
            &self.def,
            &self.out_class,
            &self.bindings,
            attrs,
            self.input_versions,
            params,
            TaskKind::External,
        )
    }
}

/// Stage a firing for background execution: the read-only, kernel-bound
/// part of [`prepare_firing`] runs now (validate + load + guards, and
/// for primitives the whole template evaluation); what returns is
/// self-contained. Accepts the same process kinds as [`prepare_firing`]
/// and rejects the rest identically.
pub fn stage_firing(
    db: &Database,
    catalog: &Catalog,
    registry: &OperatorRegistry,
    externals: &ExternalRegistry,
    pid: ProcessId,
    bindings: &[(String, Vec<ObjectId>)],
) -> KernelResult<StagedFiring> {
    let def = catalog.process(pid)?;
    match &def.kind {
        ProcessKind::External { site } => Ok(StagedFiring::Remote(Box::new(stage_external(
            db, catalog, registry, externals, def, site, bindings,
        )?))),
        _ => prepare_firing(db, catalog, registry, externals, pid, bindings)
            .map(|p| StagedFiring::Ready(Box::new(p))),
    }
}

/// The MVCC fingerprint of a binding set: each distinct input object
/// paired with its current store version. Recorded on the task so later
/// reads can classify the derivation as current or stale with one integer
/// comparison per input.
pub(crate) fn input_versions_of(
    db: &Database,
    bindings: &[(String, Vec<ObjectId>)],
) -> BTreeMap<ObjectId, u64> {
    let mut out = BTreeMap::new();
    for (_, objs) in bindings {
        for o in objs {
            out.entry(*o).or_insert_with(|| db.object_version(o.0));
        }
    }
    out
}

/// Load a stored object into its attribute-map form. `Null` columns are
/// dropped (absent attributes).
pub fn load_object(db: &Database, catalog: &Catalog, oid: ObjectId) -> KernelResult<DataObject> {
    let class_id = catalog.class_of_object(oid)?;
    let class = catalog.class(class_id)?;
    let tuple = db.get(&class.relation_name(), oid.0)?;
    let names = class.attr_names();
    let mut attrs = BTreeMap::new();
    for (i, name) in names.iter().enumerate() {
        let v = tuple.get(i);
        if !v.is_null() {
            attrs.insert(name.clone(), v.clone());
        }
    }
    Ok(DataObject {
        id: oid,
        class: class_id,
        attrs,
    })
}

/// Shared write-path validation: unknown attribute names are rejected,
/// and reference attributes (§4.3 extension) must point at live objects
/// of the declared class. Returns the full tuple in schema column order,
/// with missing attributes as nulls.
fn validated_tuple(
    catalog: &Catalog,
    class: &ClassDef,
    attrs: &BTreeMap<String, Value>,
) -> KernelResult<Tuple> {
    let names = class.attr_names();
    for (key, value) in attrs {
        if !names.iter().any(|n| n == key) {
            return Err(KernelError::Schema(format!(
                "class {} has no attribute {key:?}",
                class.name
            )));
        }
        let def = class.attr(key).expect("checked against attr_names");
        if let Some(target_class) = def.ref_class {
            if value.is_null() {
                continue;
            }
            let oid = value.as_objref().ok_or_else(|| {
                KernelError::Schema(format!(
                    "class {}: attribute {key:?} is a reference, got {value}",
                    class.name
                ))
            })?;
            let actual = catalog.class_of_object(ObjectId(gaea_store::Oid(oid)))?;
            if actual != target_class {
                return Err(KernelError::Schema(format!(
                    "class {}: attribute {key:?} must reference class {}, object {oid} is of class {}",
                    class.name,
                    catalog.class(target_class)?.name,
                    catalog.class(actual)?.name
                )));
            }
        }
    }
    let values: Vec<Value> = names
        .iter()
        .map(|n| attrs.get(n).cloned().unwrap_or(Value::Null))
        .collect();
    Ok(Tuple::new(values))
}

/// Insert an object of `class` from an attribute map; unknown attribute
/// names are rejected, missing ones stored as nulls. Reference attributes
/// (§4.3 extension) are checked to point at live objects of the declared
/// class.
pub fn insert_object(
    db: &mut Database,
    catalog: &mut Catalog,
    class: &ClassDef,
    attrs: &BTreeMap<String, Value>,
) -> KernelResult<ObjectId> {
    let tuple = validated_tuple(catalog, class, attrs)?;
    let oid = db.insert(&class.relation_name(), tuple)?;
    let obj = ObjectId(oid);
    catalog.object_class.insert(obj, class.id);
    Ok(obj)
}

/// Overwrite a stored object's tuple from a full attribute map, with the
/// same unknown-attribute and reference checks as [`insert_object`]. The
/// object keeps its oid and class; callers own cache invalidation.
pub fn update_object(
    db: &mut Database,
    catalog: &Catalog,
    class: &ClassDef,
    oid: ObjectId,
    attrs: &BTreeMap<String, Value>,
) -> KernelResult<()> {
    let tuple = validated_tuple(catalog, class, attrs)?;
    db.update(&class.relation_name(), oid.0, tuple)?;
    Ok(())
}

/// Fire a process on explicit object bindings, recording the task.
///
/// `bindings` pairs argument names with the chosen input objects, in the
/// process's declared argument order (extra/missing arguments are errors).
/// Interactive and non-applicative processes refuse automatic firing —
/// they are driven through `Gaea::begin_interactive` and
/// `Gaea::record_manual_task` respectively.
pub fn run_process(
    db: &mut Database,
    catalog: &mut Catalog,
    registry: &OperatorRegistry,
    externals: &ExternalRegistry,
    pid: ProcessId,
    bindings: &[(String, Vec<ObjectId>)],
    user: &str,
) -> KernelResult<TaskRun> {
    let def = catalog.process(pid)?.clone();
    match &def.kind {
        ProcessKind::Primitive => {
            if def.is_interactive() {
                return Err(KernelError::NotAutoFirable {
                    process: def.name.clone(),
                    reason: format!(
                        "declares {} interaction point(s); drive it through an interactive session",
                        def.interactions.len()
                    ),
                });
            }
            run_primitive(
                db,
                catalog,
                registry,
                &def,
                bindings,
                user,
                &NO_PARAMS,
                TaskKind::Primitive,
            )
        }
        ProcessKind::Compound(_) => {
            run_compound(db, catalog, registry, externals, &def, bindings, user)
        }
        ProcessKind::External { site } => {
            run_external(db, catalog, registry, externals, &def, site, bindings, user)
        }
        ProcessKind::NonApplicative { procedure } => Err(KernelError::NotAutoFirable {
            process: def.name.clone(),
            reason: format!("non-applicative procedure ({procedure}); record its tasks manually"),
        }),
    }
}

pub(crate) fn validate_bindings(
    catalog: &Catalog,
    def: &crate::schema::ProcessDef,
    bindings: &[(String, Vec<ObjectId>)],
) -> KernelResult<()> {
    if bindings.len() != def.args.len() {
        return Err(KernelError::Template(format!(
            "process {} takes {} argument(s), got {}",
            def.name,
            def.args.len(),
            bindings.len()
        )));
    }
    for (arg, (bname, objs)) in def.args.iter().zip(bindings) {
        if &arg.name != bname {
            return Err(KernelError::Template(format!(
                "process {}: expected argument {:?} at this position, got {:?}",
                def.name, arg.name, bname
            )));
        }
        if arg.setof {
            if (objs.len() as u64) < arg.min_card {
                return Err(KernelError::Template(format!(
                    "process {}: SETOF argument {:?} needs at least {} object(s), got {}",
                    def.name,
                    arg.name,
                    arg.min_card,
                    objs.len()
                )));
            }
        } else if objs.len() != 1 {
            return Err(KernelError::Template(format!(
                "process {}: scalar argument {:?} needs exactly 1 object, got {}",
                def.name,
                arg.name,
                objs.len()
            )));
        }
        for o in objs {
            let actual = catalog.class_of_object(*o)?;
            if actual != arg.class {
                let expected = catalog.class(arg.class)?.name.clone();
                let got = catalog.class(actual)?.name.clone();
                return Err(KernelError::Template(format!(
                    "process {}: argument {:?} expects class {expected}, object {} is of class {got}",
                    def.name, arg.name, o
                )));
            }
        }
    }
    Ok(())
}

/// Load the declared bindings into template form.
pub(crate) fn load_bindings(
    db: &Database,
    catalog: &Catalog,
    def: &ProcessDef,
    bindings: &[(String, Vec<ObjectId>)],
) -> KernelResult<BTreeMap<String, Binding>> {
    let mut bound: BTreeMap<String, Binding> = BTreeMap::new();
    for (arg, (name, objs)) in def.args.iter().zip(bindings) {
        let loaded: KernelResult<Vec<DataObject>> =
            objs.iter().map(|o| load_object(db, catalog, *o)).collect();
        let loaded = loaded?;
        bound.insert(
            name.clone(),
            if arg.setof {
                Binding::Many(loaded)
            } else {
                Binding::One(loaded.into_iter().next().expect("validated arity"))
            },
        );
    }
    Ok(bound)
}

/// Bind-stage admission check, read-only and cheap relative to a full
/// prepare: validate the bindings and evaluate the template's guard
/// assertions over the loaded inputs — nothing else. The query
/// mechanism's parallel fire stage uses this to *choose* bindings
/// serially (guards decide admissibility) before the expensive mapping
/// evaluation fans out to workers.
pub(crate) fn check_guards(
    db: &Database,
    catalog: &Catalog,
    registry: &OperatorRegistry,
    def: &ProcessDef,
    bindings: &[(String, Vec<ObjectId>)],
) -> KernelResult<()> {
    validate_bindings(catalog, def, bindings)?;
    let bound = load_bindings(db, catalog, def, bindings)?;
    let ctx = EvalContext {
        bindings: &bound,
        registry,
        params: &NO_PARAMS,
    };
    ctx.check_assertions(&def.name, &def.template)
}

/// Validate computed output attributes against the output class and
/// assemble the [`PreparedFiring`]. Takes the output class and input
/// fingerprint by value/reference rather than looking them up, so the
/// catalog-free tail of a staged external firing can call it from a job
/// worker.
fn assemble_prepared(
    def: &ProcessDef,
    out_class: &ClassDef,
    bindings: &[(String, Vec<ObjectId>)],
    attrs: BTreeMap<String, Value>,
    input_versions: BTreeMap<ObjectId, u64>,
    params: BTreeMap<String, Value>,
    kind: TaskKind,
) -> KernelResult<PreparedFiring> {
    for key in attrs.keys() {
        if out_class.attr(key).is_none() {
            return Err(KernelError::Schema(format!(
                "process {}: mapping writes {key:?} which class {} does not declare",
                def.name, out_class.name
            )));
        }
    }
    Ok(PreparedFiring {
        process: def.id,
        process_name: def.name.clone(),
        output_class: def.output,
        bindings: bindings.to_vec(),
        attrs,
        input_versions,
        params,
        kind,
    })
}

/// [`assemble_prepared`] with the output class resolved from the catalog
/// and the input fingerprint taken now, at prepare time: a firing never
/// mutates its own inputs, and commits of *other* firings only bump
/// versions of objects they create, so the fingerprint is identical
/// whether the commit happens immediately (serial mode) or after the
/// rest of a wave prepared.
fn finish_prepared(
    db: &Database,
    catalog: &Catalog,
    def: &ProcessDef,
    bindings: &[(String, Vec<ObjectId>)],
    attrs: BTreeMap<String, Value>,
    params: BTreeMap<String, Value>,
    kind: TaskKind,
) -> KernelResult<PreparedFiring> {
    assemble_prepared(
        def,
        catalog.class(def.output)?,
        bindings,
        attrs,
        input_versions_of(db, bindings),
        params,
        kind,
    )
}

/// Prepare a primitive process's template evaluation. `params` carries
/// the scientist's interaction answers (empty for plain primitives);
/// `kind` distinguishes plain from interactive firings on the recorded
/// task.
pub(crate) fn prepare_primitive(
    db: &Database,
    catalog: &Catalog,
    registry: &OperatorRegistry,
    def: &ProcessDef,
    bindings: &[(String, Vec<ObjectId>)],
    params: &BTreeMap<String, Value>,
    kind: TaskKind,
) -> KernelResult<PreparedFiring> {
    validate_bindings(catalog, def, bindings)?;
    let bound = load_bindings(db, catalog, def, bindings)?;
    // Evaluate the template (guards first — Figure 3's assertions).
    let ctx = EvalContext {
        bindings: &bound,
        registry,
        params,
    };
    ctx.check_assertions(&def.name, &def.template)?;
    let attrs = ctx.eval_mappings(&def.template)?;
    finish_prepared(db, catalog, def, bindings, attrs, params.clone(), kind)
}

/// Fire a primitive process's template: prepare + commit, back to back.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_primitive(
    db: &mut Database,
    catalog: &mut Catalog,
    registry: &OperatorRegistry,
    def: &ProcessDef,
    bindings: &[(String, Vec<ObjectId>)],
    user: &str,
    params: &BTreeMap<String, Value>,
    kind: TaskKind,
) -> KernelResult<TaskRun> {
    let prepared = prepare_primitive(db, catalog, registry, def, bindings, params, kind)?;
    apply_result(db, catalog, prepared, user)
}

/// Stage an external firing (§5 extension): validate, load, check the
/// guards — "guard rules are metadata constraints on the inputs; they
/// are always evaluated locally, before anything is shipped" — resolve
/// the site, and package the round-trip for whoever executes it (the
/// caller, inline, for a synchronous firing; a job worker for an
/// asynchronous one). The site must be reachable *now*; a site that
/// goes down between staging and execution fails the execution instead.
#[allow(clippy::too_many_arguments)]
fn stage_external(
    db: &Database,
    catalog: &Catalog,
    registry: &OperatorRegistry,
    externals: &ExternalRegistry,
    def: &ProcessDef,
    site_name: &str,
    bindings: &[(String, Vec<ObjectId>)],
) -> KernelResult<StagedExternal> {
    validate_bindings(catalog, def, bindings)?;
    let bound = load_bindings(db, catalog, def, bindings)?;
    let ctx = EvalContext {
        bindings: &bound,
        registry,
        params: &NO_PARAMS,
    };
    ctx.check_assertions(&def.name, &def.template)?;
    let site = externals
        .reachable_site(site_name)
        .ok_or_else(|| KernelError::SiteUnavailable {
            site: site_name.to_string(),
            process: def.name.clone(),
        })?
        .clone();
    let mut inputs: ExternalInputs = BTreeMap::new();
    for (name, binding) in &bound {
        inputs.insert(
            name.clone(),
            binding.objects().into_iter().cloned().collect(),
        );
    }
    Ok(StagedExternal {
        site,
        site_name: site_name.to_string(),
        def: def.clone(),
        out_class: catalog.class(def.output)?.clone(),
        inputs,
        bindings: bindings.to_vec(),
        input_versions: input_versions_of(db, bindings),
    })
}

/// Prepare an external firing: local guards, remote mapping. The site
/// round-trip happens here, in the read-only stage, so remote latency
/// parallelizes across a wave like local template evaluation does —
/// stage ∘ execute, the same two halves a background job runs on
/// different threads.
fn prepare_external(
    db: &Database,
    catalog: &Catalog,
    registry: &OperatorRegistry,
    externals: &ExternalRegistry,
    def: &ProcessDef,
    site_name: &str,
    bindings: &[(String, Vec<ObjectId>)],
) -> KernelResult<PreparedFiring> {
    stage_external(db, catalog, registry, externals, def, site_name, bindings)?.execute()
}

/// Fire an external process: prepare (incl. the site round-trip) + commit.
#[allow(clippy::too_many_arguments)]
fn run_external(
    db: &mut Database,
    catalog: &mut Catalog,
    registry: &OperatorRegistry,
    externals: &ExternalRegistry,
    def: &ProcessDef,
    site_name: &str,
    bindings: &[(String, Vec<ObjectId>)],
    user: &str,
) -> KernelResult<TaskRun> {
    let prepared = prepare_external(db, catalog, registry, externals, def, site_name, bindings)?;
    apply_result(db, catalog, prepared, user)
}

/// Undo a recorded task: delete its output objects and drop the record
/// (children first — compound steps may themselves be compounds). Used to
/// keep compound execution atomic when a later step fails.
fn undo_task(db: &mut Database, catalog: &mut Catalog, task_id: TaskId) {
    let Some(task) = catalog.remove_task(task_id) else {
        return;
    };
    for child in &task.children {
        undo_task(db, catalog, *child);
    }
    for out in &task.outputs {
        if let Some(class_id) = catalog.object_class.remove(out) {
            if let Ok(class) = catalog.class(class_id) {
                let rel = class.relation_name();
                let _ = db.delete(&rel, out.0);
            }
        }
    }
}

fn run_compound(
    db: &mut Database,
    catalog: &mut Catalog,
    registry: &OperatorRegistry,
    externals: &ExternalRegistry,
    def: &crate::schema::ProcessDef,
    bindings: &[(String, Vec<ObjectId>)],
    user: &str,
) -> KernelResult<TaskRun> {
    validate_bindings(catalog, def, bindings)?;
    let steps = def.steps().expect("compound kind").to_vec();
    let mut step_outputs: Vec<Vec<ObjectId>> = Vec::with_capacity(steps.len());
    let mut children: Vec<TaskId> = Vec::with_capacity(steps.len());
    // A failing step must not leave earlier steps' objects/tasks behind:
    // compound firing is atomic (a compound is "merely an abstraction" —
    // its observable effect is the whole network's effect or nothing).
    let undo_all = |db: &mut Database, catalog: &mut Catalog, children: &[TaskId]| {
        for t in children.iter().rev() {
            undo_task(db, catalog, *t);
        }
    };
    for (i, step) in steps.iter().enumerate() {
        let child_def = match catalog.process(step.process) {
            Ok(d) => d.clone(),
            Err(e) => {
                undo_all(db, catalog, &children);
                return Err(e);
            }
        };
        if step.inputs.len() != child_def.args.len() {
            undo_all(db, catalog, &children);
            return Err(KernelError::Schema(format!(
                "compound {}: step {i} wires {} input(s) into {} which takes {}",
                def.name,
                step.inputs.len(),
                child_def.name,
                child_def.args.len()
            )));
        }
        let mut child_bindings: Vec<(String, Vec<ObjectId>)> = Vec::new();
        for (arg, src) in child_def.args.iter().zip(&step.inputs) {
            let objs = match src {
                StepSource::OuterArg(k) => match bindings.get(*k) {
                    Some(b) => b.1.clone(),
                    None => {
                        undo_all(db, catalog, &children);
                        return Err(KernelError::Schema(format!(
                            "compound {}: step {i} references outer arg {k} of {}",
                            def.name,
                            bindings.len()
                        )));
                    }
                },
                StepSource::StepOutput(k) => {
                    if *k >= i {
                        undo_all(db, catalog, &children);
                        return Err(KernelError::Schema(format!(
                            "compound {}: step {i} references later/own step {k}",
                            def.name
                        )));
                    }
                    step_outputs[*k].clone()
                }
            };
            child_bindings.push((arg.name.clone(), objs));
        }
        let run = match run_process(
            db,
            catalog,
            registry,
            externals,
            step.process,
            &child_bindings,
            user,
        ) {
            Ok(run) => run,
            Err(e) => {
                undo_all(db, catalog, &children);
                return Err(e);
            }
        };
        children.push(run.task);
        step_outputs.push(run.outputs);
    }
    let outputs = step_outputs.last().cloned().unwrap_or_default();
    let task_id = TaskId(db.allocate_oid());
    let seq = catalog.next_task_seq();
    catalog.add_task(Task {
        id: task_id,
        process: def.id,
        process_name: def.name.clone(),
        inputs: bindings
            .iter()
            .map(|(n, objs)| (n.clone(), objs.clone()))
            .collect(),
        input_versions: input_versions_of(db, bindings),
        outputs: outputs.clone(),
        params: BTreeMap::new(),
        seq,
        user: user.into(),
        kind: TaskKind::Compound,
        children,
    });
    Ok(TaskRun {
        task: task_id,
        outputs,
    })
}
