//! The derivation manager: catalog→Petri-net mapping, planning, execution.

pub mod executor;
pub mod net;

pub use executor::{run_process, TaskRun};
pub use net::DerivationNet;
