//! Mapping the catalog onto a derivation diagram (paper §2.1.6).
//!
//! "Every non-primitive class [...] corresponds to a place in a PN, and
//! every process corresponds to a transition."
//!
//! Only *primitive* processes become transitions: "a compound process
//! cannot be directly applied, but must be expanded into its primitive
//! processes before actual derivation takes place" (§2.1.4) — so the net,
//! which drives actual derivation, sees the expanded world.

use crate::catalog::Catalog;
use crate::ids::{ClassId, ProcessId};
use gaea_petri::{Marking, PetriNet, PlaceId, TransitionId};
use std::collections::BTreeMap;

/// A catalog-derived Petri net plus the id translation maps.
#[derive(Debug, Clone)]
pub struct DerivationNet {
    /// The structural net.
    pub net: PetriNet,
    /// Class → place.
    pub place_of: BTreeMap<ClassId, PlaceId>,
    /// Place → class.
    pub class_of: BTreeMap<usize, ClassId>,
    /// Primitive process → transition.
    pub transition_of: BTreeMap<ProcessId, TransitionId>,
    /// Transition → primitive process.
    pub process_of: BTreeMap<usize, ProcessId>,
}

impl DerivationNet {
    /// Build the full derivation diagram from the current catalog: every
    /// non-compound process becomes a transition (external, interactive and
    /// non-applicative processes *are* derivation relationships and belong
    /// in the browsable diagram).
    pub fn build(catalog: &Catalog) -> DerivationNet {
        DerivationNet::build_filtered(catalog, |_| true)
    }

    /// Build the diagram with only the non-compound processes accepted by
    /// `include`. The query planner uses this to restrict itself to
    /// *auto-firable* processes (plain primitives and externals whose site
    /// is reachable); interactive and non-applicative processes need a
    /// scientist, so automatic derivation must not plan through them.
    pub fn build_filtered(
        catalog: &Catalog,
        include: impl Fn(&crate::schema::ProcessDef) -> bool,
    ) -> DerivationNet {
        let mut net = PetriNet::new();
        let mut place_of = BTreeMap::new();
        let mut class_of = BTreeMap::new();
        for (id, def) in &catalog.classes {
            let p = if def.is_derived() {
                net.add_place(&def.name)
            } else {
                net.add_base_place(&def.name)
            };
            place_of.insert(*id, p);
            class_of.insert(p.0, *id);
        }
        let mut transition_of = BTreeMap::new();
        let mut process_of = BTreeMap::new();
        for (id, def) in &catalog.processes {
            if def.is_compound() || !include(def) {
                continue;
            }
            // Several args over the same class accumulate their thresholds
            // on one input arc.
            let mut needs: BTreeMap<ClassId, u64> = BTreeMap::new();
            for arg in &def.args {
                *needs.entry(arg.class).or_insert(0) += arg.min_card;
            }
            let inputs: Vec<(PlaceId, u64)> =
                needs.iter().map(|(c, n)| (place_of[c], *n)).collect();
            let outputs = vec![place_of[&def.output]];
            let t = net
                .add_transition(&def.name, &inputs, &outputs)
                .expect("catalog validation guarantees well-formed transitions");
            transition_of.insert(*id, t);
            process_of.insert(t.0, *id);
        }
        DerivationNet {
            net,
            place_of,
            class_of,
            transition_of,
            process_of,
        }
    }

    /// Marking from per-class stored-object counts.
    pub fn marking(&self, counts: &BTreeMap<ClassId, u64>) -> Marking {
        let pairs: Vec<(PlaceId, u64)> = counts
            .iter()
            .filter_map(|(c, n)| self.place_of.get(c).map(|p| (*p, *n)))
            .collect();
        Marking::from_counts(&self.net, &pairs)
    }

    /// Class of a place, for translating planner output back to catalog
    /// terms.
    pub fn class_at(&self, p: PlaceId) -> Option<ClassId> {
        self.class_of.get(&p.0).copied()
    }

    /// Process of a transition.
    pub fn process_at(&self, t: TransitionId) -> Option<ProcessId> {
        self.process_of.get(&t.0).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClassId, ProcessId};
    use crate::schema::{AttrDef, ClassDef, ClassKind, ProcessArg, ProcessDef, ProcessKind};
    use crate::template::Template;
    use gaea_adt::TypeTag;
    use gaea_store::Oid;

    fn catalog() -> Catalog {
        let mut cat = Catalog::default();
        for (id, name, kind) in [
            (1u64, "tm", ClassKind::Base),
            (2, "landcover", ClassKind::Derived),
            (3, "change", ClassKind::Derived),
        ] {
            cat.add_class(ClassDef {
                id: ClassId(Oid(id)),
                name: name.into(),
                kind,
                attrs: vec![AttrDef::new("data", TypeTag::Image)],
                has_spatial: true,
                has_temporal: true,
                derived_by: vec![],
                doc: String::new(),
            })
            .unwrap();
        }
        cat.add_process(ProcessDef {
            id: ProcessId(Oid(10)),
            name: "P20".into(),
            output: ClassId(Oid(2)),
            args: vec![ProcessArg::set("bands", ClassId(Oid(1)), 3)],
            template: Template::default(),
            kind: ProcessKind::Primitive,
            interactions: vec![],
            cost: None,
            doc: String::new(),
        })
        .unwrap();
        // Change detection takes two landcover snapshots.
        cat.add_process(ProcessDef {
            id: ProcessId(Oid(11)),
            name: "P_change".into(),
            output: ClassId(Oid(3)),
            args: vec![
                ProcessArg::one("earlier", ClassId(Oid(2))),
                ProcessArg::one("later", ClassId(Oid(2))),
            ],
            template: Template::default(),
            kind: ProcessKind::Primitive,
            interactions: vec![],
            cost: None,
            doc: String::new(),
        })
        .unwrap();
        // A compound wrapper, which must NOT become a transition.
        cat.add_process(ProcessDef {
            id: ProcessId(Oid(12)),
            name: "land_change_detection".into(),
            output: ClassId(Oid(3)),
            args: vec![ProcessArg::set("scenes", ClassId(Oid(1)), 6)],
            template: Template::default(),
            kind: ProcessKind::Compound(vec![]),
            interactions: vec![],
            cost: None,
            doc: String::new(),
        })
        .unwrap();
        cat
    }

    #[test]
    fn classes_become_places_processes_transitions() {
        let cat = catalog();
        let dn = DerivationNet::build(&cat);
        assert_eq!(dn.net.place_count(), 3);
        // Compound excluded.
        assert_eq!(dn.net.transition_count(), 2);
        let tm_place = dn.place_of[&ClassId(Oid(1))];
        assert!(dn.net.place(tm_place).unwrap().is_base);
        assert_eq!(dn.class_at(tm_place), Some(ClassId(Oid(1))));
        let p20_t = dn.transition_of[&ProcessId(Oid(10))];
        assert_eq!(dn.process_at(p20_t), Some(ProcessId(Oid(10))));
        assert!(!dn.transition_of.contains_key(&ProcessId(Oid(12))));
    }

    #[test]
    fn same_class_args_accumulate_thresholds() {
        let cat = catalog();
        let dn = DerivationNet::build(&cat);
        let t = dn.transition_of[&ProcessId(Oid(11))];
        let tr = dn.net.transition(t).unwrap();
        assert_eq!(tr.inputs.len(), 1, "both args on the landcover place");
        assert_eq!(tr.inputs[0].threshold, 2);
    }

    #[test]
    fn marking_from_counts() {
        let cat = catalog();
        let dn = DerivationNet::build(&cat);
        let mut counts = BTreeMap::new();
        counts.insert(ClassId(Oid(1)), 5u64);
        counts.insert(ClassId(Oid(2)), 1u64);
        let m = dn.marking(&counts);
        assert_eq!(m.get(dn.place_of[&ClassId(Oid(1))]), 5);
        assert_eq!(m.get(dn.place_of[&ClassId(Oid(2))]), 1);
        assert_eq!(m.get(dn.place_of[&ClassId(Oid(3))]), 0);
    }
}
