//! Non-local processes (paper §5 future work).
//!
//! "Data derivation is currently captured as a mapping which is composed
//! of operators which can be applied locally. The need to deal with
//! processes that are not locally available will be essential in the
//! future."
//!
//! An [`ExternalExecutor`] stands for a remote site that can realize the
//! mapping of a [`ProcessKind::External`] process. The kernel keeps a
//! [`ExternalRegistry`] of reachable sites; firing an external process
//! checks the guard assertions *locally* (constraints on the inputs are
//! metadata, not computation) and then dispatches the loaded inputs to the
//! site. The resulting attribute values are validated against the output
//! class and recorded exactly like a local derivation — lineage does not
//! care where the computation ran, only *that* it is on record.
//!
//! [`SimulatedSite`] is the test/benchmark stand-in for a real service:
//! a function-backed site with a reachability toggle for failure
//! injection (a site that is registered but currently down).
//!
//! [`ProcessKind::External`]: crate::schema::ProcessKind::External

use crate::error::{KernelError, KernelResult};
use crate::object::DataObject;
use crate::schema::ProcessDef;
use gaea_adt::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Inputs shipped to a site: loaded objects per argument name.
pub type ExternalInputs = BTreeMap<String, Vec<DataObject>>;

/// A remote execution site for external processes.
pub trait ExternalExecutor: Send + Sync {
    /// Execute the process's mapping on the given inputs, returning the
    /// output object's attribute values.
    fn execute(
        &self,
        def: &ProcessDef,
        inputs: &ExternalInputs,
    ) -> KernelResult<BTreeMap<String, Value>>;

    /// True if the site is currently reachable. Unreachable sites make
    /// firing fail with [`KernelError::SiteUnavailable`] without losing
    /// the registration.
    fn reachable(&self) -> bool {
        true
    }
}

/// The kernel's registry of known sites.
#[derive(Default, Clone)]
pub struct ExternalRegistry {
    sites: BTreeMap<String, Arc<dyn ExternalExecutor>>,
}

impl ExternalRegistry {
    /// Empty registry.
    pub fn new() -> ExternalRegistry {
        ExternalRegistry::default()
    }

    /// Register (or replace) a site. Unlike processes, sites are *not*
    /// immutable catalog entities — they describe the current environment,
    /// which changes as services come and go.
    pub fn register(&mut self, name: &str, site: Arc<dyn ExternalExecutor>) {
        self.sites.insert(name.to_string(), site);
    }

    /// Remove a site.
    pub fn unregister(&mut self, name: &str) -> bool {
        self.sites.remove(name).is_some()
    }

    /// Look up a site.
    pub fn site(&self, name: &str) -> Option<&Arc<dyn ExternalExecutor>> {
        self.sites.get(name)
    }

    /// A site that is both registered and currently reachable.
    pub fn reachable_site(&self, name: &str) -> Option<&Arc<dyn ExternalExecutor>> {
        self.sites.get(name).filter(|s| s.reachable())
    }

    /// Registered site names.
    pub fn names(&self) -> Vec<&str> {
        self.sites.keys().map(String::as_str).collect()
    }
}

impl fmt::Debug for ExternalRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExternalRegistry")
            .field("sites", &self.names())
            .finish()
    }
}

/// Function signature backing a [`SimulatedSite`].
pub type SiteFn =
    dyn Fn(&ProcessDef, &ExternalInputs) -> KernelResult<BTreeMap<String, Value>> + Send + Sync;

/// A simulated remote site: a named function plus a reachability switch
/// and an injectable latency.
///
/// This is the substitution for the paper's envisioned remote services
/// (which did not exist in 1993 either): it exercises the identical kernel
/// code path — local guard checking, input shipping, output validation,
/// task recording — with the network replaced by a function call. The
/// latency knob ([`SimulatedSite::with_latency`]) stands in for the
/// round-trip a real §5 site would cost, so tests and benchmarks can
/// drive the asynchronous job machinery against realistically slow
/// executions without a network.
pub struct SimulatedSite {
    name: String,
    up: AtomicBool,
    /// Simulated round-trip time in milliseconds, slept before the body
    /// runs on every execution.
    latency_ms: AtomicU64,
    body: Box<SiteFn>,
}

impl SimulatedSite {
    /// Build a site from a function.
    pub fn new(
        name: &str,
        body: impl Fn(&ProcessDef, &ExternalInputs) -> KernelResult<BTreeMap<String, Value>>
            + Send
            + Sync
            + 'static,
    ) -> SimulatedSite {
        SimulatedSite {
            name: name.into(),
            up: AtomicBool::new(true),
            latency_ms: AtomicU64::new(0),
            body: Box::new(body),
        }
    }

    /// Site name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Toggle reachability (failure injection).
    pub fn set_reachable(&self, up: bool) {
        self.up.store(up, Ordering::SeqCst);
    }

    /// Builder form of [`SimulatedSite::set_latency`].
    pub fn with_latency(self, round_trip: std::time::Duration) -> SimulatedSite {
        self.set_latency(round_trip);
        self
    }

    /// Simulate a remote round-trip: every execution sleeps this long
    /// before the body runs (millisecond granularity). The sleep happens
    /// on whatever thread executes the firing — a background job worker
    /// under `Gaea::submit_derivation`, the caller under a synchronous
    /// firing — which is exactly the contrast the async-jobs tests and
    /// the `q9_async` benchmark measure.
    pub fn set_latency(&self, round_trip: std::time::Duration) {
        self.latency_ms
            .store(round_trip.as_millis() as u64, Ordering::SeqCst);
    }
}

impl ExternalExecutor for SimulatedSite {
    fn execute(
        &self,
        def: &ProcessDef,
        inputs: &ExternalInputs,
    ) -> KernelResult<BTreeMap<String, Value>> {
        if !self.reachable() {
            return Err(KernelError::SiteUnavailable {
                site: self.name.clone(),
                process: def.name.clone(),
            });
        }
        let ms = self.latency_ms.load(Ordering::SeqCst);
        if ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        (self.body)(def, inputs)
    }

    fn reachable(&self) -> bool {
        self.up.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClassId, ProcessId};
    use crate::schema::ProcessKind;
    use crate::template::Template;
    use gaea_store::Oid;

    fn external_def(site: &str) -> ProcessDef {
        ProcessDef {
            id: ProcessId(Oid(1)),
            name: "remote_ndvi".into(),
            output: ClassId(Oid(2)),
            args: vec![],
            template: Template::default(),
            kind: ProcessKind::External { site: site.into() },
            interactions: vec![],
            cost: None,
            doc: String::new(),
        }
    }

    fn const_site() -> Arc<SimulatedSite> {
        Arc::new(SimulatedSite::new("nasa_eos", |_, _| {
            let mut out = BTreeMap::new();
            out.insert("numclass".to_string(), Value::Int4(7));
            Ok(out)
        }))
    }

    #[test]
    fn registry_register_lookup_unregister() {
        let mut reg = ExternalRegistry::new();
        assert!(reg.site("nasa_eos").is_none());
        reg.register("nasa_eos", const_site());
        assert!(reg.site("nasa_eos").is_some());
        assert_eq!(reg.names(), vec!["nasa_eos"]);
        assert!(reg.unregister("nasa_eos"));
        assert!(!reg.unregister("nasa_eos"));
        assert!(reg.site("nasa_eos").is_none());
    }

    #[test]
    fn simulated_site_executes_and_injects_failure() {
        let site = const_site();
        let def = external_def("nasa_eos");
        let out = site.execute(&def, &BTreeMap::new()).unwrap();
        assert_eq!(out["numclass"], Value::Int4(7));
        // Down site refuses with the process + site named.
        site.set_reachable(false);
        assert!(!site.reachable());
        let err = site.execute(&def, &BTreeMap::new()).unwrap_err();
        match err {
            KernelError::SiteUnavailable { site, process } => {
                assert_eq!(site, "nasa_eos");
                assert_eq!(process, "remote_ndvi");
            }
            other => panic!("unexpected {other}"),
        }
        // Reachable again after the outage.
        site.set_reachable(true);
        assert!(site.execute(&def, &BTreeMap::new()).is_ok());
    }

    #[test]
    fn latency_is_injectable_and_adjustable() {
        let site = const_site();
        let def = external_def("nasa_eos");
        site.set_latency(std::time::Duration::from_millis(30));
        let start = std::time::Instant::now();
        site.execute(&def, &BTreeMap::new()).unwrap();
        assert!(
            start.elapsed() >= std::time::Duration::from_millis(30),
            "latency sleep must precede the body"
        );
        site.set_latency(std::time::Duration::ZERO);
        assert!(site.execute(&def, &BTreeMap::new()).is_ok());
        // Builder form composes.
        let slow = SimulatedSite::new("x", |_, _| Ok(BTreeMap::new()))
            .with_latency(std::time::Duration::from_millis(1));
        assert!(slow.execute(&external_def("x"), &BTreeMap::new()).is_ok());
    }

    #[test]
    fn reachable_site_filter() {
        let mut reg = ExternalRegistry::new();
        let site = const_site();
        reg.register("nasa_eos", site.clone());
        assert!(reg.reachable_site("nasa_eos").is_some());
        site.set_reachable(false);
        assert!(reg.site("nasa_eos").is_some(), "still registered");
        assert!(reg.reachable_site("nasa_eos").is_none(), "but down");
    }
}
