//! The Gaea kernel facade.
//!
//! [`Gaea`] owns the store, the catalog and the operator registry, and
//! exposes the paper's functionality end to end: class/concept/process
//! definition, object storage, task execution, the §2.1.5 three-step query
//! mechanism, lineage browsing, experiment reproduction, and snapshots.

use crate::catalog::Catalog;
use crate::derivation::executor::{self, TaskRun};
use crate::derivation::net::DerivationNet;
use crate::error::{KernelError, KernelResult};
use crate::experiment::{Experiment, Reproduction};
use crate::external::{ExternalExecutor, ExternalInputs, ExternalRegistry};
use crate::ids::{ClassId, ConceptId, ExperimentId, ObjectId, ProcessId, TaskId};
use crate::interact::InteractiveSession;
use crate::lineage;
use crate::object::{DataObject, SPATIAL_ATTR, TEMPORAL_ATTR};
use crate::query::{Query, QueryMethod, QueryOutcome, QueryStrategy, QueryTarget, TimeSel};
use crate::schema::{
    AttrDef, ClassDef, ClassKind, CompoundStep, Concept, InteractionPoint, ProcessArg, ProcessDef,
    ProcessKind, StepSource,
};
use crate::task::{Task, TaskKind};
use crate::template::{Binding, EvalContext, Expr, Template};
use gaea_adt::{AbsTime, OperatorRegistry, TypeTag, Value};
use gaea_petri::backward::plan_derivation;
use gaea_store::{Database, Predicate};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::Arc;

/// Specification for a new class.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Class name.
    pub name: String,
    /// Base or derived.
    pub kind: ClassKind,
    /// Ordinary attributes.
    pub attrs: Vec<AttrDef>,
    /// Reference attributes, as (attr name, referenced class name) pairs,
    /// resolved against the catalog at definition time (§4.3 extension).
    pub ref_attrs: Vec<(String, String)>,
    /// Carry a spatial extent?
    pub spatial: bool,
    /// Carry a temporal extent?
    pub temporal: bool,
    /// Documentation.
    pub doc: String,
}

impl ClassSpec {
    /// A base class with both extents (the common case for scenes).
    pub fn base(name: &str) -> ClassSpec {
        ClassSpec {
            name: name.into(),
            kind: ClassKind::Base,
            attrs: vec![],
            ref_attrs: vec![],
            spatial: true,
            temporal: true,
            doc: String::new(),
        }
    }

    /// A derived class with both extents.
    pub fn derived(name: &str) -> ClassSpec {
        ClassSpec {
            kind: ClassKind::Derived,
            ..ClassSpec::base(name)
        }
    }

    /// Add an attribute.
    pub fn attr(mut self, name: &str, tag: gaea_adt::TypeTag) -> ClassSpec {
        self.attrs.push(AttrDef::new(name, tag));
        self
    }

    /// Add a reference attribute pointing at objects of `class` (§4.3
    /// extension: non-primitive classes as attribute types).
    pub fn ref_attr(mut self, name: &str, class: &str) -> ClassSpec {
        self.ref_attrs.push((name.into(), class.into()));
        self
    }

    /// Disable extents (for aspatial classes).
    pub fn no_extents(mut self) -> ClassSpec {
        self.spatial = false;
        self.temporal = false;
        self
    }

    /// Attach documentation.
    pub fn doc(mut self, d: &str) -> ClassSpec {
        self.doc = d.into();
        self
    }
}

/// Specification for a new primitive process.
#[derive(Debug, Clone)]
pub struct ProcessSpec {
    /// Process name.
    pub name: String,
    /// Output class name.
    pub output: String,
    /// Arguments: (name, class name, setof, min_card).
    pub args: Vec<(String, String, bool, u64)>,
    /// The TEMPLATE.
    pub template: Template,
    /// Interaction points (§4.3 extension), in consultation order.
    pub interactions: Vec<InteractionPoint>,
    /// Documentation.
    pub doc: String,
}

impl ProcessSpec {
    /// Start a spec.
    pub fn new(name: &str, output: &str) -> ProcessSpec {
        ProcessSpec {
            name: name.into(),
            output: output.into(),
            args: vec![],
            template: Template::default(),
            interactions: vec![],
            doc: String::new(),
        }
    }

    /// Scalar argument.
    pub fn arg(mut self, name: &str, class: &str) -> ProcessSpec {
        self.args.push((name.into(), class.into(), false, 1));
        self
    }

    /// `SETOF` argument.
    pub fn setof_arg(mut self, name: &str, class: &str, min_card: u64) -> ProcessSpec {
        self.args.push((name.into(), class.into(), true, min_card));
        self
    }

    /// Attach the template.
    pub fn template(mut self, t: Template) -> ProcessSpec {
        self.template = t;
        self
    }

    /// Declare an interaction point: the task will suspend, show nothing,
    /// and wait for a `param` of type `expected` (§4.3 extension).
    pub fn interact(mut self, param: &str, prompt: &str, expected: TypeTag) -> ProcessSpec {
        self.interactions.push(InteractionPoint {
            param: param.into(),
            prompt: prompt.into(),
            preview: None,
            expected,
        });
        self
    }

    /// Declare an interaction point with a preview expression — the
    /// "temporary result visualized on the screen" the scientist inspects
    /// before answering.
    pub fn interact_preview(
        mut self,
        param: &str,
        prompt: &str,
        expected: TypeTag,
        preview: Expr,
    ) -> ProcessSpec {
        self.interactions.push(InteractionPoint {
            param: param.into(),
            prompt: prompt.into(),
            preview: Some(preview),
            expected,
        });
        self
    }

    /// Attach documentation.
    pub fn doc(mut self, d: &str) -> ProcessSpec {
        self.doc = d.into();
        self
    }
}

/// The Gaea kernel.
pub struct Gaea {
    db: Database,
    catalog: Catalog,
    registry: OperatorRegistry,
    externals: ExternalRegistry,
    user: String,
    /// Reuse existing identical tasks instead of re-deriving (§2.1.1:
    /// "avoid unnecessary duplication of experiments"). On by default;
    /// benchmarks toggle it to measure the memoization effect.
    pub reuse_tasks: bool,
    /// Budget of alternative input bindings tried per process firing.
    pub binding_budget: usize,
}

impl Gaea {
    /// Fresh in-memory kernel with the full operator set (generic builtins
    /// + the raster analysis operators, including compound `pca`/`spca`).
    pub fn in_memory() -> Gaea {
        let mut registry = OperatorRegistry::with_builtins();
        gaea_raster::register_raster_ops(&mut registry)
            .expect("raster operator registration is internally consistent");
        Gaea {
            db: Database::new(),
            catalog: Catalog::default(),
            registry,
            externals: ExternalRegistry::new(),
            user: "scientist".into(),
            reuse_tasks: true,
            binding_budget: 32,
        }
    }

    /// Register (or replace) an external execution site (§5 extension).
    /// Sites describe the *current environment*, not the catalog: they are
    /// not persisted by [`Gaea::save`] and must be re-registered after
    /// [`Gaea::load`].
    pub fn register_site(&mut self, name: &str, site: Arc<dyn ExternalExecutor>) {
        self.externals.register(name, site);
    }

    /// Remove an external site registration.
    pub fn unregister_site(&mut self, name: &str) -> bool {
        self.externals.unregister(name)
    }

    /// Names of the registered external sites.
    pub fn sites(&self) -> Vec<&str> {
        self.externals.names()
    }

    /// Set the current user (tasks and experiments are attributed).
    pub fn with_user(mut self, user: &str) -> Gaea {
        self.user = user.into();
        self
    }

    /// Switch the current user in place.
    pub fn set_user(&mut self, user: &str) {
        self.user = user.into();
    }

    /// Current user.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// The operator registry (immutable view).
    pub fn registry(&self) -> &OperatorRegistry {
        &self.registry
    }

    /// The operator registry, mutable — §4.2: "users are allowed to define
    /// new primitive classes and/or new operators".
    pub fn registry_mut(&mut self) -> &mut OperatorRegistry {
        &mut self.registry
    }

    /// The catalog (read-only).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    // ------------------------------------------------------------------
    // Definitions
    // ------------------------------------------------------------------

    /// Define a non-primitive class and create its extension relation.
    /// Reference attributes are resolved against already-defined classes
    /// (self-references are permitted: the class may reference itself).
    pub fn define_class(&mut self, spec: ClassSpec) -> KernelResult<ClassId> {
        let id = ClassId(self.db.allocate_oid());
        let mut attrs = spec.attrs;
        for (attr_name, class_name) in &spec.ref_attrs {
            let target = if *class_name == spec.name {
                id // self-reference (e.g. a scene derived from a prior scene)
            } else {
                self.catalog.class_by_name(class_name)?.id
            };
            attrs.push(AttrDef::reference(attr_name, target));
        }
        let def = ClassDef {
            id,
            name: spec.name,
            kind: spec.kind,
            attrs,
            has_spatial: spec.spatial,
            has_temporal: spec.temporal,
            derived_by: vec![],
            doc: spec.doc,
        };
        self.db.create_relation(&def.relation_name(), def.storage_schema())?;
        let rel = def.relation_name();
        match self.catalog.add_class(def) {
            Ok(()) => Ok(id),
            Err(e) => {
                // Roll the relation back so a failed definition leaves no junk.
                let _ = self.db.drop_relation(&rel);
                Err(e)
            }
        }
    }

    /// Define a concept over existing classes with optional ISA parents.
    pub fn define_concept(
        &mut self,
        name: &str,
        members: &[&str],
        parents: &[&str],
        doc: &str,
    ) -> KernelResult<ConceptId> {
        let mut member_ids = BTreeSet::new();
        for m in members {
            member_ids.insert(self.catalog.class_by_name(m)?.id);
        }
        let mut parent_ids = Vec::new();
        for p in parents {
            parent_ids.push(self.catalog.concept_by_name(p)?.id);
        }
        let id = ConceptId(self.db.allocate_oid());
        self.catalog.add_concept(Concept {
            id,
            name: name.into(),
            members: member_ids,
            parents: parent_ids,
            doc: doc.into(),
        })?;
        Ok(id)
    }

    /// Define a primitive process. Validates that the output class exists
    /// and is derived, argument classes exist, template argument references
    /// are declared, and mapped attributes exist on the output class.
    pub fn define_process(&mut self, spec: ProcessSpec) -> KernelResult<ProcessId> {
        let output = self.catalog.class_by_name(&spec.output)?;
        if !output.is_derived() {
            return Err(KernelError::Schema(format!(
                "process {} outputs into base class {} — base data cannot be derived",
                spec.name, output.name
            )));
        }
        let output_id = output.id;
        let mut args = Vec::new();
        for (name, class, setof, min_card) in &spec.args {
            let class_id = self.catalog.class_by_name(class)?.id;
            args.push(ProcessArg {
                name: name.clone(),
                class: class_id,
                setof: *setof,
                min_card: if *setof { *min_card } else { 1 },
            });
        }
        // Template validation.
        let declared: BTreeSet<&str> = args.iter().map(|a| a.name.as_str()).collect();
        let mut referenced = Vec::new();
        for a in &spec.template.assertions {
            a.referenced_args(&mut referenced);
        }
        for m in &spec.template.mappings {
            m.expr.referenced_args(&mut referenced);
        }
        for r in &referenced {
            if !declared.contains(r.as_str()) {
                return Err(KernelError::Schema(format!(
                    "process {}: template references undeclared argument {r:?}",
                    spec.name
                )));
            }
        }
        let out_class = self.catalog.class(output_id)?.clone();
        for m in &spec.template.mappings {
            if out_class.attr(&m.attr).is_none() {
                return Err(KernelError::Schema(format!(
                    "process {}: mapping targets unknown attribute {:?} of class {}",
                    spec.name, m.attr, out_class.name
                )));
            }
        }
        // Interaction validation (§4.3 extension): every PARAM the template
        // references must be declared; declared names must be unique; a
        // preview may only use declared arguments and *earlier* answers.
        let mut declared_params: BTreeSet<&str> = BTreeSet::new();
        for point in &spec.interactions {
            if !declared_params.insert(point.param.as_str()) {
                return Err(KernelError::Schema(format!(
                    "process {}: interaction {:?} declared twice",
                    spec.name, point.param
                )));
            }
        }
        let mut referenced_params = Vec::new();
        for a in &spec.template.assertions {
            a.referenced_params(&mut referenced_params);
        }
        for m in &spec.template.mappings {
            m.expr.referenced_params(&mut referenced_params);
        }
        for p in &referenced_params {
            if !declared_params.contains(p.as_str()) {
                return Err(KernelError::Schema(format!(
                    "process {}: template references undeclared parameter {p:?} \
                     (declare it as an interaction point)",
                    spec.name
                )));
            }
        }
        for (i, point) in spec.interactions.iter().enumerate() {
            let Some(preview) = &point.preview else {
                continue;
            };
            let mut args_used = Vec::new();
            preview.referenced_args(&mut args_used);
            for a in &args_used {
                if !declared.contains(a.as_str()) {
                    return Err(KernelError::Schema(format!(
                        "process {}: preview of {:?} references undeclared argument {a:?}",
                        spec.name, point.param
                    )));
                }
            }
            let mut params_used = Vec::new();
            preview.referenced_params(&mut params_used);
            for p in &params_used {
                let earlier = spec.interactions[..i].iter().any(|q| q.param == *p);
                if !earlier {
                    return Err(KernelError::Schema(format!(
                        "process {}: preview of {:?} uses parameter {p:?} which is \
                         not answered yet at that point",
                        spec.name, point.param
                    )));
                }
            }
        }
        let id = ProcessId(self.db.allocate_oid());
        self.catalog.add_process(ProcessDef {
            id,
            name: spec.name,
            output: output_id,
            args,
            template: spec.template,
            kind: ProcessKind::Primitive,
            interactions: spec.interactions,
            doc: spec.doc,
        })?;
        Ok(id)
    }

    /// Define an external process (§5 extension): the guard assertions run
    /// locally, the mapping runs at `site`. External templates are
    /// assertions-only — the remote site computes the output attributes.
    /// The site does not need to be registered yet; registration is an
    /// environment concern, definition a catalog one.
    pub fn define_external_process(
        &mut self,
        spec: ProcessSpec,
        site: &str,
    ) -> KernelResult<ProcessId> {
        if !spec.template.mappings.is_empty() {
            return Err(KernelError::Schema(format!(
                "external process {}: mappings are computed by the site; \
                 the local template may only carry assertions",
                spec.name
            )));
        }
        if !spec.interactions.is_empty() {
            return Err(KernelError::Schema(format!(
                "external process {}: interactions are not supported remotely",
                spec.name
            )));
        }
        // Reuse the primitive validation, then rewrite the kind.
        let site = site.to_string();
        let name = spec.name.clone();
        let id = self.define_process(spec)?;
        let def = self
            .catalog
            .processes
            .get_mut(&id)
            .unwrap_or_else(|| unreachable!("process {name} was just defined"));
        def.kind = ProcessKind::External { site };
        Ok(id)
    }

    /// Define a non-applicative process (§5 extension): the mapping "is
    /// described by experimental procedures that do not follow a well
    /// known algorithm". Its tasks can only be recorded via
    /// [`Gaea::record_manual_task`], never fired.
    pub fn define_nonapplicative_process(
        &mut self,
        name: &str,
        output: &str,
        args: &[(String, String, bool, u64)],
        procedure: &str,
        doc: &str,
    ) -> KernelResult<ProcessId> {
        let output_class = self.catalog.class_by_name(output)?;
        if !output_class.is_derived() {
            return Err(KernelError::Schema(format!(
                "process {name} outputs into base class {output} — base data cannot be derived"
            )));
        }
        let output_id = output_class.id;
        let mut arg_defs = Vec::new();
        for (aname, class, setof, min_card) in args {
            let class_id = self.catalog.class_by_name(class)?.id;
            arg_defs.push(ProcessArg {
                name: aname.clone(),
                class: class_id,
                setof: *setof,
                min_card: if *setof { *min_card } else { 1 },
            });
        }
        let id = ProcessId(self.db.allocate_oid());
        self.catalog.add_process(ProcessDef {
            id,
            name: name.into(),
            output: output_id,
            args: arg_defs,
            template: Template::default(),
            kind: ProcessKind::NonApplicative {
                procedure: procedure.into(),
            },
            interactions: vec![],
            doc: doc.into(),
        })?;
        Ok(id)
    }

    /// Define a compound process from named steps (§2.1.4, Figure 5).
    /// `steps` wire each child process's arguments to outer arguments or
    /// earlier step outputs; class compatibility is checked statically.
    pub fn define_compound_process(
        &mut self,
        name: &str,
        output: &str,
        args: &[(String, String, bool, u64)],
        steps: &[(String, Vec<StepSource>)],
        doc: &str,
    ) -> KernelResult<ProcessId> {
        let output_class = self.catalog.class_by_name(output)?;
        if !output_class.is_derived() {
            return Err(KernelError::Schema(format!(
                "compound {name} outputs into base class {output}"
            )));
        }
        let output_id = output_class.id;
        let mut arg_defs = Vec::new();
        for (aname, class, setof, min_card) in args {
            let class_id = self.catalog.class_by_name(class)?.id;
            arg_defs.push(ProcessArg {
                name: aname.clone(),
                class: class_id,
                setof: *setof,
                min_card: if *setof { *min_card } else { 1 },
            });
        }
        // Validate wiring and collect step output classes.
        let mut step_defs: Vec<CompoundStep> = Vec::new();
        let mut step_outputs: Vec<ClassId> = Vec::new();
        for (i, (pname, sources)) in steps.iter().enumerate() {
            let child = self.catalog.process_by_name(pname)?;
            if sources.len() != child.args.len() {
                return Err(KernelError::Schema(format!(
                    "compound {name}: step {i} wires {} source(s) into {pname} which declares {}",
                    sources.len(),
                    child.args.len()
                )));
            }
            for (arg, src) in child.args.iter().zip(sources) {
                let src_class = match src {
                    StepSource::OuterArg(k) => {
                        arg_defs
                            .get(*k)
                            .ok_or_else(|| {
                                KernelError::Schema(format!(
                                    "compound {name}: step {i} references outer arg {k}"
                                ))
                            })?
                            .class
                    }
                    StepSource::StepOutput(k) => {
                        if *k >= i {
                            return Err(KernelError::Schema(format!(
                                "compound {name}: step {i} references later/own step {k}"
                            )));
                        }
                        step_outputs[*k]
                    }
                };
                if src_class != arg.class {
                    let want = self.catalog.class(arg.class)?.name.clone();
                    let got = self.catalog.class(src_class)?.name.clone();
                    return Err(KernelError::Schema(format!(
                        "compound {name}: step {i} feeds class {got} into {pname}.{} which expects {want}",
                        arg.name
                    )));
                }
            }
            step_outputs.push(child.output);
            step_defs.push(CompoundStep {
                process: child.id,
                inputs: sources.clone(),
            });
        }
        if let Some(last) = step_outputs.last() {
            if *last != output_id {
                return Err(KernelError::Schema(format!(
                    "compound {name}: final step produces {} but the declared output is {output}",
                    self.catalog.class(*last)?.name
                )));
            }
        } else {
            return Err(KernelError::Schema(format!(
                "compound {name} has no steps"
            )));
        }
        let id = ProcessId(self.db.allocate_oid());
        self.catalog.add_process(ProcessDef {
            id,
            name: name.into(),
            output: output_id,
            args: arg_defs,
            template: Template::default(),
            kind: ProcessKind::Compound(step_defs),
            interactions: vec![],
            doc: doc.into(),
        })?;
        Ok(id)
    }

    // ------------------------------------------------------------------
    // Objects
    // ------------------------------------------------------------------

    /// Store an object of a class from attribute pairs.
    pub fn insert_object(
        &mut self,
        class: &str,
        attrs: Vec<(&str, Value)>,
    ) -> KernelResult<ObjectId> {
        let def = self.catalog.class_by_name(class)?.clone();
        let map: BTreeMap<String, Value> =
            attrs.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        executor::insert_object(&mut self.db, &mut self.catalog, &def, &map)
    }

    /// Load a stored object.
    pub fn object(&self, oid: ObjectId) -> KernelResult<DataObject> {
        executor::load_object(&self.db, &self.catalog, oid)
    }

    /// All object ids of a class, in storage order.
    pub fn objects_of(&self, class: &str) -> KernelResult<Vec<ObjectId>> {
        let def = self.catalog.class_by_name(class)?;
        Ok(self
            .db
            .relation(&def.relation_name())?
            .iter()
            .map(|(oid, _)| ObjectId(oid))
            .collect())
    }

    /// Number of stored objects of a class.
    pub fn count_objects(&self, class: &str) -> KernelResult<usize> {
        let def = self.catalog.class_by_name(class)?;
        Ok(self.db.relation(&def.relation_name())?.len())
    }

    // ------------------------------------------------------------------
    // Task execution
    // ------------------------------------------------------------------

    /// Fire a process by name on explicit bindings.
    pub fn run_process(
        &mut self,
        process: &str,
        bindings: &[(&str, Vec<ObjectId>)],
    ) -> KernelResult<TaskRun> {
        let pid = self.catalog.process_by_name(process)?.id;
        let owned: Vec<(String, Vec<ObjectId>)> = bindings
            .iter()
            .map(|(n, o)| (n.to_string(), o.clone()))
            .collect();
        executor::run_process(
            &mut self.db,
            &mut self.catalog,
            &self.registry,
            &self.externals,
            pid,
            &owned,
            &self.user.clone(),
        )
    }

    /// Record a manual task for a non-applicative process (§5 extension):
    /// the scientist performed the experimental procedure outside the
    /// system and reports the observed output attributes. The derivation
    /// relationship enters the history like any other task; reproduction
    /// reports it as not replayable.
    pub fn record_manual_task(
        &mut self,
        process: &str,
        bindings: &[(&str, Vec<ObjectId>)],
        outputs: Vec<(&str, Value)>,
        notes: &str,
    ) -> KernelResult<TaskRun> {
        let def = self.catalog.process_by_name(process)?.clone();
        let procedure = match &def.kind {
            ProcessKind::NonApplicative { procedure } => procedure.clone(),
            _ => {
                return Err(KernelError::Schema(format!(
                    "process {process} is not non-applicative; fire it instead of recording it"
                )))
            }
        };
        let owned: Vec<(String, Vec<ObjectId>)> = bindings
            .iter()
            .map(|(n, o)| (n.to_string(), o.clone()))
            .collect();
        executor::validate_bindings(&self.catalog, &def, &owned)?;
        let out_class = self.catalog.class(def.output)?.clone();
        let attrs: BTreeMap<String, Value> = outputs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let obj = executor::insert_object(&mut self.db, &mut self.catalog, &out_class, &attrs)?;
        let task_id = TaskId(self.db.allocate_oid());
        let seq = self.catalog.next_task_seq();
        let mut params = BTreeMap::new();
        params.insert("notes".to_string(), Value::Text(notes.into()));
        params.insert("procedure".to_string(), Value::Text(procedure));
        self.catalog.add_task(Task {
            id: task_id,
            process: def.id,
            process_name: def.name.clone(),
            inputs: owned.into_iter().collect(),
            outputs: vec![obj],
            params,
            seq,
            user: self.user.clone(),
            kind: TaskKind::Manual,
            children: vec![],
        });
        Ok(TaskRun {
            task: task_id,
            outputs: vec![obj],
        })
    }

    // ------------------------------------------------------------------
    // Interactive sessions (§4.3 extension)
    // ------------------------------------------------------------------

    /// Open an interactive session for a process with interaction points.
    /// Bindings are validated now; assertions and mappings run at
    /// [`Gaea::finish_interactive`], once every answer is in.
    pub fn begin_interactive(
        &self,
        process: &str,
        bindings: &[(&str, Vec<ObjectId>)],
    ) -> KernelResult<InteractiveSession> {
        let def = self.catalog.process_by_name(process)?.clone();
        if !def.is_interactive() {
            return Err(KernelError::Schema(format!(
                "process {process} declares no interactions; fire it directly"
            )));
        }
        let owned: Vec<(String, Vec<ObjectId>)> = bindings
            .iter()
            .map(|(n, o)| (n.to_string(), o.clone()))
            .collect();
        executor::validate_bindings(&self.catalog, &def, &owned)?;
        Ok(InteractiveSession::new(def, owned))
    }

    /// Render the pending interaction point's preview — "some temporary
    /// result visualized on the screen" — over the session's bindings and
    /// the answers supplied so far. `None` if the point declares no
    /// preview or every point is answered.
    pub fn interaction_preview(
        &self,
        session: &InteractiveSession,
    ) -> KernelResult<Option<Value>> {
        let Some(point) = session.pending() else {
            return Ok(None);
        };
        let Some(preview) = &point.preview else {
            return Ok(None);
        };
        let bound =
            executor::load_bindings(&self.db, &self.catalog, &session.def, &session.bindings)?;
        let ctx = EvalContext {
            bindings: &bound,
            registry: &self.registry,
            params: &session.supplied,
        };
        ctx.eval(preview).map(Some)
    }

    /// Complete an interactive session: every declared interaction must be
    /// answered. Assertions are checked and mappings evaluated with the
    /// answers bound as parameters; the recorded task carries the answers
    /// in `params`, making the interaction reproducible without the
    /// scientist.
    pub fn finish_interactive(&mut self, session: InteractiveSession) -> KernelResult<TaskRun> {
        if let Some(point) = session.pending() {
            return Err(KernelError::InteractionPending {
                process: session.def.name.clone(),
                param: point.param.clone(),
            });
        }
        executor::run_primitive(
            &mut self.db,
            &mut self.catalog,
            &self.registry,
            &session.def,
            &session.bindings,
            &self.user.clone(),
            &session.supplied,
            TaskKind::Interactive,
        )
    }

    /// Task record by id.
    pub fn task(&self, id: TaskId) -> KernelResult<&Task> {
        self.catalog.task(id)
    }

    /// Dereference a reference attribute (§4.3 extension): the auto-defined
    /// retrieval function for `ObjRef` attributes.
    pub fn deref_attr(&self, obj: ObjectId, attr: &str) -> KernelResult<DataObject> {
        let o = self.object(obj)?;
        let class = self.catalog.class(o.class)?;
        let def = class.attr(attr).ok_or_else(|| {
            KernelError::Schema(format!("class {} has no attribute {attr:?}", class.name))
        })?;
        if !def.is_reference() {
            return Err(KernelError::Schema(format!(
                "attribute {attr:?} of class {} is not a reference",
                class.name
            )));
        }
        let target = o
            .attr(attr)
            .and_then(Value::as_objref)
            .ok_or_else(|| KernelError::NoData(format!("{obj}.{attr} is null")))?;
        self.object(ObjectId(gaea_store::Oid(target)))
    }

    // ------------------------------------------------------------------
    // The three-step query mechanism (§2.1.5)
    // ------------------------------------------------------------------

    /// Execute a query through retrieval → interpolation → derivation.
    pub fn query(&mut self, q: &Query) -> KernelResult<QueryOutcome> {
        let class_names = self.target_classes(q)?;
        // Step 1: direct retrieval.
        let hits = self.retrieve(&class_names, q)?;
        if !hits.is_empty() {
            return Ok(QueryOutcome {
                objects: hits,
                method: QueryMethod::Retrieved,
                tasks: vec![],
            });
        }
        let steps: &[QueryMethod] = match q.strategy {
            QueryStrategy::RetrieveOnly => &[],
            QueryStrategy::PreferInterpolation => {
                &[QueryMethod::Interpolated, QueryMethod::Derived]
            }
            QueryStrategy::PreferDerivation => {
                &[QueryMethod::Derived, QueryMethod::Interpolated]
            }
        };
        let mut failures: Vec<String> = Vec::new();
        for step in steps {
            let attempt = match step {
                QueryMethod::Interpolated => self.try_interpolate(&class_names, q),
                QueryMethod::Derived => self.try_derive(&class_names, q),
                QueryMethod::Retrieved => unreachable!("retrieval ran first"),
            };
            match attempt {
                Ok(Some(outcome)) => return Ok(outcome),
                Ok(None) => failures.push(format!("{step:?}: not applicable")),
                Err(e) => failures.push(format!("{step:?}: {e}")),
            }
        }
        Err(KernelError::NoData(format!(
            "classes {class_names:?} hold no matching objects; {}",
            if failures.is_empty() {
                "strategy forbids computation".to_string()
            } else {
                failures.join("; ")
            }
        )))
    }

    fn target_classes(&self, q: &Query) -> KernelResult<Vec<String>> {
        Ok(match &q.target {
            QueryTarget::Class(name) => {
                vec![self.catalog.class_by_name(name)?.name.clone()]
            }
            QueryTarget::Concept(name) => self
                .catalog
                .concept_member_classes(name)?
                .iter()
                .map(|c| c.name.clone())
                .collect(),
        })
    }

    fn retrieval_predicate(&self, class: &ClassDef, q: &Query) -> Predicate {
        let mut pred = Predicate::True;
        if let (Some(bbox), true) = (q.spatial, class.has_spatial) {
            pred = pred.and(Predicate::BoxOverlaps(SPATIAL_ATTR.into(), bbox));
        }
        if class.has_temporal {
            match q.time {
                Some(TimeSel::At(t)) => {
                    pred = pred.and(Predicate::Eq(TEMPORAL_ATTR.into(), Value::AbsTime(t)));
                }
                Some(TimeSel::In(r)) => {
                    pred = pred.and(Predicate::TimeIn(TEMPORAL_ATTR.into(), r));
                }
                None => {}
            }
        }
        pred
    }

    fn retrieve(&self, classes: &[String], q: &Query) -> KernelResult<Vec<DataObject>> {
        let mut out = Vec::new();
        for name in classes {
            let def = self.catalog.class_by_name(name)?;
            let pred = self.retrieval_predicate(def, q);
            for (oid, _) in self.db.scan(&def.relation_name(), &pred)? {
                out.push(self.object(ObjectId(oid))?);
            }
        }
        Ok(out)
    }

    /// Step 2: temporal interpolation. Applicable when the query pins an
    /// instant and a class stores bracketing image snapshots.
    fn try_interpolate(
        &mut self,
        classes: &[String],
        q: &Query,
    ) -> KernelResult<Option<QueryOutcome>> {
        let t = match q.time {
            Some(TimeSel::At(t)) => t,
            _ => return Ok(None),
        };
        for name in classes {
            let def = self.catalog.class_by_name(name)?.clone();
            if !def.has_temporal || def.attr("data").map(|a| a.tag) != Some(gaea_adt::TypeTag::Image)
            {
                continue;
            }
            // Spatially compatible snapshots with data + timestamps.
            let spatial_query = Query {
                time: None,
                ..q.clone()
            };
            let pred = self.retrieval_predicate(&def, &spatial_query);
            let mut snaps: Vec<DataObject> = Vec::new();
            for (oid, _) in self.db.scan(&def.relation_name(), &pred)? {
                let obj = self.object(ObjectId(oid))?;
                if obj.timestamp().is_some() && obj.attr("data").is_some() {
                    snaps.push(obj);
                }
            }
            let earlier = snaps
                .iter()
                .filter(|o| o.timestamp().expect("filtered") < t)
                .max_by_key(|o| o.timestamp().expect("filtered"));
            let later = snaps
                .iter()
                .filter(|o| o.timestamp().expect("filtered") > t)
                .min_by_key(|o| o.timestamp().expect("filtered"));
            let (earlier, later) = match (earlier, later) {
                (Some(e), Some(l)) => (e.clone(), l.clone()),
                _ => continue,
            };
            let img = gaea_raster::interp::temporal_interp(
                earlier.attr("data").expect("filtered").as_image().ok_or_else(|| {
                    KernelError::Template("interpolation: data attr is not an image".into())
                })?,
                earlier.timestamp().expect("filtered"),
                later.attr("data").expect("filtered").as_image().ok_or_else(|| {
                    KernelError::Template("interpolation: data attr is not an image".into())
                })?,
                later.timestamp().expect("filtered"),
                t,
            )?;
            // New object: the earlier snapshot's attributes, re-timed.
            let mut attrs = earlier.attrs.clone();
            attrs.insert("data".into(), Value::image(img));
            attrs.insert(TEMPORAL_ATTR.into(), Value::AbsTime(t));
            let obj = executor::insert_object(&mut self.db, &mut self.catalog, &def, &attrs)?;
            let pid = self.interpolation_process(&def)?;
            let task_id = TaskId(self.db.allocate_oid());
            let seq = self.catalog.next_task_seq();
            let mut inputs = BTreeMap::new();
            inputs.insert("earlier".to_string(), vec![earlier.id]);
            inputs.insert("later".to_string(), vec![later.id]);
            let mut params = BTreeMap::new();
            params.insert("at".to_string(), Value::AbsTime(t));
            self.catalog.add_task(Task {
                id: task_id,
                process: pid,
                process_name: format!("interpolate_{}", def.name),
                inputs,
                outputs: vec![obj],
                params,
                seq,
                user: self.user.clone(),
                kind: TaskKind::Interpolation,
                children: vec![],
            });
            return Ok(Some(QueryOutcome {
                objects: vec![self.object(obj)?],
                method: QueryMethod::Interpolated,
                tasks: vec![task_id],
            }));
        }
        Ok(None)
    }

    /// The generic interpolation process for a class, lazily registered
    /// ("it is a generic derivation process which is applicable to many
    /// data types", §2.1.5).
    fn interpolation_process(&mut self, class: &ClassDef) -> KernelResult<ProcessId> {
        let name = format!("interpolate_{}", class.name);
        if let Ok(p) = self.catalog.process_by_name(&name) {
            return Ok(p.id);
        }
        let id = ProcessId(self.db.allocate_oid());
        self.catalog.add_process(ProcessDef {
            id,
            name,
            output: class.id,
            args: vec![
                ProcessArg::one("earlier", class.id),
                ProcessArg::one("later", class.id),
            ],
            template: Template::default(),
            kind: ProcessKind::Primitive,
            interactions: vec![],
            doc: "built-in linear temporal interpolation (kernel §2.1.5 step 2); \
                  the target instant is recorded as task parameter `at`"
                .into(),
        })?;
        Ok(id)
    }

    /// Step 3: derivation. Plans over the Petri net, fires the plan,
    /// re-retrieves.
    fn try_derive(&mut self, classes: &[String], q: &Query) -> KernelResult<Option<QueryOutcome>> {
        // Plan only over processes the kernel can fire without a scientist:
        // plain primitives and external processes whose site is reachable.
        let dnet = DerivationNet::build_filtered(&self.catalog, |def| match &def.kind {
            ProcessKind::Primitive => !def.is_interactive(),
            ProcessKind::External { site } => self.externals.reachable_site(site).is_some(),
            ProcessKind::Compound(_) | ProcessKind::NonApplicative { .. } => false,
        });
        // Marking: spatially compatible stored objects per class. For the
        // *target* classes the full query predicate applies (an object at
        // the wrong instant does not satisfy the goal, so it must not make
        // the planner believe the goal is already stored).
        let mut counts: BTreeMap<ClassId, u64> = BTreeMap::new();
        for (cid, def) in self.catalog.classes.clone() {
            let pred = if classes.contains(&def.name) {
                self.retrieval_predicate(&def, q)
            } else {
                match q.spatial {
                    Some(bbox) if def.has_spatial => {
                        Predicate::BoxOverlaps(SPATIAL_ATTR.into(), bbox)
                    }
                    _ => Predicate::True,
                }
            };
            let n = self.db.scan(&def.relation_name(), &pred)?.len() as u64;
            counts.insert(cid, n);
        }
        let marking = dnet.marking(&counts);
        let mut all_tasks = Vec::new();
        for name in classes {
            let def = self.catalog.class_by_name(name)?.clone();
            let place = match dnet.place_of.get(&def.id) {
                Some(p) => *p,
                None => continue,
            };
            let plan = match plan_derivation(&dnet.net, &marking, place, 1) {
                Ok(p) => p,
                Err(failure) => {
                    // Try the next member class; remember the diagnosis.
                    let missing: Vec<String> = failure
                        .missing_base
                        .iter()
                        .filter_map(|p| dnet.class_at(*p))
                        .filter_map(|c| self.catalog.class(c).ok().map(|d| d.name.clone()))
                        .collect();
                    if classes.len() == 1 {
                        return Err(KernelError::DerivationImpossible(format!(
                            "class {name}: missing base data in {missing:?}"
                        )));
                    }
                    continue;
                }
            };
            // Fire the plan. Each repetition of a process must realize a
            // *distinct* derivation (different inputs), so the bindings of
            // firings already used by this plan are excluded from reuse.
            let mut fired_keys: BTreeSet<String> = BTreeSet::new();
            for (tid, times) in &plan.firings {
                let pid = dnet
                    .process_at(*tid)
                    .expect("planner only uses catalog transitions");
                for _rep in 0..*times {
                    let run = self.fire_with_chosen_bindings(pid, q, &fired_keys)?;
                    fired_keys.insert(self.catalog.task(run.task)?.dedup_key());
                    all_tasks.push(run.task);
                }
            }
            // Step 1 again over the now-extended extension.
            let hits = self.retrieve(&[name.clone()], q)?;
            if !hits.is_empty() {
                return Ok(Some(QueryOutcome {
                    objects: hits,
                    method: QueryMethod::Derived,
                    tasks: all_tasks,
                }));
            }
            // The derivation ran but extent transfer did not match the
            // query exactly (e.g. requested instant between snapshots):
            // fall through so interpolation can take over.
        }
        Ok(None)
    }

    /// Choose input objects for one firing of `pid`.
    ///
    /// Bindings whose dedup key is in `exclude` are skipped outright (the
    /// current plan already consumed that derivation). A binding identical
    /// to a *prior* (pre-plan) task is reused without re-deriving when
    /// [`Gaea::reuse_tasks`] is on; otherwise it is skipped so the kernel
    /// never silently duplicates a derivation.
    fn fire_with_chosen_bindings(
        &mut self,
        pid: ProcessId,
        q: &Query,
        exclude: &BTreeSet<String>,
    ) -> KernelResult<TaskRun> {
        let def = self.catalog.process(pid)?.clone();
        // The instant the query pins, if any: bindings matching it are
        // preferred so that invariantly transferred timestamps land on the
        // requested time.
        let target_time = match q.time {
            Some(TimeSel::At(t)) => Some(t),
            _ => None,
        };
        // Candidate pools per argument.
        let mut pools: Vec<Vec<DataObject>> = Vec::with_capacity(def.args.len());
        for arg in &def.args {
            let class = self.catalog.class(arg.class)?.clone();
            let pred = match q.spatial {
                Some(bbox) if class.has_spatial => {
                    Predicate::BoxOverlaps(SPATIAL_ATTR.into(), bbox)
                }
                _ => Predicate::True,
            };
            let mut pool = Vec::new();
            for (oid, _) in self.db.scan(&class.relation_name(), &pred)? {
                pool.push(self.object(ObjectId(oid))?);
            }
            // Deterministic order: query-time matches first, then by
            // timestamp, then id.
            pool.sort_by_key(|o| {
                (
                    target_time.is_some() && o.timestamp() != target_time,
                    o.timestamp(),
                    o.id,
                )
            });
            pools.push(pool);
        }
        // Candidate selections per argument.
        let mut candidates: Vec<Vec<Vec<ObjectId>>> = Vec::with_capacity(def.args.len());
        for (arg, pool) in def.args.iter().zip(&pools) {
            let mut cands: Vec<Vec<ObjectId>> = Vec::new();
            if arg.setof {
                // Group by timestamp: co-temporal selections first (they
                // satisfy `common(timestamp)` guards), then a pool prefix.
                let mut groups: BTreeMap<Option<AbsTime>, Vec<ObjectId>> = BTreeMap::new();
                for o in pool {
                    groups.entry(o.timestamp()).or_default().push(o.id);
                }
                let mut grouped: Vec<(Option<AbsTime>, Vec<ObjectId>)> =
                    groups.into_iter().collect();
                // Exact-time groups lead.
                grouped.sort_by_key(|(t, _)| (target_time.is_some() && *t != target_time, *t));
                for (_, group) in &grouped {
                    if group.len() as u64 >= arg.min_card {
                        cands.push(group[..arg.min_card as usize].to_vec());
                    }
                }
                if pool.len() as u64 >= arg.min_card {
                    let prefix: Vec<ObjectId> =
                        pool[..arg.min_card as usize].iter().map(|o| o.id).collect();
                    if !cands.contains(&prefix) {
                        cands.push(prefix);
                    }
                }
            } else {
                for o in pool {
                    cands.push(vec![o.id]);
                }
            }
            if cands.is_empty() {
                return Err(KernelError::DerivationImpossible(format!(
                    "process {}: no stored objects satisfy argument {:?} (need {} of class {})",
                    def.name,
                    arg.name,
                    arg.min_card,
                    self.catalog.class(arg.class)?.name
                )));
            }
            candidates.push(cands);
        }
        // Keys of identical prior derivations.
        let used_keys: BTreeSet<String> = self
            .catalog
            .tasks
            .values()
            .filter(|t| t.process == pid)
            .map(|t| t.dedup_key())
            .collect();
        // Walk the (bounded) cartesian product.
        let mut budget = self.binding_budget;
        let mut indices = vec![0usize; candidates.len()];
        let mut last_err: Option<KernelError> = None;
        'combos: loop {
            if budget == 0 {
                break;
            }
            budget -= 1;
            let bindings: Vec<(String, Vec<ObjectId>)> = def
                .args
                .iter()
                .zip(&indices)
                .zip(&candidates)
                .map(|((arg, idx), cands)| (arg.name.clone(), cands[*idx].clone()))
                .collect();
            // Distinct scalar args of the same class should bind distinct
            // objects (earlier/later must differ).
            let mut scalar_seen: BTreeSet<ObjectId> = BTreeSet::new();
            let mut degenerate = false;
            for (arg, (_, objs)) in def.args.iter().zip(&bindings) {
                if !arg.setof && !scalar_seen.insert(objs[0]) {
                    degenerate = true;
                }
            }
            if !degenerate {
                let key = dedup_key_for(pid, &bindings);
                if exclude.contains(&key) {
                    // This derivation was already consumed by the current
                    // plan; a repetition must find different inputs.
                } else if used_keys.contains(&key) {
                    if self.reuse_tasks {
                        // Memoization: an identical task exists; reuse it.
                        if let Some(prior) = self
                            .catalog
                            .tasks
                            .values()
                            .find(|t| t.dedup_key() == key)
                        {
                            return Ok(TaskRun {
                                task: prior.id,
                                outputs: prior.outputs.clone(),
                            });
                        }
                    }
                    // Avoid repeating a derivation: try the next binding.
                } else {
                    let owned: Vec<(String, Vec<ObjectId>)> = bindings;
                    match executor::run_process(
                        &mut self.db,
                        &mut self.catalog,
                        &self.registry,
                        &self.externals,
                        pid,
                        &owned,
                        &self.user.clone(),
                    ) {
                        Ok(run) => return Ok(run),
                        Err(e @ KernelError::AssertionFailed { .. }) => {
                            last_err = Some(e); // guard rejected: next binding
                        }
                        Err(other) => return Err(other),
                    }
                }
            }
            // Advance the product.
            for i in (0..indices.len()).rev() {
                indices[i] += 1;
                if indices[i] < candidates[i].len() {
                    continue 'combos;
                }
                indices[i] = 0;
                if i == 0 {
                    break 'combos;
                }
            }
            if indices.iter().all(|i| *i == 0) {
                break;
            }
        }
        Err(last_err.unwrap_or_else(|| {
            KernelError::DerivationImpossible(format!(
                "process {}: no admissible input binding found",
                def.name
            ))
        }))
    }

    // ------------------------------------------------------------------
    // Lineage (§4.2)
    // ------------------------------------------------------------------

    /// Derivation tree of an object.
    pub fn lineage(&self, obj: ObjectId) -> KernelResult<lineage::DerivationNode> {
        lineage::derivation_tree(&self.catalog, obj, 64)
    }

    /// Structural comparison of two objects' derivations.
    pub fn same_derivation(&self, a: ObjectId, b: ObjectId) -> KernelResult<bool> {
        lineage::same_derivation(&self.catalog, a, b)
    }

    /// Transitive input objects.
    pub fn ancestors(&self, obj: ObjectId) -> KernelResult<Vec<ObjectId>> {
        lineage::ancestors(&self.catalog, obj)
    }

    /// Objects transitively derived from `obj`.
    pub fn descendants(&self, obj: ObjectId) -> Vec<ObjectId> {
        lineage::descendants(&self.catalog, obj)
    }

    /// Duplicate derivations on record.
    pub fn duplicate_tasks(&self) -> Vec<Vec<TaskId>> {
        lineage::duplicate_tasks(&self.catalog)
    }

    // ------------------------------------------------------------------
    // Experiments (§2.1.1)
    // ------------------------------------------------------------------

    /// Record an experiment over existing tasks.
    pub fn record_experiment(
        &mut self,
        name: &str,
        description: &str,
        tasks: Vec<TaskId>,
    ) -> KernelResult<ExperimentId> {
        for t in &tasks {
            self.catalog.task(*t)?;
        }
        let id = ExperimentId(self.db.allocate_oid());
        self.catalog.add_experiment(Experiment {
            id,
            name: name.into(),
            description: description.into(),
            user: self.user.clone(),
            tasks,
        })?;
        Ok(id)
    }

    /// Reproduce an experiment: re-evaluate every recorded task against its
    /// recorded inputs and compare the regenerated attributes with the
    /// stored outputs by value identity. Nothing is mutated.
    ///
    /// Interactive tasks replay *without the scientist* — their answers are
    /// on record. External tasks replay only while their site is reachable;
    /// manual (non-applicative) tasks are by definition not replayable.
    /// Both cases are reported in [`Reproduction::not_replayable`] rather
    /// than counted as divergence.
    pub fn reproduce_experiment(&self, name: &str) -> KernelResult<Reproduction> {
        let exp = self.catalog.experiment_by_name(name)?.clone();
        let mut rerun = 0usize;
        let mut matching = 0usize;
        let mut divergences = Vec::new();
        let mut not_replayable = Vec::new();
        for task_id in &exp.tasks {
            let task = self.catalog.task(*task_id)?.clone();
            let tally = |outcome: KernelResult<bool>, rerun: &mut usize, matching: &mut usize, divergences: &mut Vec<String>| {
                *rerun += 1;
                match outcome {
                    Ok(true) => *matching += 1,
                    Ok(false) => {
                        divergences.push(format!("{}: regenerated output differs", task.id))
                    }
                    Err(e) => divergences.push(format!("{}: replay failed: {e}", task.id)),
                }
            };
            match task.kind {
                TaskKind::Compound => {
                    // Children are verified individually when listed; the
                    // umbrella itself computes nothing.
                    continue;
                }
                TaskKind::Primitive | TaskKind::Interactive => {
                    tally(self.replay_primitive(&task), &mut rerun, &mut matching, &mut divergences);
                }
                TaskKind::Interpolation => {
                    tally(self.replay_interpolation(&task), &mut rerun, &mut matching, &mut divergences);
                }
                TaskKind::External => {
                    let site_name = task
                        .params
                        .get("site")
                        .and_then(Value::as_str)
                        .unwrap_or("<unrecorded>")
                        .to_string();
                    if self.externals.reachable_site(&site_name).is_some() {
                        tally(self.replay_external(&task, &site_name), &mut rerun, &mut matching, &mut divergences);
                    } else {
                        not_replayable.push(format!(
                            "{}: site {site_name:?} is not available",
                            task.id
                        ));
                    }
                }
                TaskKind::Manual => {
                    not_replayable.push(format!(
                        "{}: non-applicative procedure ({})",
                        task.id,
                        task.params
                            .get("procedure")
                            .and_then(Value::as_str)
                            .unwrap_or("unspecified")
                    ));
                }
            }
        }
        Ok(Reproduction {
            tasks_rerun: rerun,
            matching,
            divergences,
            not_replayable,
        })
    }

    fn replay_primitive(&self, task: &Task) -> KernelResult<bool> {
        let def = self.catalog.process(task.process)?;
        let mut bound: BTreeMap<String, Binding> = BTreeMap::new();
        for arg in &def.args {
            let objs = task.inputs.get(&arg.name).ok_or_else(|| {
                KernelError::Template(format!(
                    "task {} lacks recorded input {:?}",
                    task.id, arg.name
                ))
            })?;
            let loaded: KernelResult<Vec<DataObject>> = objs
                .iter()
                .map(|o| executor::load_object(&self.db, &self.catalog, *o))
                .collect();
            let loaded = loaded?;
            bound.insert(
                arg.name.clone(),
                if arg.setof {
                    Binding::Many(loaded)
                } else {
                    Binding::One(loaded.into_iter().next().ok_or_else(|| {
                        KernelError::Template(format!("task {}: empty scalar input", task.id))
                    })?)
                },
            );
        }
        let ctx = EvalContext {
            bindings: &bound,
            registry: &self.registry,
            // Interactive tasks recorded their answers; plain primitives
            // recorded nothing — either way the task knows its parameters.
            params: &task.params,
        };
        ctx.check_assertions(&def.name, &def.template)?;
        let regenerated = ctx.eval_mappings(&def.template)?;
        // Compare against each recorded output.
        for out in &task.outputs {
            let stored = executor::load_object(&self.db, &self.catalog, *out)?;
            for (attr, value) in &regenerated {
                if stored.attr(attr) != Some(value) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Re-dispatch an external task to its (reachable) site and compare.
    fn replay_external(&self, task: &Task, site_name: &str) -> KernelResult<bool> {
        let def = self.catalog.process(task.process)?;
        let mut inputs: ExternalInputs = BTreeMap::new();
        for (name, objs) in &task.inputs {
            let loaded: KernelResult<Vec<DataObject>> = objs
                .iter()
                .map(|o| executor::load_object(&self.db, &self.catalog, *o))
                .collect();
            inputs.insert(name.clone(), loaded?);
        }
        let site = self
            .externals
            .reachable_site(site_name)
            .ok_or_else(|| KernelError::SiteUnavailable {
                site: site_name.to_string(),
                process: def.name.clone(),
            })?;
        let regenerated = site.execute(def, &inputs)?;
        for out in &task.outputs {
            let stored = executor::load_object(&self.db, &self.catalog, *out)?;
            for (attr, value) in &regenerated {
                if stored.attr(attr) != Some(value) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    fn replay_interpolation(&self, task: &Task) -> KernelResult<bool> {
        let earlier = task
            .inputs
            .get("earlier")
            .and_then(|v| v.first())
            .ok_or_else(|| KernelError::Template("interp task lacks earlier".into()))?;
        let later = task
            .inputs
            .get("later")
            .and_then(|v| v.first())
            .ok_or_else(|| KernelError::Template("interp task lacks later".into()))?;
        let at = task
            .params
            .get("at")
            .and_then(Value::as_abstime)
            .ok_or_else(|| KernelError::Template("interp task lacks `at` param".into()))?;
        let e = executor::load_object(&self.db, &self.catalog, *earlier)?;
        let l = executor::load_object(&self.db, &self.catalog, *later)?;
        let img = gaea_raster::interp::temporal_interp(
            e.attr("data")
                .and_then(Value::as_image)
                .ok_or_else(|| KernelError::Template("earlier lacks image data".into()))?,
            e.timestamp()
                .ok_or_else(|| KernelError::Template("earlier lacks timestamp".into()))?,
            l.attr("data")
                .and_then(Value::as_image)
                .ok_or_else(|| KernelError::Template("later lacks image data".into()))?,
            l.timestamp()
                .ok_or_else(|| KernelError::Template("later lacks timestamp".into()))?,
            at,
        )?;
        for out in &task.outputs {
            let stored = executor::load_object(&self.db, &self.catalog, *out)?;
            if stored.attr("data") != Some(&Value::image(img.clone())) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Derivation-net access & snapshots
    // ------------------------------------------------------------------

    /// The current derivation diagram.
    pub fn derivation_net(&self) -> DerivationNet {
        DerivationNet::build(&self.catalog)
    }

    /// The whole catalog rendered as DDL text (§4.2 browsing).
    pub fn describe(&self) -> String {
        crate::report::schema_ddl(&self.catalog)
    }

    /// An object's derivation tree as Graphviz DOT.
    pub fn lineage_dot(&self, obj: ObjectId) -> KernelResult<String> {
        crate::report::lineage_dot(&self.catalog, obj)
    }

    /// The derivation diagram as Graphviz DOT, annotated with current
    /// stored-object counts as the marking.
    pub fn derivation_dot(&self) -> KernelResult<String> {
        let dnet = self.derivation_net();
        let mut counts = BTreeMap::new();
        for (cid, def) in &self.catalog.classes {
            let n = self.db.relation(&def.relation_name())?.len() as u64;
            counts.insert(*cid, n);
        }
        let marking = dnet.marking(&counts);
        Ok(gaea_petri::dot::to_dot(&dnet.net, Some(&marking)))
    }

    /// Structural comparison of two recorded experiments.
    pub fn compare_experiments(
        &self,
        a: &str,
        b: &str,
    ) -> KernelResult<crate::report::ExperimentDiff> {
        let ea = self.catalog.experiment_by_name(a)?.id;
        let eb = self.catalog.experiment_by_name(b)?.id;
        crate::report::compare_experiments(&self.catalog, ea, eb)
    }

    /// Save the database and catalog under `dir`.
    pub fn save(&self, dir: &Path) -> KernelResult<()> {
        gaea_store::snapshot::save(&self.db, dir)?;
        let json = serde_json::to_string(&self.catalog)
            .map_err(|e| KernelError::Store(gaea_store::StoreError::Codec(e.to_string())))?;
        std::fs::write(dir.join("catalog.json"), json)
            .map_err(|e| KernelError::Store(gaea_store::StoreError::Io(e.to_string())))?;
        Ok(())
    }

    /// Load a kernel saved by [`Gaea::save`].
    pub fn load(dir: &Path) -> KernelResult<Gaea> {
        let db = gaea_store::snapshot::load(dir)?;
        let raw = std::fs::read_to_string(dir.join("catalog.json"))
            .map_err(|e| KernelError::Store(gaea_store::StoreError::Io(e.to_string())))?;
        let catalog: Catalog = serde_json::from_str(&raw)
            .map_err(|e| KernelError::Store(gaea_store::StoreError::Codec(e.to_string())))?;
        let mut registry = OperatorRegistry::with_builtins();
        gaea_raster::register_raster_ops(&mut registry)
            .expect("raster operator registration is internally consistent");
        Ok(Gaea {
            db,
            catalog,
            registry,
            // Sites describe the environment, not the catalog: they are
            // re-registered by the application after a load.
            externals: ExternalRegistry::new(),
            user: "scientist".into(),
            reuse_tasks: true,
            binding_budget: 32,
        })
    }
}

fn dedup_key_for(pid: ProcessId, bindings: &[(String, Vec<ObjectId>)]) -> String {
    let mut key = format!("p{}", pid.raw());
    for (arg, objs) in bindings {
        key.push_str(&format!(
            ";{arg}={}",
            objs.iter()
                .map(|o| o.raw().to_string())
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{Expr, Mapping};
    use gaea_adt::{GeoBox, Image, PixType, TimeRange, TypeTag};

    fn africa() -> GeoBox {
        GeoBox::new(-20.0, -35.0, 55.0, 38.0)
    }

    fn day(y: i64, m: u32, d: u32) -> AbsTime {
        AbsTime::from_ymd(y, m, d).unwrap()
    }

    /// A kernel with the Figure 3 schema: tm (base) --P20--> landcover.
    fn p20_kernel() -> Gaea {
        let mut g = Gaea::in_memory();
        g.define_class(
            ClassSpec::base("tm")
                .attr("data", TypeTag::Image)
                .doc("Rectified Landsat TM"),
        )
        .unwrap();
        g.define_class(
            ClassSpec::derived("landcover")
                .attr("data", TypeTag::Image)
                .attr("numclass", TypeTag::Int4)
                .doc("Land cover"),
        )
        .unwrap();
        let template = Template {
            assertions: vec![
                Expr::eq(Expr::Card(Box::new(Expr::Arg("bands".into()))), Expr::int(3)),
                Expr::Common(Box::new(Expr::proj("bands", "spatialextent"))),
                Expr::Common(Box::new(Expr::proj("bands", "timestamp"))),
            ],
            mappings: vec![
                Mapping {
                    attr: "data".into(),
                    expr: Expr::apply(
                        "unsuperclassify",
                        vec![
                            Expr::apply("composite", vec![Expr::Arg("bands".into())]),
                            Expr::int(12),
                        ],
                    ),
                },
                Mapping {
                    attr: "numclass".into(),
                    expr: Expr::int(12),
                },
                Mapping {
                    attr: SPATIAL_ATTR.into(),
                    expr: Expr::AnyOf(Box::new(Expr::proj("bands", "spatialextent"))),
                },
                Mapping {
                    attr: TEMPORAL_ATTR.into(),
                    expr: Expr::AnyOf(Box::new(Expr::proj("bands", "timestamp"))),
                },
            ],
        };
        g.define_process(
            ProcessSpec::new("P20", "landcover")
                .setof_arg("bands", "tm", 3)
                .template(template)
                .doc("unsupervised classification (Figure 3)"),
        )
        .unwrap();
        g
    }

    fn insert_band(g: &mut Gaea, fill: f64, t: AbsTime) -> ObjectId {
        g.insert_object(
            "tm",
            vec![
                (
                    "data",
                    Value::image(Image::filled(8, 8, PixType::Float8, fill)),
                ),
                (SPATIAL_ATTR, Value::GeoBox(africa())),
                (TEMPORAL_ATTR, Value::AbsTime(t)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure3_process_runs_and_records_task() {
        let mut g = p20_kernel();
        let t0 = day(1986, 1, 15);
        let bands: Vec<ObjectId> = (0..3)
            .map(|i| insert_band(&mut g, 10.0 + i as f64 * 50.0, t0))
            .collect();
        let run = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
        assert_eq!(run.outputs.len(), 1);
        let out = g.object(run.outputs[0]).unwrap();
        assert_eq!(out.attr("numclass"), Some(&Value::Int4(12)));
        assert_eq!(out.spatial_extent(), Some(africa()));
        assert_eq!(out.timestamp(), Some(t0));
        let task = g.task(run.task).unwrap();
        assert_eq!(task.process_name, "P20");
        assert_eq!(task.inputs["bands"], bands);
        assert_eq!(task.outputs, run.outputs);
    }

    #[test]
    fn assertions_guard_execution() {
        let mut g = p20_kernel();
        let t0 = day(1986, 1, 15);
        let b1 = insert_band(&mut g, 1.0, t0);
        let b2 = insert_band(&mut g, 2.0, t0);
        // card(bands) = 3 fails with two bands (binding validation catches
        // the min_card first).
        assert!(g.run_process("P20", &[("bands", vec![b1, b2])]).is_err());
        // Mixed timestamps fail the common(timestamp) guard.
        let b3 = insert_band(&mut g, 3.0, day(1987, 1, 15));
        let err = g
            .run_process("P20", &[("bands", vec![b1, b2, b3])])
            .unwrap_err();
        assert!(matches!(err, KernelError::AssertionFailed { .. }), "{err}");
    }

    #[test]
    fn query_step1_retrieval() {
        let mut g = p20_kernel();
        let t0 = day(1986, 1, 15);
        for i in 0..3 {
            insert_band(&mut g, i as f64, t0);
        }
        let q = Query::class("tm").over(africa()).at(t0);
        let out = g.query(&q).unwrap();
        assert_eq!(out.method, QueryMethod::Retrieved);
        assert_eq!(out.objects.len(), 3);
        assert!(out.tasks.is_empty());
    }

    #[test]
    fn query_step3_derivation() {
        // The paper's running example: "the derivation of the land use
        // classification for January 1986 for Africa [...] translates into
        // the retrieval of the proper Landsat TM spatio-temporal objects,
        // followed by the application of the unsupervised classification
        // process (P20)."
        let mut g = p20_kernel();
        let t0 = day(1986, 1, 15);
        for i in 0..3 {
            insert_band(&mut g, 10.0 + i as f64 * 40.0, t0);
        }
        let q = Query::class("landcover").over(africa()).at(t0);
        let out = g.query(&q).unwrap();
        assert_eq!(out.method, QueryMethod::Derived);
        assert_eq!(out.objects.len(), 1);
        assert_eq!(out.tasks.len(), 1);
        assert_eq!(out.objects[0].attr("numclass"), Some(&Value::Int4(12)));
        // The derived object is now stored: the same query is a retrieval.
        let again = g.query(&q).unwrap();
        assert_eq!(again.method, QueryMethod::Retrieved);
    }

    #[test]
    fn query_retrieve_only_strategy_fails_without_data() {
        let mut g = p20_kernel();
        let q = Query::class("landcover").with_strategy(QueryStrategy::RetrieveOnly);
        assert!(matches!(g.query(&q), Err(KernelError::NoData(_))));
    }

    #[test]
    fn query_derivation_impossible_without_base_data() {
        let mut g = p20_kernel();
        let t0 = day(1986, 1, 15);
        insert_band(&mut g, 1.0, t0); // only one band; P20 needs 3
        let q = Query::class("landcover").with_strategy(QueryStrategy::PreferDerivation);
        let err = g.query(&q).unwrap_err();
        assert!(err.to_string().contains("tm"), "{err}");
    }

    #[test]
    fn query_step2_interpolation() {
        let mut g = p20_kernel();
        // Two tm snapshots at day 0 and day 10; ask for day 5.
        let t1 = day(1988, 6, 1);
        let t2 = AbsTime(t1.0 + 10 * 86_400);
        let tq = AbsTime(t1.0 + 5 * 86_400);
        insert_band(&mut g, 0.0, t1);
        insert_band(&mut g, 10.0, t2);
        let q = Query::class("tm").over(africa()).at(tq);
        let out = g.query(&q).unwrap();
        assert_eq!(out.method, QueryMethod::Interpolated);
        let img = out.objects[0].attr("data").unwrap().as_image().unwrap();
        assert_eq!(img.get(0, 0), 5.0);
        assert_eq!(out.objects[0].timestamp(), Some(tq));
        // The interpolation was recorded as a task.
        assert_eq!(out.tasks.len(), 1);
        let task = g.task(out.tasks[0]).unwrap();
        assert_eq!(task.kind, TaskKind::Interpolation);
        assert_eq!(task.params["at"], Value::AbsTime(tq));
    }

    #[test]
    fn lineage_tree_and_comparison() {
        let mut g = p20_kernel();
        let t0 = day(1986, 1, 15);
        let bands: Vec<ObjectId> = (0..3)
            .map(|i| insert_band(&mut g, 10.0 + i as f64 * 50.0, t0))
            .collect();
        let run = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
        let tree = g.lineage(run.outputs[0]).unwrap();
        assert_eq!(tree.depth(), 2);
        assert_eq!(tree.size(), 4); // output + 3 bands
        assert_eq!(tree.via.as_ref().unwrap().1, "P20");
        assert!(tree.inputs.iter().all(|n| n.via.is_none()));
        let sig = tree.signature();
        assert_eq!(sig, "P20(base:tm,base:tm,base:tm)");
        // A base band's lineage is a leaf.
        let leaf = g.lineage(bands[0]).unwrap();
        assert_eq!(leaf.depth(), 1);
        // Ancestors/descendants.
        assert_eq!(g.ancestors(run.outputs[0]).unwrap().len(), 3);
        assert_eq!(g.descendants(bands[0]), run.outputs);
    }

    #[test]
    fn memoization_reuses_identical_derivations() {
        let mut g = p20_kernel();
        let t0 = day(1986, 1, 15);
        for i in 0..3 {
            insert_band(&mut g, 10.0 + i as f64 * 40.0, t0);
        }
        let q = Query::class("landcover").at(t0).with_strategy(QueryStrategy::PreferDerivation);
        let first = g.query(&q).unwrap();
        assert_eq!(first.method, QueryMethod::Derived);
        let tasks_before = g.catalog().tasks.len();
        // Delete nothing; ask again — retrieval answers. Force derivation
        // path by querying a fresh-but-identical binding via run-level API:
        let no_exclude = BTreeSet::new();
        let run1 = g
            .fire_with_chosen_bindings(
                g.catalog.process_by_name("P20").unwrap().id,
                &q,
                &no_exclude,
            )
            .unwrap();
        // Reuse: no new task was created.
        assert_eq!(g.catalog().tasks.len(), tasks_before);
        assert_eq!(first.tasks[0], run1.task);
        // A plan that already consumed this derivation (exclude set) cannot
        // reuse it and finds no alternative binding.
        let mut exclude = BTreeSet::new();
        exclude.insert(g.catalog.task(run1.task).unwrap().dedup_key());
        let err = g
            .fire_with_chosen_bindings(
                g.catalog.process_by_name("P20").unwrap().id,
                &q,
                &exclude,
            )
            .unwrap_err();
        assert!(matches!(err, KernelError::DerivationImpossible(_)));
        // With reuse disabled the kernel refuses to duplicate silently —
        // it looks for a *different* binding and reports there is none.
        g.reuse_tasks = false;
        let err = g
            .fire_with_chosen_bindings(
                g.catalog.process_by_name("P20").unwrap().id,
                &q,
                &no_exclude,
            )
            .unwrap_err();
        assert!(matches!(err, KernelError::DerivationImpossible(_)));
    }

    #[test]
    fn duplicate_task_detection() {
        let mut g = p20_kernel();
        let t0 = day(1986, 1, 15);
        let bands: Vec<ObjectId> = (0..3)
            .map(|i| insert_band(&mut g, 10.0 + i as f64 * 50.0, t0))
            .collect();
        g.run_process("P20", &[("bands", bands.clone())]).unwrap();
        assert!(g.duplicate_tasks().is_empty());
        g.run_process("P20", &[("bands", bands)]).unwrap();
        let dups = g.duplicate_tasks();
        assert_eq!(dups.len(), 1);
        assert_eq!(dups[0].len(), 2);
    }

    #[test]
    fn experiment_reproduction_is_faithful() {
        let mut g = p20_kernel();
        let t0 = day(1986, 1, 15);
        let bands: Vec<ObjectId> = (0..3)
            .map(|i| insert_band(&mut g, 10.0 + i as f64 * 50.0, t0))
            .collect();
        let run = g.run_process("P20", &[("bands", bands)]).unwrap();
        g.record_experiment("jan86_africa", "land use Jan 1986", vec![run.task])
            .unwrap();
        let rep = g.reproduce_experiment("jan86_africa").unwrap();
        assert!(rep.is_faithful(), "{rep:?}");
        assert_eq!(rep.tasks_rerun, 1);
        // Unknown experiment errors.
        assert!(g.reproduce_experiment("nope").is_err());
    }

    #[test]
    fn concept_queries_fan_out_over_members() {
        let mut g = p20_kernel();
        g.define_concept(
            "land_cover_concept",
            &["landcover"],
            &[],
            "land cover classifications however derived",
        )
        .unwrap();
        let t0 = day(1986, 1, 15);
        for i in 0..3 {
            insert_band(&mut g, 10.0 + i as f64 * 40.0, t0);
        }
        let q = Query::concept("land_cover_concept")
            .at(t0)
            .with_strategy(QueryStrategy::PreferDerivation);
        let out = g.query(&q).unwrap();
        assert_eq!(out.method, QueryMethod::Derived);
        assert_eq!(out.objects.len(), 1);
    }

    #[test]
    fn definition_validation_errors() {
        let mut g = p20_kernel();
        // Unknown output class.
        assert!(g
            .define_process(ProcessSpec::new("bad", "nope").arg("x", "tm"))
            .is_err());
        // Deriving into a base class.
        assert!(g
            .define_process(ProcessSpec::new("bad", "tm").arg("x", "landcover"))
            .is_err());
        // Undeclared template argument.
        let spec = ProcessSpec::new("bad", "landcover")
            .arg("x", "tm")
            .template(Template {
                assertions: vec![],
                mappings: vec![Mapping {
                    attr: "numclass".into(),
                    expr: Expr::Card(Box::new(Expr::Arg("ghost".into()))),
                }],
            });
        assert!(g.define_process(spec).is_err());
        // Unknown mapped attribute.
        let spec = ProcessSpec::new("bad", "landcover")
            .arg("x", "tm")
            .template(Template {
                assertions: vec![],
                mappings: vec![Mapping {
                    attr: "ghost_attr".into(),
                    expr: Expr::int(1),
                }],
            });
        assert!(g.define_process(spec).is_err());
        // Duplicate process name.
        assert!(g
            .define_process(ProcessSpec::new("P20", "landcover").arg("x", "tm"))
            .is_err());
    }

    #[test]
    fn interactive_definition_validation() {
        let mut g = p20_kernel();
        // Template references a parameter no interaction declares.
        let spec = ProcessSpec::new("bad", "landcover")
            .arg("x", "tm")
            .template(Template {
                assertions: vec![],
                mappings: vec![Mapping {
                    attr: "numclass".into(),
                    expr: Expr::param("k"),
                }],
            });
        let err = g.define_process(spec).unwrap_err();
        assert!(err.to_string().contains("undeclared parameter"), "{err}");
        // Duplicate interaction parameter names.
        let spec = ProcessSpec::new("bad", "landcover")
            .arg("x", "tm")
            .interact("k", "pick k", gaea_adt::TypeTag::Int4)
            .interact("k", "pick k again", gaea_adt::TypeTag::Int4);
        let err = g.define_process(spec).unwrap_err();
        assert!(err.to_string().contains("declared twice"), "{err}");
        // Preview referencing an undeclared argument.
        let spec = ProcessSpec::new("bad", "landcover")
            .arg("x", "tm")
            .interact_preview(
                "k",
                "pick",
                gaea_adt::TypeTag::Int4,
                Expr::Arg("ghost".into()),
            );
        let err = g.define_process(spec).unwrap_err();
        assert!(err.to_string().contains("undeclared argument"), "{err}");
        // Preview using a parameter answered only later.
        let spec = ProcessSpec::new("bad", "landcover")
            .arg("x", "tm")
            .interact_preview(
                "first",
                "uses the second answer",
                gaea_adt::TypeTag::Int4,
                Expr::param("second"),
            )
            .interact("second", "too late", gaea_adt::TypeTag::Int4);
        let err = g.define_process(spec).unwrap_err();
        assert!(err.to_string().contains("not answered yet"), "{err}");
        // A preview may use *earlier* answers.
        let spec = ProcessSpec::new("ok_chain", "landcover")
            .arg("x", "tm")
            .interact("first", "a number", gaea_adt::TypeTag::Int4)
            .interact_preview(
                "second",
                "shown the first answer",
                gaea_adt::TypeTag::Int4,
                Expr::param("first"),
            )
            .template(Template {
                assertions: vec![],
                mappings: vec![Mapping {
                    attr: "numclass".into(),
                    expr: Expr::param("second"),
                }],
            });
        g.define_process(spec).unwrap();
        // Declared-but-unreferenced interactions are allowed: the answer is
        // recorded for reproduction even if no mapping consumes it.
        let spec = ProcessSpec::new("ok_extra", "landcover")
            .arg("x", "tm")
            .interact("ack", "confirm visual check", gaea_adt::TypeTag::Bool)
            .template(Template {
                assertions: vec![],
                mappings: vec![Mapping {
                    attr: "numclass".into(),
                    expr: Expr::int(1),
                }],
            });
        g.define_process(spec).unwrap();
    }

    #[test]
    fn chained_interactions_preview_earlier_answers() {
        let mut g = p20_kernel();
        let spec = ProcessSpec::new("P_chain", "landcover")
            .arg("x", "tm")
            .interact("first", "a number", gaea_adt::TypeTag::Int4)
            .interact_preview(
                "second",
                "shown the first answer",
                gaea_adt::TypeTag::Int4,
                Expr::param("first"),
            )
            .template(Template {
                assertions: vec![],
                mappings: vec![Mapping {
                    attr: "numclass".into(),
                    expr: Expr::param("second"),
                }],
            });
        g.define_process(spec).unwrap();
        let t0 = day(1986, 1, 15);
        let b = insert_band(&mut g, 1.0, t0);
        let mut session = g.begin_interactive("P_chain", &[("x", vec![b])]).unwrap();
        // First point has no preview.
        assert!(g.interaction_preview(&session).unwrap().is_none());
        session.supply(Value::Int4(7)).unwrap();
        // Second point previews the first answer.
        assert_eq!(
            g.interaction_preview(&session).unwrap(),
            Some(Value::Int4(7))
        );
        session.supply(Value::Int4(9)).unwrap();
        let run = g.finish_interactive(session).unwrap();
        let out = g.object(run.outputs[0]).unwrap();
        assert_eq!(out.attr("numclass"), Some(&Value::Int4(9)));
        let task = g.task(run.task).unwrap();
        assert_eq!(task.params["first"], Value::Int4(7));
        assert_eq!(task.params["second"], Value::Int4(9));
    }

    #[test]
    fn save_load_round_trip() {
        let mut g = p20_kernel();
        let t0 = day(1986, 1, 15);
        let bands: Vec<ObjectId> = (0..3)
            .map(|i| insert_band(&mut g, 10.0 + i as f64 * 50.0, t0))
            .collect();
        let run = g.run_process("P20", &[("bands", bands)]).unwrap();
        g.record_experiment("e1", "classification", vec![run.task])
            .unwrap();
        let dir = std::env::temp_dir().join(format!("gaea-kernel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        g.save(&dir).unwrap();
        let loaded = Gaea::load(&dir).unwrap();
        // Catalog survived.
        assert!(loaded.catalog().process_by_name("P20").is_ok());
        assert_eq!(loaded.count_objects("tm").unwrap(), 3);
        assert_eq!(loaded.count_objects("landcover").unwrap(), 1);
        // Reproduction still works on the loaded kernel.
        let rep = loaded.reproduce_experiment("e1").unwrap();
        assert!(rep.is_faithful());
        // Lineage survived.
        let out = loaded.objects_of("landcover").unwrap()[0];
        assert_eq!(loaded.lineage(out).unwrap().size(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn time_window_queries() {
        let mut g = p20_kernel();
        insert_band(&mut g, 1.0, day(1986, 1, 10));
        insert_band(&mut g, 2.0, day(1986, 2, 10));
        insert_band(&mut g, 3.0, day(1987, 1, 10));
        let jan86 = TimeRange::new(day(1986, 1, 1), day(1986, 1, 31));
        let q = Query::class("tm").during(jan86);
        let out = g.query(&q).unwrap();
        assert_eq!(out.objects.len(), 1);
        let y86 = TimeRange::new(day(1986, 1, 1), day(1986, 12, 31));
        let out = g.query(&Query::class("tm").during(y86)).unwrap();
        assert_eq!(out.objects.len(), 2);
    }
}
