//! The Gaea kernel facade, decomposed into the paper's semantic layers.
//!
//! [`Gaea`] owns the store, the catalog, the operator registry and the
//! derived-result cache, and *delegates* everything else to one of four
//! layer modules:
//!
//! * [`ddl`] — definition-time semantics (§2.1.2–§2.1.4): class, concept
//!   and process definition with full template validation.
//! * [`exec`] — execution semantics (§2.1.4, §4.3, §5): object CRUD,
//!   process firing, manual tasks, interactive sessions, the memoized
//!   [`cache::DerivedCache`], and MVCC staleness classification
//!   ([`Gaea::is_stale`] / [`Gaea::refresh_object`]) over the store's
//!   version counters.
//! * [`query`] — the §2.1.5 three-step query mechanism: direct retrieval
//!   → temporal interpolation → planned derivation, staged as
//!   plan / bind / fire / project; step-1 answers flag stale derived
//!   objects rather than serving them silently. The stages take their
//!   parameters from the declarative [`crate::query::Query`] plan —
//!   attribute predicates, projection, `USING` process pinning,
//!   [`crate::query::CostHint`] binding order, and `FRESH` refusal of
//!   stale answers — which `gaea-lang` compiles from the paper's
//!   `RETRIEVE … FROM … WHERE …` surface syntax (the `Retrieve` extension
//!   trait there puts a `retrieve(&str)` façade on [`Gaea`]).
//! * [`provenance`] — the §2.1.1/§4.2 history services: lineage trees,
//!   experiment recording and reproduction, duplicate detection, DOT
//!   export, and version-drift reports ([`Gaea::staleness_report`]).
//! * [`jobs`] — §5 asynchronous derivation: [`Gaea::submit_derivation`]
//!   runs external-site round-trips on background workers and commits
//!   their task records when the results arrive, so interactive queries
//!   never block on a remote process; in-flight jobs are visible to the
//!   query and refresh machinery as pending derivations.
//!
//! This file holds only the struct, its constructors/accessors, and
//! catalog persistence; every behavioural method lives in its layer.

pub mod access;
pub mod cache;
pub mod ddl;
pub mod durability;
pub mod exec;
pub mod jobs;
pub mod parallel;
pub mod provenance;
pub mod query;
pub mod readonly;
pub mod session;
mod wal_codec;

#[cfg(test)]
mod tests;

pub use access::AUTO_INDEX_THRESHOLD;
pub use cache::{CacheStats, DerivedCache, SharedCache};
pub use ddl::{ClassSpec, ProcessSpec};
pub use durability::{DurabilityOptions, RecoveryStats, WalCodec};
pub use jobs::{JobId, JobStatus};
pub use parallel::RefreshReport;
pub use provenance::{DriftedInput, StalenessReport, TaskCurrency};
pub use readonly::{PinnedJob, ReadView};
pub use session::SharedKernel;

use crate::catalog::Catalog;
use crate::error::{KernelError, KernelResult};
use crate::external::{ExternalExecutor, ExternalRegistry};
use gaea_adt::OperatorRegistry;
use gaea_sched::Scheduler;
use std::path::Path;
use std::sync::Arc;

/// The Gaea kernel.
pub struct Gaea {
    pub(crate) db: gaea_store::Database,
    pub(crate) catalog: Catalog,
    pub(crate) registry: OperatorRegistry,
    pub(crate) externals: ExternalRegistry,
    pub(crate) user: String,
    /// Memoized `(process, bindings) → outputs` results (off by default;
    /// see [`Gaea::enable_memoization`]), behind a thread-shareable
    /// handle so scheduler workers memoize concurrently.
    pub(crate) cache: SharedCache,
    /// The derivation scheduler: how many workers wave execution
    /// ([`Gaea::refresh_all`], [`Gaea::derive_parallel`], and the query
    /// pipeline's parallel fire stage) may use. Defaults to the
    /// deterministic single-threaded mode unless `GAEA_SCHED_WORKERS`
    /// says otherwise; see [`Gaea::set_workers`].
    pub(crate) scheduler: Scheduler,
    /// Background derivation jobs (§5 non-blocking external firings):
    /// the long-lived worker pool plus per-job records. Runtime state,
    /// like registered sites — not persisted. See [`Gaea::submit_derivation`].
    pub(crate) jobs: jobs::JobManager,
    /// Reuse existing identical tasks instead of re-deriving (§2.1.1:
    /// "avoid unnecessary duplication of experiments"). On by default;
    /// benchmarks toggle it to measure the memoization effect.
    pub reuse_tasks: bool,
    /// Budget of alternative input bindings tried per process firing.
    pub binding_budget: usize,
    /// The write-ahead event log, when this kernel was opened durably
    /// ([`Gaea::open`]); `None` for in-memory and snapshot-loaded
    /// kernels, which pay zero logging overhead. See [`durability`].
    pub(crate) durability: Option<durability::Durability>,
    /// What recovery did when this kernel opened durably.
    pub(crate) recovery: Option<durability::RecoveryStats>,
}

impl Gaea {
    /// Fresh in-memory kernel with the full operator set (generic builtins
    /// + the raster analysis operators, including compound `pca`/`spca`).
    pub fn in_memory() -> Gaea {
        let mut registry = OperatorRegistry::with_builtins();
        gaea_raster::register_raster_ops(&mut registry)
            .expect("raster operator registration is internally consistent");
        Gaea {
            db: gaea_store::Database::new(),
            catalog: Catalog::default(),
            registry,
            externals: ExternalRegistry::new(),
            user: "scientist".into(),
            cache: SharedCache::new(),
            scheduler: Scheduler::from_env(),
            jobs: jobs::JobManager::new(),
            reuse_tasks: true,
            binding_budget: 32,
            durability: None,
            recovery: None,
        }
    }

    /// Register (or replace) an external execution site (§5 extension).
    /// Sites describe the *current environment*, not the catalog: they are
    /// not persisted by [`Gaea::save`] and must be re-registered after
    /// [`Gaea::load`] or [`Gaea::open`] — registering is also the moment
    /// journaled in-flight jobs recovered by [`Gaea::open`] get their
    /// site back, so they re-stage here.
    pub fn register_site(&mut self, name: &str, site: Arc<dyn ExternalExecutor>) {
        self.externals.register(name, site);
        self.restage_recovered_jobs();
    }

    /// Remove an external site registration.
    pub fn unregister_site(&mut self, name: &str) -> bool {
        self.externals.unregister(name)
    }

    /// Names of the registered external sites.
    pub fn sites(&self) -> Vec<&str> {
        self.externals.names()
    }

    /// Set the current user (tasks and experiments are attributed).
    pub fn with_user(mut self, user: &str) -> Gaea {
        self.user = user.into();
        self
    }

    /// Switch the current user in place.
    pub fn set_user(&mut self, user: &str) {
        self.user = user.into();
    }

    /// Current user.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// The operator registry (immutable view).
    pub fn registry(&self) -> &OperatorRegistry {
        &self.registry
    }

    /// The operator registry, mutable — §4.2: "users are allowed to define
    /// new primitive classes and/or new operators".
    pub fn registry_mut(&mut self) -> &mut OperatorRegistry {
        &mut self.registry
    }

    /// The catalog (read-only).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Turn the derived-result cache on or off. Disabling clears it (a
    /// re-enabled cache must not serve results recorded while consumers
    /// could not observe invalidations).
    pub fn enable_memoization(&mut self, on: bool) {
        self.cache.set_enabled(on);
    }

    /// Is the derived-result cache active?
    pub fn memoization_enabled(&self) -> bool {
        self.cache.enabled()
    }

    /// Hit/miss/invalidation counters of the derived-result cache.
    pub fn memoization_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// A thread-shareable handle on the derived-result cache. Clones
    /// share the underlying cache, so scheduler workers (and stress
    /// tests) can look up, insert and invalidate concurrently with the
    /// kernel's own use.
    pub fn cache_handle(&self) -> SharedCache {
        self.cache.clone()
    }

    /// Set the derivation scheduler's worker count. `1` (the default,
    /// unless the `GAEA_SCHED_WORKERS` environment variable was set when
    /// the kernel was constructed) is the deterministic single-threaded
    /// mode, behaviourally identical to the unscheduled executor; higher
    /// counts let [`Gaea::refresh_all`], [`Gaea::derive_parallel`] and
    /// the query pipeline prepare independent firings of one wave
    /// concurrently.
    pub fn set_workers(&mut self, workers: usize) {
        self.scheduler = Scheduler::new(workers);
    }

    /// Current scheduler worker count.
    pub fn workers(&self) -> usize {
        self.scheduler.workers()
    }

    /// Save the database and catalog under `dir`.
    pub fn save(&self, dir: &Path) -> KernelResult<()> {
        gaea_store::snapshot::save(&self.db, dir)?;
        let json = serde_json::to_string(&self.catalog)
            .map_err(|e| KernelError::Store(gaea_store::StoreError::Codec(e.to_string())))?;
        std::fs::write(dir.join("catalog.json"), json)
            .map_err(|e| KernelError::Store(gaea_store::StoreError::Io(e.to_string())))?;
        Ok(())
    }

    /// Load a kernel saved by [`Gaea::save`].
    pub fn load(dir: &Path) -> KernelResult<Gaea> {
        let db = gaea_store::snapshot::load(dir)?;
        let raw = std::fs::read_to_string(dir.join("catalog.json"))
            .map_err(|e| KernelError::Store(gaea_store::StoreError::Io(e.to_string())))?;
        let mut catalog: Catalog = serde_json::from_str(&raw)
            .map_err(|e| KernelError::Store(gaea_store::StoreError::Codec(e.to_string())))?;
        // The object → producing-task index is not persisted; staleness
        // classification and lineage depend on it.
        catalog.rebuild_task_index();
        let mut registry = OperatorRegistry::with_builtins();
        gaea_raster::register_raster_ops(&mut registry)
            .expect("raster operator registration is internally consistent");
        Ok(Gaea {
            db,
            catalog,
            registry,
            // Sites describe the environment, not the catalog: they are
            // re-registered by the application after a load.
            externals: ExternalRegistry::new(),
            user: "scientist".into(),
            cache: SharedCache::new(),
            scheduler: Scheduler::from_env(),
            // Jobs are runtime state: a loaded kernel starts with none.
            jobs: jobs::JobManager::new(),
            reuse_tasks: true,
            binding_budget: 32,
            durability: None,
            recovery: None,
        })
    }
}
