//! Snapshot-pinned read-only query execution.
//!
//! A [`ReadView`] is the kernel half of an MVCC read transaction: a
//! [`gaea_store::PinnedStore`] (frozen relations + version counters)
//! paired with the catalog and the background-job listing captured at
//! the same commit point. Every statement the server classifies as
//! read-only — `RETRIEVE` without `DERIVE`/`FRESH`, `job_status`,
//! provenance/EXPLAIN reads — executes here against the pinned state,
//! holding **no** kernel lock: concurrent readers never block behind a
//! commit or behind each other, and a reader's answer is always equal to
//! some committed prefix of the write history (snapshot isolation).
//!
//! Mutating statements (DDL, `DERIVE`, `FRESH`, updates, job
//! submit/cancel) do not fit in a view by construction: [`ReadView::query`]
//! refuses them with [`KernelError::Schema`], and the session facade
//! ([`super::session::SharedKernel`]) routes them into the serialized
//! commit path instead.

use super::jobs::{JobId, JobStatus};
use super::query as qexec;
use crate::catalog::Catalog;
use crate::error::{KernelError, KernelResult};
use crate::ids::ObjectId;
use crate::object::DataObject;
use crate::query::{Query, QueryMethod, QueryOutcome, QueryStrategy};
use gaea_store::PinnedStore;
use std::sync::Arc;

/// One background job as frozen into a view: its id, status and output
/// class at pin time.
#[derive(Debug, Clone)]
pub struct PinnedJob {
    /// The job's id.
    pub id: JobId,
    /// Status at pin time.
    pub status: JobStatus,
    /// Name of the class the job derives into (pending-visibility filter).
    pub output_class: String,
}

/// A self-contained, immutable view of one committed kernel state:
/// store data, version counters, catalog, and the job board. Cheap to
/// share (`Arc` fields), safe to query from any thread, and pinned —
/// commits landing after the pin are invisible.
#[derive(Debug, Clone)]
pub struct ReadView {
    store: Arc<PinnedStore>,
    catalog: Arc<Catalog>,
    jobs: Arc<Vec<PinnedJob>>,
}

impl ReadView {
    pub(crate) fn new(store: PinnedStore, catalog: Catalog, jobs: Vec<PinnedJob>) -> ReadView {
        ReadView {
            store: Arc::new(store),
            catalog: Arc::new(catalog),
            jobs: Arc::new(jobs),
        }
    }

    /// The logical-clock value this view is pinned at.
    pub fn clock(&self) -> u64 {
        self.store.clock()
    }

    /// The catalog as of the pin.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The pinned store (data + counters).
    pub fn store(&self) -> &PinnedStore {
        &self.store
    }

    /// Is this query answerable on a pinned view? Read-only means plain
    /// step-1 retrieval: no derivation strategy, no `FRESH` re-firing,
    /// no async submission — each of those commits.
    pub fn is_read_only(q: &Query) -> bool {
        q.strategy == QueryStrategy::RetrieveOnly && !q.fresh && !q.async_submit
    }

    /// Execute a read-only query against the pinned state: validate,
    /// step-1 retrieve through the optimizer's access paths as frozen at
    /// pin time, flag stale hits against the pinned counters, then
    /// order/limit/project. The `pending` list is the pinned job board
    /// filtered to the target classes — consistent with the same commit
    /// point as the data.
    ///
    /// A query that is not read-only ([`ReadView::is_read_only`]) is
    /// refused with [`KernelError::Schema`]; route it through the
    /// serialized commit path instead.
    pub fn query(&self, q: &Query) -> KernelResult<QueryOutcome> {
        let tracer = gaea_obs::start_trace("query", q.target.name());
        let mut result = self.query_stages(q);
        if let Ok(outcome) = &mut result {
            if let Some(trace) = tracer.finish() {
                crate::query::apply_trace(outcome, &trace);
            }
        }
        result
    }

    /// The staged body of [`ReadView::query`], one span per pipeline
    /// stage so the tracer's depth-1 laps tile the statement.
    fn query_stages(&self, q: &Query) -> KernelResult<QueryOutcome> {
        if !Self::is_read_only(q) {
            return Err(KernelError::Schema(
                "query needs the commit path (DERIVE/FRESH/ASYNC): \
                 a snapshot-pinned view only answers plain retrieval"
                    .into(),
            ));
        }
        let classes = {
            let _plan = gaea_obs::span("plan");
            let classes = qexec::target_classes_in(&self.catalog, q)?;
            qexec::validate_query_in(&self.catalog, &classes, q)?;
            classes
        };
        let (hits, plans, stale) = {
            let _retrieve = gaea_obs::span("retrieve");
            let (hits, plans) = qexec::retrieve_in(self.store.db(), &self.catalog, &classes, q)?;
            for p in &plans {
                gaea_obs::note("path", p.to_string());
            }
            let stale = qexec::flag_stale_in(self.store.db(), &self.catalog, &hits);
            (hits, plans, stale)
        };
        if hits.is_empty() {
            return Err(KernelError::NoData(format!(
                "classes {classes:?} hold no matching objects; \
                 strategy forbids computation"
            )));
        }
        let _project = gaea_obs::span("project");
        let mut outcome = QueryOutcome {
            objects: hits,
            method: QueryMethod::Retrieved,
            tasks: vec![],
            stale,
            pending: vec![],
            plans,
            profile: None,
        };
        qexec::order_limit_project(&mut outcome, q);
        outcome.pending = self.pending_jobs_for(&classes);
        Ok(outcome)
    }

    /// Load one stored object from the pinned state.
    pub fn object(&self, oid: ObjectId) -> KernelResult<DataObject> {
        crate::derivation::executor::load_object(self.store.db(), &self.catalog, oid)
    }

    /// Is a stored object stale as of the pin (recorded derivation
    /// inputs mutated after it was derived, judged entirely against the
    /// pinned counters)?
    pub fn is_stale(&self, oid: ObjectId) -> bool {
        let mut memo = super::exec::StaleMemo::new();
        super::exec::object_is_stale(self.store.db(), &self.catalog, oid, &mut memo)
    }

    /// Status of a background job as of the pin. `None` for a job id the
    /// pinned state had never seen (e.g. submitted after the pin).
    pub fn job_status(&self, id: JobId) -> Option<JobStatus> {
        self.jobs
            .iter()
            .find(|j| j.id == id)
            .map(|j| j.status.clone())
    }

    /// The pinned job board.
    pub fn jobs(&self) -> &[PinnedJob] {
        &self.jobs
    }

    /// Ids of jobs unresolved at pin time whose output class is among
    /// `classes` — the pinned analogue of the live `pending` listing.
    fn pending_jobs_for(&self, classes: &[String]) -> Vec<JobId> {
        self.jobs
            .iter()
            .filter(|j| !j.status.is_terminal() && classes.contains(&j.output_class))
            .map(|j| j.id)
            .collect()
    }
}

impl super::Gaea {
    /// Pin a [`ReadView`] of the current committed state: a deep copy of
    /// the store (data + counters), the catalog, and the job board, all
    /// frozen at this instant. Taken through `&self`, so the exclusive
    /// borrow discipline guarantees the copy never observes a
    /// half-applied mutation.
    ///
    /// Cost is one deep copy per call — cache the view per clock value
    /// ([`super::session::SharedKernel`] does) and re-pin only after
    /// [`super::Gaea::store_clock`] moves.
    pub fn read_view(&self) -> ReadView {
        ReadView::new(self.db.pin(), self.catalog.clone(), self.job_board())
    }

    /// The store's logical commit clock; advances with every mutation.
    pub fn store_clock(&self) -> u64 {
        self.db.version_clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ClassSpec, Gaea};
    use gaea_adt::Value;

    fn seeded() -> Gaea {
        let mut g = Gaea::in_memory();
        g.define_class(ClassSpec::base("obs").attr("v", gaea_adt::TypeTag::Int4))
            .unwrap();
        for i in 0..4 {
            g.insert_object("obs", vec![("v", Value::Int4(i))]).unwrap();
        }
        g
    }

    fn q_obs() -> Query {
        Query::class("obs").with_strategy(QueryStrategy::RetrieveOnly)
    }

    #[test]
    fn view_answers_pinned_state_only() {
        let mut g = seeded();
        let view = g.read_view();
        g.insert_object("obs", vec![("v", Value::Int4(99))])
            .unwrap();

        let pinned = view.query(&q_obs()).unwrap();
        assert_eq!(pinned.objects.len(), 4);
        let live = g.query(&q_obs()).unwrap();
        assert_eq!(live.objects.len(), 5);
        assert!(view.clock() < g.store_clock());
    }

    #[test]
    fn view_refuses_committing_queries() {
        let g = seeded();
        let view = g.read_view();
        let mut q = q_obs();
        q.fresh = true;
        assert!(matches!(view.query(&q), Err(KernelError::Schema(_))));
        let mut q = q_obs();
        q.strategy = QueryStrategy::PreferDerivation;
        assert!(matches!(view.query(&q), Err(KernelError::Schema(_))));
        let mut q = q_obs();
        q.async_submit = true;
        assert!(matches!(view.query(&q), Err(KernelError::Schema(_))));
    }

    #[test]
    fn view_empty_answer_is_nodata() {
        let mut g = Gaea::in_memory();
        g.define_class(ClassSpec::base("empty").attr("v", gaea_adt::TypeTag::Int4))
            .unwrap();
        let view = g.read_view();
        let q = Query::class("empty").with_strategy(QueryStrategy::RetrieveOnly);
        assert!(matches!(view.query(&q), Err(KernelError::NoData(_))));
    }
}
