//! The WAL record codec: versioned binary envelopes for logged events.
//!
//! Every record the durable kernel appends is one [`LoggedEvent`]
//! encoded by [`encode_logged`]; recovery decodes with
//! [`decode_logged`], which dispatches **per record** on the first
//! payload byte:
//!
//! | first byte | format                                             |
//! |-----------:|----------------------------------------------------|
//! | `0x01`     | binary v1 (this module)                            |
//! | `0x00`     | JSON envelope after an explicit format prefix      |
//! | `b'{'`     | bare JSON — logs written before the binary codec   |
//! | other      | codec error (corrupt-but-CRC-valid record)         |
//!
//! Per-record dispatch means a pre-codec log replays unchanged, and a
//! log that changes codecs mid-stream (reopened under different
//! [`WalCodec`](super::durability::WalCodec) options) replays to the
//! same state as an all-JSON one — `tests/props_wal.rs` holds both
//! properties.
//!
//! The binary layout leans on `gaea_store::codec` primitives (LEB128
//! varints, zigzag signed, fixed-width LE floats, length-prefixed
//! strings) and its [`Value`](gaea_adt::Value)/[`Tuple`] codec — object
//! payloads (images, matrices) encode as raw little-endian runs, which
//! is where the multi-× replay win over per-digit JSON comes from. The
//! hot event shapes (object CRUD, task commits, job lifecycle) are
//! fully binary; the cold DDL definition payloads (`ClassDef`,
//! `Concept`, `ProcessDef`, `Experiment`) stay as embedded JSON blobs —
//! they are rare, schema-rich and version-tolerant there, and a
//! length-prefixed blob costs one varint.

use super::durability::{Event, LoggedEvent, NewObject, WalCodec};
use crate::error::{KernelError, KernelResult};
use crate::ids::{ClassId, ObjectId, ProcessId, TaskId};
use crate::task::{Task, TaskKind};
use gaea_store::codec::{decode_tuple, decode_value, encode_tuple, encode_value, Dec, Enc};
use gaea_store::{Oid, StoreError};
use std::collections::BTreeMap;

/// Format byte of a binary v1 record.
const FORMAT_BINARY_V1: u8 = 1;
/// Format byte of an explicitly-prefixed JSON record.
const FORMAT_JSON: u8 = 0;

// Event variant tags (binary v1). Appending new variants is fine;
// renumbering existing ones breaks every log on disk.
const E_DEFINE_CLASS: u8 = 0;
const E_DEFINE_CONCEPT: u8 = 1;
const E_DEFINE_PROCESS: u8 = 2;
const E_DEFINE_EXPERIMENT: u8 = 3;
const E_CREATE_INDEX: u8 = 4;
const E_CREATE_GRID: u8 = 5;
const E_RETUNE_GRID: u8 = 6;
const E_INSERT_OBJECT: u8 = 7;
const E_UPDATE_OBJECT: u8 = 8;
const E_DELETE_OBJECT: u8 = 9;
const E_TASK_COMMIT: u8 = 10;
const E_JOB_SUBMIT: u8 = 11;
const E_JOB_RESOLVED: u8 = 12;
const E_VERSION_ADVANCE: u8 = 13;

fn err(msg: impl Into<String>) -> KernelError {
    KernelError::Store(StoreError::Codec(msg.into()))
}

/// Encode one envelope under the configured codec. JSON writes the bare
/// serde envelope — byte-identical to pre-codec logs, so a kernel
/// pinned to [`WalCodec::Json`] produces logs older builds replay.
pub(crate) fn encode_logged(logged: &LoggedEvent, codec: WalCodec) -> KernelResult<Vec<u8>> {
    match codec {
        WalCodec::Json => serde_json::to_vec(logged).map_err(|e| err(e.to_string())),
        WalCodec::Binary => {
            let mut e = Enc::with_capacity(64);
            e.u8(FORMAT_BINARY_V1);
            e.varint(logged.seq);
            e.varint(logged.next_oid);
            e.varint(logged.bumps.len() as u64);
            for (rel, ticks) in &logged.bumps {
                e.str(rel);
                e.varint(ticks.len() as u64);
                for t in ticks {
                    e.varint(*t);
                }
            }
            encode_event(&mut e, &logged.event)?;
            Ok(e.into_bytes())
        }
    }
}

/// Decode one record, whatever codec wrote it (see the module table).
pub(crate) fn decode_logged(payload: &[u8]) -> KernelResult<LoggedEvent> {
    match payload.first() {
        Some(&FORMAT_BINARY_V1) => {
            let mut d = Dec::new(&payload[1..]);
            let seq = d.varint().map_err(KernelError::Store)?;
            let next_oid = d.varint().map_err(KernelError::Store)?;
            let logged = (|| -> Result<LoggedEvent, StoreError> {
                let n = d.len(2)?;
                let mut bumps = Vec::with_capacity(n);
                for _ in 0..n {
                    let rel = d.str()?;
                    let m = d.len(1)?;
                    let mut ticks = Vec::with_capacity(m);
                    for _ in 0..m {
                        ticks.push(d.varint()?);
                    }
                    bumps.push((rel, ticks));
                }
                let event = decode_event(&mut d)?;
                Ok(LoggedEvent {
                    seq,
                    next_oid,
                    bumps,
                    event,
                })
            })()
            .map_err(KernelError::Store)?;
            if !d.is_empty() {
                return Err(err(format!(
                    "binary record (seq {}) carries {} trailing bytes",
                    logged.seq,
                    d.remaining()
                )));
            }
            Ok(logged)
        }
        Some(&FORMAT_JSON) => serde_json::from_slice(&payload[1..]).map_err(|e| err(e.to_string())),
        Some(&b'{') => serde_json::from_slice(payload).map_err(|e| err(e.to_string())),
        Some(other) => Err(err(format!("unknown wal record format byte {other}"))),
        None => Err(err("empty wal record")),
    }
}

/// A cold DDL payload: serde JSON behind a length prefix.
fn enc_json<T: serde::Serialize>(e: &mut Enc, v: &T) -> KernelResult<()> {
    let raw = serde_json::to_vec(v).map_err(|x| err(x.to_string()))?;
    e.bytes(&raw);
    Ok(())
}

fn dec_json<T: serde::Deserialize>(d: &mut Dec<'_>) -> Result<T, StoreError> {
    let raw = d.bytes()?;
    serde_json::from_slice(raw).map_err(|e| StoreError::Codec(e.to_string()))
}

/// Argument-name → object-id lists, the shape shared by task inputs and
/// job bindings.
fn enc_bindings(e: &mut Enc, bindings: &[(String, Vec<ObjectId>)]) {
    e.varint(bindings.len() as u64);
    for (arg, objs) in bindings {
        e.str(arg);
        e.varint(objs.len() as u64);
        for o in objs {
            e.varint(o.raw());
        }
    }
}

fn dec_bindings(d: &mut Dec<'_>) -> Result<Vec<(String, Vec<ObjectId>)>, StoreError> {
    let n = d.len(2)?;
    let mut bindings = Vec::with_capacity(n);
    for _ in 0..n {
        let arg = d.str()?;
        let m = d.len(1)?;
        let mut objs = Vec::with_capacity(m);
        for _ in 0..m {
            objs.push(ObjectId(Oid(d.varint()?)));
        }
        bindings.push((arg, objs));
    }
    Ok(bindings)
}

fn task_kind_tag(kind: TaskKind) -> u8 {
    match kind {
        TaskKind::Primitive => 0,
        TaskKind::Compound => 1,
        TaskKind::Interpolation => 2,
        TaskKind::Interactive => 3,
        TaskKind::External => 4,
        TaskKind::Manual => 5,
    }
}

fn task_kind_from_tag(tag: u8) -> Result<TaskKind, StoreError> {
    Ok(match tag {
        0 => TaskKind::Primitive,
        1 => TaskKind::Compound,
        2 => TaskKind::Interpolation,
        3 => TaskKind::Interactive,
        4 => TaskKind::External,
        5 => TaskKind::Manual,
        other => return Err(StoreError::Codec(format!("unknown task-kind tag {other}"))),
    })
}

fn enc_task(e: &mut Enc, t: &Task) {
    e.varint(t.id.raw());
    e.varint(t.process.raw());
    e.str(&t.process_name);
    e.varint(t.inputs.len() as u64);
    for (arg, objs) in &t.inputs {
        e.str(arg);
        e.varint(objs.len() as u64);
        for o in objs {
            e.varint(o.raw());
        }
    }
    e.varint(t.input_versions.len() as u64);
    for (obj, ver) in &t.input_versions {
        e.varint(obj.raw());
        e.varint(*ver);
    }
    e.varint(t.outputs.len() as u64);
    for o in &t.outputs {
        e.varint(o.raw());
    }
    e.varint(t.params.len() as u64);
    for (k, v) in &t.params {
        e.str(k);
        encode_value(e, v);
    }
    e.varint(t.seq);
    e.str(&t.user);
    e.u8(task_kind_tag(t.kind));
    e.varint(t.children.len() as u64);
    for c in &t.children {
        e.varint(c.raw());
    }
}

fn dec_task(d: &mut Dec<'_>) -> Result<Task, StoreError> {
    let id = TaskId(Oid(d.varint()?));
    let process = ProcessId(Oid(d.varint()?));
    let process_name = d.str()?;
    let n = d.len(2)?;
    let mut inputs = BTreeMap::new();
    for _ in 0..n {
        let arg = d.str()?;
        let m = d.len(1)?;
        let mut objs = Vec::with_capacity(m);
        for _ in 0..m {
            objs.push(ObjectId(Oid(d.varint()?)));
        }
        inputs.insert(arg, objs);
    }
    let n = d.len(2)?;
    let mut input_versions = BTreeMap::new();
    for _ in 0..n {
        let obj = ObjectId(Oid(d.varint()?));
        input_versions.insert(obj, d.varint()?);
    }
    let n = d.len(1)?;
    let mut outputs = Vec::with_capacity(n);
    for _ in 0..n {
        outputs.push(ObjectId(Oid(d.varint()?)));
    }
    let n = d.len(2)?;
    let mut params = BTreeMap::new();
    for _ in 0..n {
        let k = d.str()?;
        params.insert(k, decode_value(d)?);
    }
    let seq = d.varint()?;
    let user = d.str()?;
    let kind = task_kind_from_tag(d.u8()?)?;
    let n = d.len(1)?;
    let mut children = Vec::with_capacity(n);
    for _ in 0..n {
        children.push(TaskId(Oid(d.varint()?)));
    }
    Ok(Task {
        id,
        process,
        process_name,
        inputs,
        input_versions,
        outputs,
        params,
        seq,
        user,
        kind,
        children,
    })
}

fn encode_event(e: &mut Enc, event: &Event) -> KernelResult<()> {
    match event {
        Event::DefineClass { def } => {
            e.u8(E_DEFINE_CLASS);
            enc_json(e, def)?;
        }
        Event::DefineConcept { def } => {
            e.u8(E_DEFINE_CONCEPT);
            enc_json(e, def)?;
        }
        Event::DefineProcess { def } => {
            e.u8(E_DEFINE_PROCESS);
            enc_json(e, def)?;
        }
        Event::DefineExperiment { def } => {
            e.u8(E_DEFINE_EXPERIMENT);
            enc_json(e, def)?;
        }
        Event::CreateIndex { rel, attr } => {
            e.u8(E_CREATE_INDEX);
            e.str(rel);
            e.str(attr);
        }
        Event::CreateGrid { rel, attr, cell } => {
            e.u8(E_CREATE_GRID);
            e.str(rel);
            e.str(attr);
            e.f64(*cell);
        }
        Event::RetuneGrid { rel, pos, cell } => {
            e.u8(E_RETUNE_GRID);
            e.str(rel);
            e.varint(*pos as u64);
            e.f64(*cell);
        }
        Event::InsertObject {
            rel,
            class,
            oid,
            tuple,
        } => {
            e.u8(E_INSERT_OBJECT);
            e.str(rel);
            e.varint(class.raw());
            e.varint(*oid);
            encode_tuple(e, tuple);
        }
        Event::UpdateObject { rel, oid, tuple } => {
            e.u8(E_UPDATE_OBJECT);
            e.str(rel);
            e.varint(*oid);
            encode_tuple(e, tuple);
        }
        Event::DeleteObject { rel, oid } => {
            e.u8(E_DELETE_OBJECT);
            e.str(rel);
            e.varint(*oid);
        }
        Event::TaskCommit { objects, tasks } => {
            e.u8(E_TASK_COMMIT);
            e.varint(objects.len() as u64);
            for o in objects {
                e.str(&o.rel);
                e.varint(o.class.raw());
                e.varint(o.oid);
                encode_tuple(e, &o.tuple);
            }
            e.varint(tasks.len() as u64);
            for t in tasks {
                enc_task(e, t);
            }
        }
        Event::JobSubmit {
            job,
            process,
            bindings,
        } => {
            e.u8(E_JOB_SUBMIT);
            e.varint(*job);
            e.varint(process.raw());
            enc_bindings(e, bindings);
        }
        Event::JobResolved { job } => {
            e.u8(E_JOB_RESOLVED);
            e.varint(*job);
        }
        Event::VersionAdvance => e.u8(E_VERSION_ADVANCE),
    }
    Ok(())
}

fn decode_event(d: &mut Dec<'_>) -> Result<Event, StoreError> {
    Ok(match d.u8()? {
        E_DEFINE_CLASS => Event::DefineClass { def: dec_json(d)? },
        E_DEFINE_CONCEPT => Event::DefineConcept { def: dec_json(d)? },
        E_DEFINE_PROCESS => Event::DefineProcess { def: dec_json(d)? },
        E_DEFINE_EXPERIMENT => Event::DefineExperiment { def: dec_json(d)? },
        E_CREATE_INDEX => Event::CreateIndex {
            rel: d.str()?,
            attr: d.str()?,
        },
        E_CREATE_GRID => Event::CreateGrid {
            rel: d.str()?,
            attr: d.str()?,
            cell: d.f64()?,
        },
        E_RETUNE_GRID => Event::RetuneGrid {
            rel: d.str()?,
            pos: d.varint()? as usize,
            cell: d.f64()?,
        },
        E_INSERT_OBJECT => Event::InsertObject {
            rel: d.str()?,
            class: ClassId(Oid(d.varint()?)),
            oid: d.varint()?,
            tuple: decode_tuple(d)?,
        },
        E_UPDATE_OBJECT => Event::UpdateObject {
            rel: d.str()?,
            oid: d.varint()?,
            tuple: decode_tuple(d)?,
        },
        E_DELETE_OBJECT => Event::DeleteObject {
            rel: d.str()?,
            oid: d.varint()?,
        },
        E_TASK_COMMIT => {
            let n = d.len(4)?;
            let mut objects = Vec::with_capacity(n);
            for _ in 0..n {
                objects.push(NewObject {
                    rel: d.str()?,
                    class: ClassId(Oid(d.varint()?)),
                    oid: d.varint()?,
                    tuple: decode_tuple(d)?,
                });
            }
            let n = d.len(8)?;
            let mut tasks = Vec::with_capacity(n);
            for _ in 0..n {
                tasks.push(dec_task(d)?);
            }
            Event::TaskCommit { objects, tasks }
        }
        E_JOB_SUBMIT => Event::JobSubmit {
            job: d.varint()?,
            process: ProcessId(Oid(d.varint()?)),
            bindings: dec_bindings(d)?,
        },
        E_JOB_RESOLVED => Event::JobResolved { job: d.varint()? },
        E_VERSION_ADVANCE => Event::VersionAdvance,
        other => return Err(StoreError::Codec(format!("unknown event tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaea_adt::{Image, Value};
    use gaea_store::Tuple;

    fn sample_task(seq: u64) -> Task {
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "bands".to_string(),
            vec![ObjectId(Oid(3)), ObjectId(Oid(4))],
        );
        let mut input_versions = BTreeMap::new();
        input_versions.insert(ObjectId(Oid(3)), 17);
        let mut params = BTreeMap::new();
        params.insert("at".to_string(), Value::Int4(5));
        Task {
            id: TaskId(Oid(100 + seq)),
            process: ProcessId(Oid(7)),
            process_name: "P20".into(),
            inputs,
            input_versions,
            outputs: vec![ObjectId(Oid(9))],
            params,
            seq,
            user: "qiu".into(),
            kind: TaskKind::Compound,
            children: vec![TaskId(Oid(101)), TaskId(Oid(102))],
        }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event::CreateIndex {
                rel: "c_scene".into(),
                attr: "name".into(),
            },
            Event::CreateGrid {
                rel: "c_scene".into(),
                attr: "extent".into(),
                cell: 12.5,
            },
            Event::RetuneGrid {
                rel: "c_scene".into(),
                pos: 2,
                cell: 3.0,
            },
            Event::InsertObject {
                rel: "c_scene".into(),
                class: ClassId(Oid(4)),
                oid: 31,
                tuple: Tuple::new(vec![
                    Value::Text("tm_b3".into()),
                    Value::image(Image::from_f64(2, 3, vec![0.25; 6]).unwrap()),
                ]),
            },
            Event::UpdateObject {
                rel: "c_scene".into(),
                oid: 31,
                tuple: Tuple::new(vec![Value::Null, Value::Int4(-2)]),
            },
            Event::DeleteObject {
                rel: "c_scene".into(),
                oid: 31,
            },
            Event::TaskCommit {
                objects: vec![NewObject {
                    rel: "c_ndvi".into(),
                    class: ClassId(Oid(5)),
                    oid: 9,
                    tuple: Tuple::new(vec![Value::Float8(0.5)]),
                }],
                tasks: vec![sample_task(1), sample_task(2)],
            },
            Event::JobSubmit {
                job: 3,
                process: ProcessId(Oid(7)),
                bindings: vec![("bands".into(), vec![ObjectId(Oid(3))])],
            },
            Event::JobResolved { job: 3 },
            Event::VersionAdvance,
        ]
    }

    /// Both codecs of every event shape decode back to the same
    /// envelope (compared through the serde view, which is `Event`'s
    /// identity for replay purposes).
    #[test]
    fn every_event_round_trips_in_both_codecs() {
        for (i, event) in sample_events().into_iter().enumerate() {
            let logged = LoggedEvent {
                seq: 40 + i as u64,
                next_oid: 1000,
                bumps: vec![("c_scene".into(), vec![1, 2, 300])],
                event,
            };
            let canon = serde_json::to_string(&logged).unwrap();
            for codec in [WalCodec::Binary, WalCodec::Json] {
                let payload = encode_logged(&logged, codec).unwrap();
                let back = decode_logged(&payload).unwrap();
                assert_eq!(serde_json::to_string(&back).unwrap(), canon);
            }
        }
    }

    #[test]
    fn json_records_stay_byte_compatible_with_legacy_logs() {
        let logged = LoggedEvent {
            seq: 1,
            next_oid: 2,
            bumps: vec![],
            event: Event::VersionAdvance,
        };
        let payload = encode_logged(&logged, WalCodec::Json).unwrap();
        // Bare serde JSON, exactly what pre-codec kernels appended.
        assert_eq!(payload, serde_json::to_vec(&logged).unwrap());
        assert_eq!(payload[0], b'{');
        // And an explicit 0x00 prefix is accepted on decode too.
        let mut prefixed = vec![0u8];
        prefixed.extend_from_slice(&payload);
        assert_eq!(decode_logged(&prefixed).unwrap().seq, 1);
    }

    #[test]
    fn binary_is_smaller_than_json_for_object_payloads() {
        let logged = LoggedEvent {
            seq: 7,
            next_oid: 32,
            bumps: vec![],
            event: Event::InsertObject {
                rel: "c_scene".into(),
                class: ClassId(Oid(4)),
                oid: 31,
                tuple: Tuple::new(vec![Value::image(
                    Image::new(16, 16, gaea_adt::PixelBuffer::I32(vec![2_000_000_001; 256]))
                        .unwrap(),
                )]),
            },
        };
        let bin = encode_logged(&logged, WalCodec::Binary).unwrap().len();
        let json = encode_logged(&logged, WalCodec::Json).unwrap().len();
        assert!(
            bin * 2 < json,
            "binary {bin} bytes should be well under half of JSON {json}"
        );
    }

    #[test]
    fn corrupt_records_error_instead_of_panicking() {
        assert!(decode_logged(&[]).is_err());
        assert!(decode_logged(&[9, 9, 9]).is_err());
        assert!(decode_logged(b"[1,2]").is_err());
        // Binary prefix with a truncated body.
        let logged = LoggedEvent {
            seq: 3,
            next_oid: 4,
            bumps: vec![("r".into(), vec![1])],
            event: Event::DeleteObject {
                rel: "r".into(),
                oid: 5,
            },
        };
        let full = encode_logged(&logged, WalCodec::Binary).unwrap();
        for cut in 1..full.len() {
            assert!(
                decode_logged(&full[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        // Trailing garbage after a complete envelope.
        let mut padded = full.clone();
        padded.push(0);
        assert!(decode_logged(&padded).is_err());
    }
}
