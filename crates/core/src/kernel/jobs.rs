//! Asynchronous derivation jobs (§5): non-blocking external-site firings.
//!
//! "Data derivation may be performed by processes running at remote
//! sites"; such a process can take minutes, and the paper's contract is
//! that Gaea "writes the task record when the result arrives" while the
//! interactive session stays responsive. This layer delivers exactly
//! that split on top of the `gaea-sched` [`JobPool`]:
//!
//! * [`Gaea::submit_derivation`] plans the query's single goal firing,
//!   chooses its bindings, runs the *staging* half on the calling
//!   thread (validate + load + local guards — and for local primitives
//!   the whole template evaluation, which is cheap by construction),
//!   and hands the blocking half — the external-site round-trip — to a
//!   background worker. It returns a [`JobId`] immediately.
//! * The worker produces a `PreparedFiring`; nothing commits on the
//!   worker. Commits happen on the owner's thread, through the same
//!   serialized commit path every other firing uses (the internal job
//!   pump, invoked by every job accessor and by the query/refresh entry
//!   points), so the committed task and object state of a background
//!   firing is byte-identical to a synchronous run of the same
//!   derivation.
//! * While a job is in flight its derivation is *visible*: step-1 query
//!   answers list it in `QueryOutcome::pending`, the bind/fire walker
//!   refuses to double-fire the identical derivation
//!   ([`KernelError::DerivationPending`]), a duplicate
//!   [`Gaea::submit_derivation`] dedups to the existing job (mirroring
//!   [`Gaea::reuse_tasks`]), and `Gaea::refresh_all` reports the stale
//!   objects it covers as pending instead of re-firing them.
//!
//! Jobs are runtime state, like registered sites: they are not
//! persisted by [`Gaea::save`] and do not survive [`Gaea::load`]. A
//! *durable* kernel ([`Gaea::open`]) is different: submissions are
//! journaled in the write-ahead event log with their bindings, so
//! unresolved jobs survive a crash — recovery holds them until their
//! site is re-registered, then re-stages and re-runs them (see
//! [`super::durability`]).

use super::durability::{Event, RecordedBindings};
use super::query::dedup_key_for;
use super::Gaea;
use crate::derivation::executor::{self, PreparedFiring, TaskRun};
use crate::error::{KernelError, KernelResult};
use crate::ids::{ObjectId, ProcessId, TaskId};
use crate::query::Query;
use gaea_sched::{jobs as sched_jobs, JobPhase, JobPool};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

pub use gaea_sched::JobId;

/// Kernel-level status of a background derivation job: the pool's state
/// machine with the terminal success carrying the *committed* task.
///
/// ```text
/// Queued ──▶ Running ──▶ Done(TaskId) | Failed(err)
///    │          │
///    └──────────┴──────▶ Cancelled
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Submitted, awaiting a worker.
    Queued,
    /// The worker is executing (typically: blocked in the external-site
    /// round-trip), or the result awaits its serialized commit.
    Running,
    /// The firing committed; the task record is on the books. Terminal.
    Done(TaskId),
    /// The firing (or its commit) failed. Terminal.
    Failed(String),
    /// Cancelled before anything committed; no task record exists.
    /// Terminal.
    Cancelled,
}

impl JobStatus {
    /// Has the job reached a state it can never leave?
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Done(_) | JobStatus::Failed(_) | JobStatus::Cancelled
        )
    }

    /// The committed task, for a `Done` job.
    pub fn task(&self) -> Option<TaskId> {
        match self {
            JobStatus::Done(t) => Some(*t),
            _ => None,
        }
    }
}

/// The kernel's record of one submitted job — everything the pool does
/// not know: which derivation it realizes (for dedup and pending
/// visibility) and what its commit produced.
pub(crate) struct JobRecord {
    /// Name of the output class (pending-visibility filter).
    pub(crate) output_class: String,
    /// The derivation identity, byte-compatible with `Task::dedup_key`.
    pub(crate) dedup_key: String,
    /// Set once the prepared result committed (or an identical current
    /// derivation was reused).
    pub(crate) committed: Option<TaskRun>,
    /// Set if the commit itself failed.
    pub(crate) commit_error: Option<String>,
    /// The submitted process — with `bindings`, enough to re-stage the
    /// firing after a restart.
    pub(crate) process: ProcessId,
    /// The chosen input bindings, as journaled at submission.
    pub(crate) bindings: Vec<(String, Vec<ObjectId>)>,
    /// Cancelled before anything committed (terminal; kept so a
    /// journal-recovered job cancelled before re-staging still reports
    /// its status).
    pub(crate) cancelled: bool,
}

impl JobRecord {
    /// Has the kernel resolved this job (committed or commit-failed)?
    pub(crate) fn resolved(&self) -> bool {
        self.committed.is_some() || self.commit_error.is_some()
    }
}

/// Owner of the job pool and the per-job records. One per [`Gaea`].
pub(crate) struct JobManager {
    pub(crate) pool: JobPool<PreparedFiring>,
    pub(crate) records: BTreeMap<JobId, JobRecord>,
    /// Submissions recovered from the event log but not yet re-staged
    /// (typically: their external site is not registered again yet).
    /// Restaging moves an id from here into the pool.
    pub(crate) recovered: BTreeSet<JobId>,
    next_id: u64,
}

impl JobManager {
    pub(crate) fn new() -> JobManager {
        JobManager {
            pool: JobPool::from_env(),
            records: BTreeMap::new(),
            recovered: BTreeSet::new(),
            next_id: 1,
        }
    }

    fn allocate(&mut self) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Never reallocate an id the journal has already seen.
    pub(crate) fn resume_ids(&mut self, max_seen: u64) {
        self.next_id = self.next_id.max(max_seen + 1);
    }

    /// The submissions a snapshot must carry: journaled jobs that are
    /// neither resolved nor cancelled, in id order.
    pub(crate) fn unresolved_submissions(&self) -> Vec<(u64, ProcessId, RecordedBindings)> {
        self.records
            .iter()
            .filter(|(_, r)| !r.resolved() && !r.cancelled)
            .map(|(id, r)| (id.0, r.process, r.bindings.clone()))
            .collect()
    }
}

impl Gaea {
    /// Submit a query's derivation as a background job, returning its
    /// [`JobId`] immediately — the §5 pattern for external processes
    /// whose mapping runs for minutes at a remote site.
    ///
    /// Planning, binding and the local half of the firing (validation,
    /// input loading, guard assertions — and for local primitives the
    /// whole template evaluation) happen now, on this thread, so errors
    /// a synchronous firing would raise *before* going remote surface
    /// here as errors, not as failed jobs. The remote round-trip runs on
    /// a background worker; the commit happens on this kernel's thread
    /// at the next job accessor or query entry point, through the same
    /// serialized path as every synchronous firing — committed state is
    /// identical to a synchronous run.
    ///
    /// Semantics mirroring the synchronous walker:
    /// * an identical *current* derivation already on record is reused
    ///   ([`Gaea::reuse_tasks`]): the returned job is born `Done` with
    ///   the recorded task, nothing re-fires;
    /// * an identical derivation already *in flight* dedups to the
    ///   existing job id;
    /// * a goal whose plan needs several firings is refused (derive the
    ///   intermediates first; a background job realizes one firing);
    /// * a goal already satisfied by stored objects resolves through its
    ///   producing process — submitting a derivation whose stale prior
    ///   is on record is exactly how a background *refresh* looks.
    pub fn submit_derivation(&mut self, q: &Query) -> KernelResult<JobId> {
        self.pump_jobs();
        let class_names = self.target_classes(q)?;
        self.validate_query(&class_names, q)?;
        let dnet = self.plannable_net(q)?;
        let marking = self.planning_marking(&dnet, &class_names, q)?;
        let mut planless: Vec<String> = Vec::new();
        for name in &class_names {
            let def = self.catalog.class_by_name(name)?.clone();
            let plan = self.derivation_plan(&dnet, &marking, &def)?;
            let pid = match plan {
                Some(p) if p.cost() == 1 => {
                    let (tid, _) = p.firings[0];
                    dnet.process_at(tid)
                        .expect("planner only uses catalog transitions")
                }
                Some(p) if p.cost() == 0 => {
                    // The goal is already satisfied by stored objects; a
                    // submission then means "fire (or refresh) the goal's
                    // derivation anyway" — resolve its producer directly.
                    self.goal_producer(&dnet, &def, q)?
                }
                Some(p) => {
                    return Err(KernelError::Schema(format!(
                        "submit_derivation: deriving class {name} needs {} firings; \
                         a background job realizes a single goal firing — derive or \
                         refresh the intermediate classes first",
                        p.cost()
                    )))
                }
                None => {
                    planless.push(name.clone());
                    continue;
                }
            };
            return self.submit_firing(pid, q);
        }
        Err(KernelError::DerivationImpossible(format!(
            "no derivation plan reaches {planless:?} from the stored base data"
        )))
    }

    /// The single auto-firable producer of `goal` in the plannable net —
    /// the query's `USING` process when pinned. Ambiguity is an error
    /// (pin with `USING`), absence is [`KernelError::DerivationImpossible`].
    fn goal_producer(
        &self,
        dnet: &crate::derivation::net::DerivationNet,
        goal: &crate::schema::ClassDef,
        q: &Query,
    ) -> KernelResult<ProcessId> {
        if let Some(name) = &q.using_process {
            return Ok(self.catalog.process_by_name(name)?.id);
        }
        let producers: Vec<ProcessId> = self
            .catalog
            .processes
            .values()
            .filter(|def| def.output == goal.id && dnet.transition_of.contains_key(&def.id))
            .map(|def| def.id)
            .collect();
        match producers.as_slice() {
            [one] => Ok(*one),
            [] => Err(KernelError::DerivationImpossible(format!(
                "class {} has no auto-firable producing process",
                goal.name
            ))),
            many => Err(KernelError::Schema(format!(
                "class {} has {} auto-firable producers; pin one with DERIVE USING",
                goal.name,
                many.len()
            ))),
        }
    }

    /// Bind and stage one firing of `pid` for background execution.
    fn submit_firing(&mut self, pid: ProcessId, q: &Query) -> KernelResult<JobId> {
        use super::query::ChosenFiring;
        match self.choose_or_fire(pid, q, &BTreeSet::new(), true)? {
            // The identical derivation is already in flight: duplicate
            // submissions dedup to one job, mirroring `reuse_tasks`.
            ChosenFiring::Pending(job) => Ok(job),
            // An identical current derivation is on record: the job is
            // born Done with the recorded task.
            ChosenFiring::Fired(run) => {
                let task = self.catalog.task(run.task)?;
                let bindings = task.inputs.clone().into_iter().collect();
                let dedup_key = task.dedup_key();
                let def = self.catalog.process(pid)?;
                let record = JobRecord {
                    output_class: self.catalog.class(def.output)?.name.clone(),
                    dedup_key,
                    committed: Some(run),
                    commit_error: None,
                    process: pid,
                    bindings,
                    cancelled: false,
                };
                let id = self.jobs.allocate();
                self.jobs.records.insert(id, record);
                // Born resolved: nothing to journal — a restart has the
                // reused task on the books already.
                Ok(id)
            }
            ChosenFiring::Bound(bindings) => {
                let staged = executor::stage_firing(
                    &self.db,
                    &self.catalog,
                    &self.registry,
                    &self.externals,
                    pid,
                    &bindings,
                )?;
                let def = self.catalog.process(pid)?;
                let record = JobRecord {
                    output_class: self.catalog.class(def.output)?.name.clone(),
                    dedup_key: dedup_key_for(def, &bindings),
                    committed: None,
                    commit_error: None,
                    process: pid,
                    bindings: bindings.clone(),
                    cancelled: false,
                };
                let id = self.jobs.allocate();
                self.jobs.records.insert(id, record);
                self.jobs
                    .pool
                    .submit(id, move || staged.execute().map_err(|e| e.to_string()));
                // Journal the submission (with its bindings) so a crash
                // before the result commits re-stages it on reopen.
                self.wal_append(Event::JobSubmit {
                    job: id.0,
                    process: pid,
                    bindings,
                })?;
                Ok(id)
            }
        }
    }

    /// Commit every job result the workers have finished: the serialized
    /// tail of each background firing, in job-id (= submission) order.
    /// An identical current derivation recorded meanwhile is reused
    /// instead of duplicated, exactly like the wave executor's commit
    /// step; a commit failure resolves the job as `Failed` without
    /// disturbing the others. Invoked by every job accessor and by the
    /// query/refresh entry points, so finished results become visible
    /// wherever the kernel next looks.
    pub(crate) fn pump_jobs(&mut self) {
        // Journal-recovered submissions whose site has come back re-enter
        // the pool first, so this pump (or a later one) can commit them.
        self.restage_recovered_jobs();
        let unresolved: Vec<JobId> = self
            .jobs
            .records
            .iter()
            .filter(|(_, r)| !r.resolved())
            .map(|(id, _)| *id)
            .collect();
        for id in unresolved {
            // `take_done` moves the payload out and drops the pool entry:
            // the result commits exactly once, and completed firings (and
            // their computed output attributes) do not accumulate in the
            // pool for the kernel's lifetime. The record below is the
            // job's durable identity from here on.
            let Some(prepared) = self.jobs.pool.take_done(id) else {
                continue;
            };
            let pid = prepared.process();
            let outcome = match self.reuse_current_firing(pid, prepared.bindings()) {
                Some(run) => Ok(run),
                None => self.commit_prepared(prepared),
            };
            let record = self
                .jobs
                .records
                .get_mut(&id)
                .expect("unresolved ids come from the record map");
            match outcome {
                Ok(run) => record.committed = Some(run),
                Err(e) => record.commit_error = Some(e.to_string()),
            }
            // Resolve the submission in the journal. Best-effort: if the
            // append fails the job merely re-stages on the next reopen,
            // where task reuse dedups it against the committed result.
            let _ = self.wal_append(Event::JobResolved { job: id.0 });
        }
    }

    /// Try to re-stage every journal-recovered submission whose
    /// prerequisites are back (in particular: its external site). Jobs
    /// that still cannot stage stay journaled and are retried at the
    /// next pump or [`Gaea::register_site`]; re-running them is safe
    /// because task reuse resolves a re-staged duplicate to the already
    /// committed record.
    pub(crate) fn restage_recovered_jobs(&mut self) {
        if self.jobs.recovered.is_empty() {
            return;
        }
        let ids: Vec<JobId> = self.jobs.recovered.iter().copied().collect();
        for id in ids {
            let record = self
                .jobs
                .records
                .get(&id)
                .expect("recovered ids have records");
            let pid = record.process;
            let Ok(staged) = executor::stage_firing(
                &self.db,
                &self.catalog,
                &self.registry,
                &self.externals,
                pid,
                &record.bindings,
            ) else {
                continue;
            };
            self.jobs.recovered.remove(&id);
            self.jobs
                .pool
                .submit(id, move || staged.execute().map_err(|e| e.to_string()));
        }
    }

    /// The job's current status, after committing any finished results.
    pub fn job_status(&mut self, id: JobId) -> KernelResult<JobStatus> {
        self.pump_jobs();
        self.job_status_now(id)
    }

    /// Every job the kernel knows, with its status *right now* (no
    /// pumping, `&self`) and its output class — what a snapshot-pinned
    /// [`super::readonly::ReadView`] freezes as its job board. Finished
    /// results the kernel has not committed yet report `Running`, exactly
    /// like [`Gaea::job_status`] would after its pump found nothing.
    pub(crate) fn job_board(&self) -> Vec<super::readonly::PinnedJob> {
        self.jobs
            .records
            .iter()
            .map(|(id, record)| super::readonly::PinnedJob {
                id: *id,
                status: self
                    .job_status_now(*id)
                    .expect("listed record always has a status"),
                output_class: record.output_class.clone(),
            })
            .collect()
    }

    /// Status without pumping (the caller just pumped).
    fn job_status_now(&self, id: JobId) -> KernelResult<JobStatus> {
        let record = self.jobs.records.get(&id).ok_or(KernelError::NoSuchId {
            kind: "job",
            id: id.0,
        })?;
        if let Some(run) = &record.committed {
            return Ok(JobStatus::Done(run.task));
        }
        if let Some(e) = &record.commit_error {
            return Ok(JobStatus::Failed(e.clone()));
        }
        Ok(match self.jobs.pool.status(id) {
            Some(sched_jobs::JobStatus::Queued) => JobStatus::Queued,
            // A result the pool holds but the kernel has not committed
            // yet reports Running: the firing is not on the books until
            // the serialized commit lands.
            Some(sched_jobs::JobStatus::Running) | Some(sched_jobs::JobStatus::Done(_)) => {
                JobStatus::Running
            }
            Some(sched_jobs::JobStatus::Failed(e)) => JobStatus::Failed(e),
            Some(sched_jobs::JobStatus::Cancelled) => JobStatus::Cancelled,
            // Cancelled before (re-)entering the pool.
            None if record.cancelled => JobStatus::Cancelled,
            // Journal-recovered, awaiting its site to re-stage: queued.
            None if self.jobs.recovered.contains(&id) => JobStatus::Queued,
            // Reuse-resolved records never enter the pool; they were
            // handled above via `committed`.
            None => unreachable!("job record without commit state or pool entry"),
        })
    }

    /// Block until the job reaches a terminal state — committing the
    /// result when it is this kernel's to commit — or `timeout` elapses.
    /// Returns the status as of return, which on timeout is the current
    /// *non*-terminal status, not an error: polling loops and bounded
    /// waits are both legitimate.
    pub fn await_job(&mut self, id: JobId, timeout: Duration) -> KernelResult<JobStatus> {
        let deadline = Instant::now() + timeout;
        loop {
            self.pump_jobs();
            let status = self.job_status_now(id)?;
            if status.is_terminal() {
                return Ok(status);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(status);
            }
            // Wait on the pool for the worker to finish (or the deadline);
            // the next loop iteration commits and re-reads.
            self.jobs.pool.wait_terminal(id, deadline - now);
        }
    }

    /// Cancel a job. A queued job never runs; a running job's eventual
    /// result is discarded (the worker cannot be interrupted mid
    /// round-trip) — either way no task record is ever written.
    /// Cancelling a job that already committed (or failed) is a clean
    /// no-op: the returned status reports the terminal state unchanged,
    /// and the recorded task stays on the books.
    pub fn cancel_job(&mut self, id: JobId) -> KernelResult<JobStatus> {
        self.pump_jobs();
        let record = self.jobs.records.get(&id).ok_or(KernelError::NoSuchId {
            kind: "job",
            id: id.0,
        })?;
        if !record.resolved() {
            if self.jobs.recovered.remove(&id) {
                // Journal-recovered and never re-staged: nothing is
                // running. Mark it cancelled and resolve it in the log so
                // a reopen does not resurrect it.
                self.jobs
                    .records
                    .get_mut(&id)
                    .expect("checked above")
                    .cancelled = true;
                self.wal_append(Event::JobResolved { job: id.0 })?;
            } else if self.jobs.pool.cancel(id) {
                self.jobs
                    .records
                    .get_mut(&id)
                    .expect("checked above")
                    .cancelled = true;
                self.wal_append(Event::JobResolved { job: id.0 })?;
            } else {
                // The worker finished between the pump and the cancel: the
                // result is already owed a commit — land it, then report.
                self.pump_jobs();
            }
        }
        self.job_status_now(id)
    }

    /// Every job this kernel has been asked to run, in submission order,
    /// with current statuses (finished results are committed first).
    pub fn jobs(&mut self) -> Vec<(JobId, JobStatus)> {
        self.pump_jobs();
        self.jobs
            .records
            .keys()
            .map(|id| {
                (
                    *id,
                    self.job_status_now(*id).expect("listed ids have records"),
                )
            })
            .collect()
    }

    /// Cap on concurrently executing background jobs.
    pub fn job_workers(&self) -> usize {
        self.jobs.pool.max_workers()
    }

    /// Adjust the background-job worker cap (clamped to ≥ 1; the
    /// `GAEA_JOB_WORKERS` environment variable sets the initial value).
    /// Wave-execution workers ([`Gaea::set_workers`]) are a separate,
    /// CPU-bound pool.
    pub fn set_job_workers(&mut self, workers: usize) {
        self.jobs.pool.set_max_workers(workers);
    }

    /// Dedup keys of every *unresolved* derivation job (queued, running,
    /// or finished-but-uncommitted), for the walkers that must not fire
    /// a duplicate of an in-flight derivation.
    pub(crate) fn jobs_in_flight_keys(&self) -> BTreeMap<String, JobId> {
        let mut keys = BTreeMap::new();
        for (id, record) in &self.jobs.records {
            if record.resolved() {
                continue;
            }
            // A journal-recovered submission awaiting its site is just as
            // in-flight as a pooled one.
            if self.jobs.recovered.contains(id) {
                keys.entry(record.dedup_key.clone()).or_insert(*id);
                continue;
            }
            match self.jobs.pool.phase(*id) {
                Some(JobPhase::Queued) | Some(JobPhase::Running) | Some(JobPhase::Done) => {
                    keys.entry(record.dedup_key.clone()).or_insert(*id);
                }
                _ => {}
            }
        }
        keys
    }

    /// Ids of unresolved jobs whose output class is one of `classes` —
    /// the in-flight derivations a query over those classes should
    /// surface in `QueryOutcome::pending`.
    pub(crate) fn pending_jobs_for(&self, classes: &[String]) -> Vec<JobId> {
        self.jobs
            .records
            .iter()
            .filter(|(id, r)| {
                !r.resolved()
                    && classes.contains(&r.output_class)
                    && (self.jobs.recovered.contains(id)
                        || matches!(
                            self.jobs.pool.phase(**id),
                            Some(JobPhase::Queued) | Some(JobPhase::Running) | Some(JobPhase::Done)
                        ))
            })
            .map(|(id, _)| *id)
            .collect()
    }
}
