//! The derived-result cache: memoized `(process, bindings) → outputs`.
//!
//! §2.1.1's motivation — "avoid unnecessary duplication of experiments" —
//! is served at two levels. The catalog's task records give *logical*
//! deduplication (scanning every recorded task per firing); this cache
//! adds a *physical* O(1) memo keyed by a canonical binding hash, so a
//! repeated [`super::Gaea::run_process`] call returns the recorded task
//! and outputs without re-validating bindings, re-loading inputs, or
//! re-evaluating the template.
//!
//! Consistency is version-based (MVCC): every entry records the store
//! version of each input and output object observed at derivation time.
//! A lookup validates those versions against the live counters —
//! [`gaea_store::Database::object_version`] — in O(inputs + outputs); an
//! entry falsified by any mismatch is evicted on the spot and the lookup
//! misses. Writers therefore pay nothing beyond the store's own version
//! bump: [`super::Gaea::update_object`] additionally drops the entries
//! *linked to the written object through the cache's own derivation
//! edges* (O(dependent entries) — independent of how many tasks the
//! catalog has recorded), and the lazy version check catches every chain
//! the eager pass cannot see, e.g. when an intermediate derivation
//! predates the cache being enabled.
//!
//! The cache is **off by default**: with it off, every `run_process`
//! call records a fresh task, which the §4.2 duplicate-detection service
//! is specifically designed to report. Benchmarks (`q6_memoization`) and
//! long-running sessions opt in via [`super::Gaea::enable_memoization`].

use crate::ids::{ObjectId, ProcessId, TaskId};
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to execution.
    pub misses: u64,
    /// Entries removed by invalidation (eager propagation or a failed
    /// version check at lookup).
    pub invalidations: u64,
    /// Live entries.
    pub entries: usize,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    /// Full canonical key, checked on lookup so hash collisions can
    /// never alias two different bindings.
    canonical: String,
    task: TaskId,
    /// Inputs with the store version observed when the entry was recorded.
    inputs: Vec<(ObjectId, u64)>,
    /// Outputs with the store version observed when the entry was recorded
    /// (a mutated output falsifies the memo that recorded it).
    outputs: Vec<(ObjectId, u64)>,
}

/// Memo table for derivations. See the module docs for semantics.
#[derive(Debug, Default)]
pub struct DerivedCache {
    enabled: bool,
    entries: HashMap<u64, CacheEntry>,
    /// Reverse index: input object → keys of entries consuming it.
    by_input: HashMap<ObjectId, BTreeSet<u64>>,
    /// Reverse index: output object → keys of entries that produced it.
    by_output: HashMap<ObjectId, BTreeSet<u64>>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl DerivedCache {
    /// A fresh, disabled cache.
    pub fn new() -> DerivedCache {
        DerivedCache::default()
    }

    /// Is the cache consulted at all?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enable or disable. Disabling clears entries and the reverse index
    /// (counters survive for post-hoc inspection).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        if !on {
            self.entries.clear();
            self.by_input.clear();
            self.by_output.clear();
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
            entries: self.entries.len(),
        }
    }

    /// Canonical form of a firing: process id plus each argument's object
    /// set in sorted order (`SETOF` arguments are sets — the paper's
    /// semantics — so binding order must not split the memo), and the
    /// 64-bit FNV-1a hash the table is keyed by.
    pub fn canonical_key(pid: ProcessId, bindings: &[(String, Vec<ObjectId>)]) -> (u64, String) {
        let mut canonical = format!("p{}", pid.raw());
        for (arg, objs) in bindings {
            let mut ids: Vec<u64> = objs.iter().map(|o| o.raw()).collect();
            ids.sort_unstable();
            canonical.push(';');
            canonical.push_str(arg);
            canonical.push('=');
            for (i, id) in ids.iter().enumerate() {
                if i > 0 {
                    canonical.push(',');
                }
                canonical.push_str(&id.to_string());
            }
        }
        (fnv1a(canonical.as_bytes()), canonical)
    }

    /// Look up a memoized firing, validating it with `valid` (called with
    /// the entry's recorded input and output versions). A hit returns the
    /// recorded task and outputs; an entry the validator rejects is
    /// evicted (counted as an invalidation) and the lookup misses.
    pub(crate) fn lookup_where<F>(
        &mut self,
        hash: u64,
        canonical: &str,
        valid: F,
    ) -> Option<(TaskId, Vec<ObjectId>)>
    where
        F: FnOnce(&[(ObjectId, u64)], &[(ObjectId, u64)]) -> bool,
    {
        let m = gaea_obs::metrics();
        match self.entries.get(&hash) {
            Some(e) if e.canonical == canonical => {
                if valid(&e.inputs, &e.outputs) {
                    self.hits += 1;
                    m.cache_hits.inc();
                    Some((e.task, e.outputs.iter().map(|(o, _)| *o).collect()))
                } else {
                    // Falsified since it was recorded: drop it and miss.
                    self.remove_entry(hash);
                    self.invalidations += 1;
                    self.misses += 1;
                    m.cache_evictions.inc();
                    m.cache_misses.inc();
                    m.cache_entries.set(self.entries.len() as u64);
                    None
                }
            }
            _ => {
                self.misses += 1;
                m.cache_misses.inc();
                None
            }
        }
    }

    /// Record a firing's result with the input/output store versions
    /// observed now.
    pub(crate) fn insert(
        &mut self,
        hash: u64,
        canonical: String,
        task: TaskId,
        inputs: Vec<(ObjectId, u64)>,
        outputs: Vec<(ObjectId, u64)>,
    ) {
        if !self.enabled {
            return;
        }
        // Replacing an entry under the same hash (a re-recorded firing,
        // or a genuine 64-bit collision) must unlink the *old* entry's
        // reverse-index edges first: a blind overwrite would leave
        // `by_input`/`by_output` sets pointing at a hash that now names
        // a different derivation, so eager invalidation of the old
        // entry's inputs would evict the new entry (over-invalidation)
        // and the dangling sets would never be reclaimed.
        if self.entries.contains_key(&hash) {
            self.remove_entry(hash);
        }
        for (input, _) in &inputs {
            self.by_input.entry(*input).or_default().insert(hash);
        }
        for (output, _) in &outputs {
            self.by_output.entry(*output).or_default().insert(hash);
        }
        self.entries.insert(
            hash,
            CacheEntry {
                canonical,
                task,
                inputs,
                outputs,
            },
        );
        gaea_obs::metrics()
            .cache_entries
            .set(self.entries.len() as u64);
    }

    /// Remove one entry and unlink it from the reverse indexes.
    fn remove_entry(&mut self, key: u64) -> Option<CacheEntry> {
        let entry = self.entries.remove(&key)?;
        for (input, _) in &entry.inputs {
            if let Some(set) = self.by_input.get_mut(input) {
                set.remove(&key);
                if set.is_empty() {
                    self.by_input.remove(input);
                }
            }
        }
        for (output, _) in &entry.outputs {
            if let Some(set) = self.by_output.get_mut(output) {
                set.remove(&key);
                if set.is_empty() {
                    self.by_output.remove(output);
                }
            }
        }
        Some(entry)
    }

    /// Invalidate every entry that consumed *or produced* `oid` (a
    /// mutated input falsifies derivations downstream of it; a mutated
    /// output falsifies the memo that recorded it), then propagate along
    /// the cache's own instance-level derivation edges: the outputs of
    /// each dropped entry are themselves dirty for anything derived from
    /// them. Cost is proportional to the number of *dependent cache
    /// entries*, never to the recorded task history; chains running
    /// through objects the cache holds no entry for are caught lazily by
    /// the version check in [`DerivedCache::lookup_where`]. Returns the
    /// number of entries removed.
    pub(crate) fn invalidate_object(&mut self, oid: ObjectId) -> usize {
        let mut removed = 0usize;
        let mut queue: Vec<ObjectId> = vec![oid];
        let mut seen: BTreeSet<ObjectId> = BTreeSet::new();
        while let Some(dirty) = queue.pop() {
            if !seen.insert(dirty) {
                continue;
            }
            let mut keys: BTreeSet<u64> = self.by_input.get(&dirty).cloned().unwrap_or_default();
            keys.extend(self.by_output.get(&dirty).cloned().unwrap_or_default());
            for key in keys {
                let Some(entry) = self.remove_entry(key) else {
                    continue;
                };
                removed += 1;
                queue.extend(entry.outputs.iter().map(|(o, _)| *o));
            }
            // Every key linked to `dirty` was just processed, so its
            // reverse-index sets are spent. Dropping them here (rather
            // than trusting `remove_entry`'s per-key unlink) also sweeps
            // *dangling* keys — links a writer that panicked between
            // linking and publishing its entry left behind, which name
            // no entry and would otherwise accumulate forever.
            self.by_input.remove(&dirty);
            self.by_output.remove(&dirty);
        }
        self.invalidations += removed as u64;
        let m = gaea_obs::metrics();
        m.cache_evictions.add(removed as u64);
        m.cache_entries.set(self.entries.len() as u64);
        removed
    }
}

/// Thread-shareable handle on a [`DerivedCache`]: `Arc<RwLock<…>>` with
/// the cache's own API surface, so every kernel call site reads the same
/// whether the kernel is serial or a `gaea-sched` wave is running.
///
/// Cloning shares the underlying cache (it is a handle, not a copy);
/// [`super::Gaea::cache_handle`] hands one out so scheduler workers — and
/// tests — can look up, insert and invalidate concurrently. All methods
/// take `&self`; lock poisoning is absorbed (`PoisonError::into_inner`)
/// because every mutation keeps the cache structurally consistent — a
/// panicked worker mid-`insert` at worst loses that one memo entry, and
/// the version validators re-falsify anything questionable on lookup.
#[derive(Debug, Clone, Default)]
pub struct SharedCache {
    inner: Arc<RwLock<DerivedCache>>,
}

impl SharedCache {
    /// A fresh, disabled cache behind a new shared handle.
    pub fn new() -> SharedCache {
        SharedCache::default()
    }

    fn read(&self) -> RwLockReadGuard<'_, DerivedCache> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, DerivedCache> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Is the cache consulted at all?
    pub fn enabled(&self) -> bool {
        self.read().enabled()
    }

    /// Enable or disable (see [`DerivedCache::set_enabled`]).
    pub fn set_enabled(&self, on: bool) {
        self.write().set_enabled(on);
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.read().stats()
    }

    /// Look up a memoized firing under the write lock (a hit bumps
    /// counters; a rejected entry is evicted). See
    /// `DerivedCache::lookup_where`.
    pub fn lookup_where<F>(
        &self,
        hash: u64,
        canonical: &str,
        valid: F,
    ) -> Option<(TaskId, Vec<ObjectId>)>
    where
        F: FnOnce(&[(ObjectId, u64)], &[(ObjectId, u64)]) -> bool,
    {
        self.write().lookup_where(hash, canonical, valid)
    }

    /// Record a firing's result (no-op while disabled). See
    /// `DerivedCache::insert`.
    pub fn insert(
        &self,
        hash: u64,
        canonical: String,
        task: TaskId,
        inputs: Vec<(ObjectId, u64)>,
        outputs: Vec<(ObjectId, u64)>,
    ) {
        self.write().insert(hash, canonical, task, inputs, outputs);
    }

    /// Invalidate every entry linked to `oid` through the cache's
    /// derivation edges; returns the number of entries removed. See
    /// `DerivedCache::invalidate_object`.
    pub fn invalidate_object(&self, oid: ObjectId) -> usize {
        self.write().invalidate_object(oid)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaea_store::Oid;

    fn oid(n: u64) -> ObjectId {
        ObjectId(Oid(n))
    }

    fn versioned(ids: &[u64]) -> Vec<(ObjectId, u64)> {
        ids.iter().map(|n| (oid(*n), 1)).collect()
    }

    #[test]
    fn canonical_key_is_order_insensitive_within_an_argument() {
        let pid = ProcessId(Oid(9));
        let a = DerivedCache::canonical_key(pid, &[("bands".into(), vec![oid(3), oid(1), oid(2)])]);
        let b = DerivedCache::canonical_key(pid, &[("bands".into(), vec![oid(1), oid(2), oid(3)])]);
        assert_eq!(a, b);
        let c = DerivedCache::canonical_key(pid, &[("bands".into(), vec![oid(1), oid(2)])]);
        assert_ne!(a.1, c.1);
    }

    #[test]
    fn invalidation_propagates_through_derivation_chains() {
        let mut cache = DerivedCache::new();
        cache.set_enabled(true);
        // Entry 1: {1,2} → {10}; entry 2: {10} → {20}.
        let (h1, c1) =
            DerivedCache::canonical_key(ProcessId(Oid(100)), &[("x".into(), vec![oid(1), oid(2)])]);
        cache.insert(
            h1,
            c1,
            TaskId(Oid(500)),
            versioned(&[1, 2]),
            versioned(&[10]),
        );
        let (h2, c2) =
            DerivedCache::canonical_key(ProcessId(Oid(101)), &[("y".into(), vec![oid(10)])]);
        cache.insert(h2, c2, TaskId(Oid(501)), versioned(&[10]), versioned(&[20]));
        assert_eq!(cache.stats().entries, 2);
        // Touching object 1 kills both entries (2 is downstream via 10).
        let removed = cache.invalidate_object(oid(1));
        assert_eq!(removed, 2);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn lookup_evicts_entries_the_validator_rejects() {
        let mut cache = DerivedCache::new();
        cache.set_enabled(true);
        let (h, c) =
            DerivedCache::canonical_key(ProcessId(Oid(100)), &[("x".into(), vec![oid(1)])]);
        cache.insert(
            h,
            c.clone(),
            TaskId(Oid(500)),
            versioned(&[1]),
            versioned(&[10]),
        );
        // Validator accepts: hit.
        assert!(cache.lookup_where(h, &c, |_, _| true).is_some());
        assert_eq!(cache.stats().hits, 1);
        // Validator rejects (as if object 1's version moved on): evicted.
        assert!(cache.lookup_where(h, &c, |_, _| false).is_none());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.misses, 1);
        // Gone for good: the next lookup is a plain miss.
        assert!(cache.lookup_where(h, &c, |_, _| true).is_none());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn replacing_a_hash_collision_unlinks_the_old_entry() {
        // Two different canonicals forced under one hash: the second
        // insert must fully retire the first entry's reverse-index
        // edges, or invalidating the *old* entry's input would evict
        // the new entry and leave dangling sets behind.
        let mut cache = DerivedCache::new();
        cache.set_enabled(true);
        let h = 0xdead_beef;
        cache.insert(
            h,
            "old-canonical".into(),
            TaskId(Oid(500)),
            versioned(&[1]),
            versioned(&[10]),
        );
        cache.insert(
            h,
            "new-canonical".into(),
            TaskId(Oid(501)),
            versioned(&[2]),
            versioned(&[20]),
        );
        // Invalidating the old entry's input touches nothing now.
        assert_eq!(cache.invalidate_object(oid(1)), 0);
        let hit = cache.lookup_where(h, "new-canonical", |_, _| true);
        assert_eq!(hit, Some((TaskId(Oid(501)), vec![oid(20)])));
        // And the new entry still invalidates through its own edges.
        assert_eq!(cache.invalidate_object(oid(2)), 1);
        assert!(cache
            .lookup_where(h, "new-canonical", |_, _| true)
            .is_none());
    }

    #[test]
    fn invalidation_sweeps_dangling_reverse_index_links() {
        // Simulate the half-applied state a writer panicking mid-insert
        // leaves behind: reverse-index links published, entry not yet.
        let mut cache = DerivedCache::new();
        cache.set_enabled(true);
        cache.by_input.entry(oid(1)).or_default().insert(0x1111);
        cache.by_output.entry(oid(1)).or_default().insert(0x2222);
        assert_eq!(cache.invalidate_object(oid(1)), 0);
        assert!(cache.by_input.is_empty());
        assert!(cache.by_output.is_empty());
    }

    #[test]
    fn lookup_passes_recorded_versions_to_the_validator() {
        let mut cache = DerivedCache::new();
        cache.set_enabled(true);
        let (h, c) =
            DerivedCache::canonical_key(ProcessId(Oid(100)), &[("x".into(), vec![oid(1)])]);
        cache.insert(
            h,
            c.clone(),
            TaskId(Oid(500)),
            vec![(oid(1), 7)],
            vec![(oid(10), 9)],
        );
        let seen = std::cell::RefCell::new((0u64, 0u64));
        cache.lookup_where(h, &c, |ins, outs| {
            *seen.borrow_mut() = (ins[0].1, outs[0].1);
            true
        });
        assert_eq!(*seen.borrow(), (7, 9));
    }
}
