//! Execution semantics: objects, firings, manual tasks, interaction (§2.1.4, §4.3, §5).
//!
//! The object CRUD surface and every way a task enters the history:
//! automatic firing ([`Gaea::run_process`]), manual recording of
//! non-applicative procedures, and scientist-driven interactive sessions.
//! Firing delegates to `derivation::executor` for atomic template
//! evaluation; this layer adds the [`super::cache::DerivedCache`] memo in
//! front of it — a repeated firing with identical canonical bindings
//! returns the recorded task without re-deriving — and keeps the cache
//! consistent by propagating invalidation through the derivation history
//! when an object is updated in place ([`Gaea::update_object`]).

use super::cache::DerivedCache;
use super::Gaea;
use crate::derivation::executor::{self, TaskRun};
use crate::error::{KernelError, KernelResult};
use crate::ids::{ObjectId, TaskId};
use crate::interact::InteractiveSession;
use crate::object::DataObject;
use crate::schema::ProcessKind;
use crate::task::{Task, TaskKind};
use crate::template::EvalContext;
use gaea_adt::Value;
use std::collections::BTreeMap;

impl Gaea {
    // ------------------------------------------------------------------
    // Objects
    // ------------------------------------------------------------------

    /// Store an object of a class from attribute pairs.
    pub fn insert_object(
        &mut self,
        class: &str,
        attrs: Vec<(&str, Value)>,
    ) -> KernelResult<ObjectId> {
        let def = self.catalog.class_by_name(class)?.clone();
        let map: BTreeMap<String, Value> =
            attrs.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        executor::insert_object(&mut self.db, &mut self.catalog, &def, &map)
    }

    /// Load a stored object.
    pub fn object(&self, oid: ObjectId) -> KernelResult<DataObject> {
        executor::load_object(&self.db, &self.catalog, oid)
    }

    /// All object ids of a class, in storage order.
    pub fn objects_of(&self, class: &str) -> KernelResult<Vec<ObjectId>> {
        let def = self.catalog.class_by_name(class)?;
        Ok(self
            .db
            .relation(&def.relation_name())?
            .iter()
            .map(|(oid, _)| ObjectId(oid))
            .collect())
    }

    /// Number of stored objects of a class.
    pub fn count_objects(&self, class: &str) -> KernelResult<usize> {
        let def = self.catalog.class_by_name(class)?;
        Ok(self.db.relation(&def.relation_name())?.len())
    }

    /// Overwrite attributes of a stored object in place. Unknown attribute
    /// names are rejected; reference attributes are checked like inserts.
    ///
    /// Mutating an input retroactively falsifies memoized derivations, so
    /// every [`DerivedCache`] entry reachable from `oid` through the
    /// derivation history — direct consumers, and transitively everything
    /// derived from their outputs — is invalidated before the write
    /// returns.
    ///
    /// Scope: only the *memo* is invalidated. Recorded tasks and stored
    /// derived objects are §2.1.1 history — they faithfully describe the
    /// derivation that happened — so step-1 retrieval can still return a
    /// derived object computed from the pre-update value, and
    /// [`Gaea::reuse_tasks`] can still reuse the recorded task. Making the
    /// store itself staleness-aware (version counters per object, so
    /// retrieval and task reuse can detect out-of-date derivations) is a
    /// ROADMAP item; until then, callers who mutate base data and want
    /// fresh derivations should query with reuse disabled or re-run the
    /// process.
    pub fn update_object(&mut self, oid: ObjectId, attrs: Vec<(&str, Value)>) -> KernelResult<()> {
        let current = self.object(oid)?;
        let class = self.catalog.class(current.class)?.clone();
        let mut merged = current.attrs;
        for (name, value) in attrs {
            merged.insert(name.to_string(), value);
        }
        executor::update_object(&mut self.db, &self.catalog, &class, oid, &merged)?;
        if self.cache.enabled() {
            // Instance-level projection of the derivation net: the object
            // itself plus everything transitively derived from it, from a
            // single pass over the task history (one input→outputs
            // adjacency build, not a catalog rescan per visited object).
            let mut derived_from: BTreeMap<ObjectId, Vec<ObjectId>> = BTreeMap::new();
            for task in self.catalog.tasks.values() {
                for input in task.all_inputs() {
                    derived_from
                        .entry(input)
                        .or_default()
                        .extend(task.outputs.iter().copied());
                }
            }
            let mut queue = vec![oid];
            let mut seen = std::collections::BTreeSet::new();
            while let Some(dirty) = queue.pop() {
                if !seen.insert(dirty) {
                    continue;
                }
                self.cache.invalidate_object(dirty);
                if let Some(children) = derived_from.get(&dirty) {
                    queue.extend(children.iter().copied());
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Task execution
    // ------------------------------------------------------------------

    /// Fire a process by name on explicit bindings.
    ///
    /// With memoization enabled ([`Gaea::enable_memoization`]), a firing
    /// whose canonical bindings match a live cache entry returns the
    /// recorded task and outputs without re-deriving; otherwise the firing
    /// executes and (on success) is memoized.
    pub fn run_process(
        &mut self,
        process: &str,
        bindings: &[(&str, Vec<ObjectId>)],
    ) -> KernelResult<TaskRun> {
        let pid = self.catalog.process_by_name(process)?.id;
        let owned: Vec<(String, Vec<ObjectId>)> = bindings
            .iter()
            .map(|(n, o)| (n.to_string(), o.clone()))
            .collect();
        let key = if self.cache.enabled() {
            let (hash, canonical) = DerivedCache::canonical_key(pid, &owned);
            if let Some((task, outputs)) = self.cache.lookup(hash, &canonical) {
                return Ok(TaskRun { task, outputs });
            }
            Some((hash, canonical))
        } else {
            None
        };
        let run = executor::run_process(
            &mut self.db,
            &mut self.catalog,
            &self.registry,
            &self.externals,
            pid,
            &owned,
            &self.user.clone(),
        )?;
        if let Some((hash, canonical)) = key {
            let inputs: Vec<ObjectId> = owned.iter().flat_map(|(_, o)| o.iter().copied()).collect();
            self.cache
                .insert(hash, canonical, run.task, inputs, run.outputs.clone());
        }
        Ok(run)
    }

    /// Record a manual task for a non-applicative process (§5 extension):
    /// the scientist performed the experimental procedure outside the
    /// system and reports the observed output attributes. The derivation
    /// relationship enters the history like any other task; reproduction
    /// reports it as not replayable.
    pub fn record_manual_task(
        &mut self,
        process: &str,
        bindings: &[(&str, Vec<ObjectId>)],
        outputs: Vec<(&str, Value)>,
        notes: &str,
    ) -> KernelResult<TaskRun> {
        let def = self.catalog.process_by_name(process)?.clone();
        let procedure = match &def.kind {
            ProcessKind::NonApplicative { procedure } => procedure.clone(),
            _ => {
                return Err(KernelError::Schema(format!(
                    "process {process} is not non-applicative; fire it instead of recording it"
                )))
            }
        };
        let owned: Vec<(String, Vec<ObjectId>)> = bindings
            .iter()
            .map(|(n, o)| (n.to_string(), o.clone()))
            .collect();
        executor::validate_bindings(&self.catalog, &def, &owned)?;
        let out_class = self.catalog.class(def.output)?.clone();
        let attrs: BTreeMap<String, Value> = outputs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let obj = executor::insert_object(&mut self.db, &mut self.catalog, &out_class, &attrs)?;
        let task_id = TaskId(self.db.allocate_oid());
        let seq = self.catalog.next_task_seq();
        let mut params = BTreeMap::new();
        params.insert("notes".to_string(), Value::Text(notes.into()));
        params.insert("procedure".to_string(), Value::Text(procedure));
        self.catalog.add_task(Task {
            id: task_id,
            process: def.id,
            process_name: def.name.clone(),
            inputs: owned.into_iter().collect(),
            outputs: vec![obj],
            params,
            seq,
            user: self.user.clone(),
            kind: TaskKind::Manual,
            children: vec![],
        });
        Ok(TaskRun {
            task: task_id,
            outputs: vec![obj],
        })
    }

    // ------------------------------------------------------------------
    // Interactive sessions (§4.3 extension)
    // ------------------------------------------------------------------

    /// Open an interactive session for a process with interaction points.
    /// Bindings are validated now; assertions and mappings run at
    /// [`Gaea::finish_interactive`], once every answer is in.
    pub fn begin_interactive(
        &self,
        process: &str,
        bindings: &[(&str, Vec<ObjectId>)],
    ) -> KernelResult<InteractiveSession> {
        let def = self.catalog.process_by_name(process)?.clone();
        if !def.is_interactive() {
            return Err(KernelError::Schema(format!(
                "process {process} declares no interactions; fire it directly"
            )));
        }
        let owned: Vec<(String, Vec<ObjectId>)> = bindings
            .iter()
            .map(|(n, o)| (n.to_string(), o.clone()))
            .collect();
        executor::validate_bindings(&self.catalog, &def, &owned)?;
        Ok(InteractiveSession::new(def, owned))
    }

    /// Render the pending interaction point's preview — "some temporary
    /// result visualized on the screen" — over the session's bindings and
    /// the answers supplied so far. `None` if the point declares no
    /// preview or every point is answered.
    pub fn interaction_preview(&self, session: &InteractiveSession) -> KernelResult<Option<Value>> {
        let Some(point) = session.pending() else {
            return Ok(None);
        };
        let Some(preview) = &point.preview else {
            return Ok(None);
        };
        let bound =
            executor::load_bindings(&self.db, &self.catalog, &session.def, &session.bindings)?;
        let ctx = EvalContext {
            bindings: &bound,
            registry: &self.registry,
            params: &session.supplied,
        };
        ctx.eval(preview).map(Some)
    }

    /// Complete an interactive session: every declared interaction must be
    /// answered. Assertions are checked and mappings evaluated with the
    /// answers bound as parameters; the recorded task carries the answers
    /// in `params`, making the interaction reproducible without the
    /// scientist.
    pub fn finish_interactive(&mut self, session: InteractiveSession) -> KernelResult<TaskRun> {
        if let Some(point) = session.pending() {
            return Err(KernelError::InteractionPending {
                process: session.def.name.clone(),
                param: point.param.clone(),
            });
        }
        executor::run_primitive(
            &mut self.db,
            &mut self.catalog,
            &self.registry,
            &session.def,
            &session.bindings,
            &self.user.clone(),
            &session.supplied,
            TaskKind::Interactive,
        )
    }

    /// Task record by id.
    pub fn task(&self, id: TaskId) -> KernelResult<&Task> {
        self.catalog.task(id)
    }

    /// Dereference a reference attribute (§4.3 extension): the auto-defined
    /// retrieval function for `ObjRef` attributes.
    pub fn deref_attr(&self, obj: ObjectId, attr: &str) -> KernelResult<DataObject> {
        let o = self.object(obj)?;
        let class = self.catalog.class(o.class)?;
        let def = class.attr(attr).ok_or_else(|| {
            KernelError::Schema(format!("class {} has no attribute {attr:?}", class.name))
        })?;
        if !def.is_reference() {
            return Err(KernelError::Schema(format!(
                "attribute {attr:?} of class {} is not a reference",
                class.name
            )));
        }
        let target = o
            .attr(attr)
            .and_then(Value::as_objref)
            .ok_or_else(|| KernelError::NoData(format!("{obj}.{attr} is null")))?;
        self.object(ObjectId(gaea_store::Oid(target)))
    }
}
