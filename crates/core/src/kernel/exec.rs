//! Execution semantics: objects, firings, manual tasks, interaction (§2.1.4, §4.3, §5).
//!
//! The object CRUD surface and every way a task enters the history:
//! automatic firing ([`Gaea::run_process`]), manual recording of
//! non-applicative procedures, and scientist-driven interactive sessions.
//! Firing delegates to `derivation::executor` for atomic template
//! evaluation; this layer adds the [`super::cache::DerivedCache`] memo in
//! front of it — a repeated firing with identical canonical bindings
//! returns the recorded task without re-deriving.
//!
//! Consistency between the store and everything derived from it rides on
//! the store's MVCC version counters. Each task fingerprints the input
//! versions it consumed; `object_is_stale`/`task_is_stale` classify a
//! derivation as *current* (every fingerprint still matches the live
//! counters, transitively) or *stale* (some input was mutated or deleted
//! since). [`Gaea::update_object`] is O(1) in the recorded history — the
//! store bump plus cache-edge eviction replace the old transitive walk
//! over all task records — and [`Gaea::refresh_object`] re-fires a stale
//! object's producing process to bring it current again.

use super::cache::DerivedCache;
use super::durability::Event;
use super::Gaea;
use crate::catalog::Catalog;
use crate::derivation::executor::{self, PreparedFiring, TaskRun};
use crate::error::{KernelError, KernelResult};
use crate::ids::{ObjectId, ProcessId, TaskId};
use crate::interact::InteractiveSession;
use crate::object::DataObject;
use crate::schema::ProcessKind;
use crate::task::{Task, TaskKind};
use crate::template::EvalContext;
use gaea_adt::Value;
use gaea_store::Database;
use std::collections::BTreeMap;

/// Staleness memo shared across the classification of many objects (one
/// query may flag dozens of hits whose derivations share ancestors).
pub(crate) type StaleMemo = BTreeMap<ObjectId, bool>;

/// Outcome of consulting the derived-result cache before a firing
/// ([`Gaea::probe_cache`]): shared by the serial executor path and the
/// scheduler's commit step so both treat memoization identically.
pub(crate) enum CacheProbe {
    /// Memoization is off; fire and record nothing.
    Disabled,
    /// No valid entry; fire, then record under this canonical key.
    Miss { hash: u64, canonical: String },
    /// A validated entry answered the firing.
    Hit(TaskRun),
}

/// Is `obj` a stale derived object? Base objects (no producing task) are
/// never stale — a mutated base object *is* the current truth. A derived
/// object is stale when its producing task is ([`task_is_stale`]). Cost
/// is O(derivation ancestors), independent of total history size.
pub(crate) fn object_is_stale(
    db: &Database,
    catalog: &Catalog,
    obj: ObjectId,
    memo: &mut StaleMemo,
) -> bool {
    if let Some(&known) = memo.get(&obj) {
        return known;
    }
    // Seed the memo before recursing: derivations are acyclic by
    // construction, but a corrupted catalog must not hang us.
    memo.insert(obj, false);
    let stale = match catalog.producing_task(obj) {
        None => false,
        Some(task) => task_is_stale(db, catalog, task, memo),
    };
    memo.insert(obj, stale);
    stale
}

/// Is this recorded derivation stale? True when any input's live store
/// version differs from the fingerprint recorded at firing time, or when
/// any input is itself a stale derived object (the chain case: mutating a
/// base band falsifies the classification derived from it *and* anything
/// refined from that classification). Tasks recorded before versioning
/// existed carry no fingerprints and classify by their inputs alone.
pub(crate) fn task_is_stale(
    db: &Database,
    catalog: &Catalog,
    task: &Task,
    memo: &mut StaleMemo,
) -> bool {
    for (input, recorded) in &task.input_versions {
        if db.object_version(input.0) != *recorded {
            return true;
        }
    }
    task.all_inputs()
        .into_iter()
        .any(|input| object_is_stale(db, catalog, input, memo))
}

impl Gaea {
    // ------------------------------------------------------------------
    // Objects
    // ------------------------------------------------------------------

    /// Store an object of a class from attribute pairs.
    pub fn insert_object(
        &mut self,
        class: &str,
        attrs: Vec<(&str, Value)>,
    ) -> KernelResult<ObjectId> {
        let def = self.catalog.class_by_name(class)?.clone();
        let map: BTreeMap<String, Value> =
            attrs.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        let oid = executor::insert_object(&mut self.db, &mut self.catalog, &def, &map)?;
        if self.wal_enabled() {
            let rel = def.relation_name();
            let tuple = self.db.get(&rel, oid.0)?.clone();
            self.wal_append(Event::InsertObject {
                rel,
                class: def.id,
                oid: oid.raw(),
                tuple,
            })?;
        }
        Ok(oid)
    }

    /// Load a stored object.
    pub fn object(&self, oid: ObjectId) -> KernelResult<DataObject> {
        executor::load_object(&self.db, &self.catalog, oid)
    }

    /// All object ids of a class, in storage order.
    pub fn objects_of(&self, class: &str) -> KernelResult<Vec<ObjectId>> {
        let def = self.catalog.class_by_name(class)?;
        Ok(self
            .db
            .relation(&def.relation_name())?
            .iter()
            .map(|(oid, _)| ObjectId(oid))
            .collect())
    }

    /// Number of stored objects of a class.
    pub fn count_objects(&self, class: &str) -> KernelResult<usize> {
        let def = self.catalog.class_by_name(class)?;
        Ok(self.db.relation(&def.relation_name())?.len())
    }

    /// Overwrite attributes of a stored object in place. Unknown attribute
    /// names are rejected; reference attributes are checked like inserts.
    ///
    /// Invalidation is O(1) in the recorded history. The store write bumps
    /// `oid`'s MVCC version, which by itself falsifies every memoized
    /// derivation and recorded task that fingerprinted the old version —
    /// they fail their version check the next time anything consults them.
    /// The only extra work done here is dropping the [`DerivedCache`]
    /// entries linked to `oid` through the cache's own input→output edges
    /// (cost proportional to dependent *cache entries*, never to the
    /// number of recorded tasks — the old implementation walked the entire
    /// task history on every update).
    ///
    /// Recorded tasks and stored derived objects are §2.1.1 history — they
    /// faithfully describe the derivation that happened — so they survive
    /// the update. But they are no longer silently servable as current:
    /// step-1 retrieval flags them in [`crate::query::QueryOutcome::stale`],
    /// [`Gaea::reuse_tasks`] dedup refuses to reuse a stale derivation
    /// (it re-fires instead), and [`Gaea::refresh_object`] re-derives a
    /// stale object on demand.
    pub fn update_object(&mut self, oid: ObjectId, attrs: Vec<(&str, Value)>) -> KernelResult<()> {
        let current = self.object(oid)?;
        let class = self.catalog.class(current.class)?.clone();
        let mut merged = current.attrs;
        for (name, value) in attrs {
            merged.insert(name.to_string(), value);
        }
        executor::update_object(&mut self.db, &self.catalog, &class, oid, &merged)?;
        self.cache.invalidate_object(oid);
        if self.wal_enabled() {
            let rel = class.relation_name();
            let tuple = self.db.get(&rel, oid.0)?.clone();
            self.wal_append(Event::UpdateObject {
                rel,
                oid: oid.raw(),
                tuple,
            })?;
        }
        Ok(())
    }

    /// Delete a stored object, returning its last state. The store bump
    /// on deletion advances the object's MVCC version (its counter
    /// outlives it), so every recorded derivation that consumed it
    /// classifies as stale from now on, and memo entries linked to it are
    /// dropped. Task records are history and stay untouched.
    ///
    /// Deletion refuses to orphan references: insert and update guarantee
    /// that reference attributes (§4.3) point at live objects, so an
    /// object still referenced by a stored `Ref` attribute cannot be
    /// deleted.
    pub fn delete_object(&mut self, oid: ObjectId) -> KernelResult<DataObject> {
        let obj = self.object(oid)?;
        let class = self.catalog.class(obj.class)?.clone();
        for other in self.catalog.classes.values() {
            let ref_cols: Vec<usize> = other
                .attrs
                .iter()
                .enumerate()
                .filter(|(_, a)| a.ref_class == Some(obj.class))
                .map(|(i, _)| i)
                .collect();
            if ref_cols.is_empty() {
                continue;
            }
            let Ok(rel) = self.db.relation(&other.relation_name()) else {
                continue;
            };
            for (holder, tuple) in rel.iter() {
                for col in &ref_cols {
                    if tuple.get(*col).as_objref() == Some(oid.raw()) {
                        return Err(KernelError::Schema(format!(
                            "cannot delete {oid}: object {} of class {} still references it",
                            ObjectId(holder),
                            other.name
                        )));
                    }
                }
            }
        }
        self.db.delete(&class.relation_name(), oid.0)?;
        self.catalog.object_class.remove(&oid);
        self.cache.invalidate_object(oid);
        self.wal_append(Event::DeleteObject {
            rel: class.relation_name(),
            oid: oid.raw(),
        })?;
        Ok(obj)
    }

    // ------------------------------------------------------------------
    // Staleness classification (MVCC fingerprints)
    // ------------------------------------------------------------------

    /// Is `obj` a stale derived object — one whose recorded derivation no
    /// longer matches the store, because an input (direct or transitive)
    /// was mutated or deleted after the derivation ran? Base objects are
    /// never stale. O(derivation ancestors).
    pub fn is_stale(&self, obj: ObjectId) -> bool {
        let mut memo = StaleMemo::new();
        object_is_stale(&self.db, &self.catalog, obj, &mut memo)
    }

    /// Is the recorded derivation still current? `false` means some input
    /// version drifted from the task's fingerprint (or an input is itself
    /// stale): the task remains valid *history*, but its outputs no longer
    /// reflect the store's present state.
    pub fn task_is_current(&self, id: TaskId) -> KernelResult<bool> {
        let task = self.catalog.task(id)?;
        let mut memo = StaleMemo::new();
        Ok(!task_is_stale(&self.db, &self.catalog, task, &mut memo))
    }

    /// Re-fire the producing process of a stale (or deleted) derived
    /// object against the current store, recording a fresh task. Stale
    /// *inputs* are refreshed first (recursively, each distinct input at
    /// most once even when several arguments share it), so the new
    /// derivation consumes current data end to end; inputs that are still
    /// current are reused as they are. The freshly derived output is
    /// current ([`Gaea::is_stale`] is `false` for it); the old object and
    /// task remain on record as history. Calling this on an object that is
    /// already current (and still stored) returns its recorded derivation
    /// unchanged.
    ///
    /// Errors: base objects have no producing process; manual
    /// (non-applicative) tasks cannot be re-fired by the system;
    /// interpolation tasks are query-driven — re-issue the query
    /// instead; and a re-derivation that is already in flight as a
    /// background job is refused with
    /// [`KernelError::DerivationPending`] rather than fired twice —
    /// await (or cancel) the named job.
    pub fn refresh_object(&mut self, obj: ObjectId) -> KernelResult<TaskRun> {
        let mut refreshed = BTreeMap::new();
        self.refresh_object_inner(obj, &mut refreshed)
    }

    /// [`Gaea::refresh_object`] with a per-call memo of already-refreshed
    /// objects, so a stale input shared by several arguments (or several
    /// chain levels) re-derives exactly once and every occurrence rebinds
    /// to the same fresh object.
    fn refresh_object_inner(
        &mut self,
        obj: ObjectId,
        refreshed: &mut BTreeMap<ObjectId, TaskRun>,
    ) -> KernelResult<TaskRun> {
        if let Some(done) = refreshed.get(&obj) {
            return Ok(done.clone());
        }
        let task = match self.catalog.producing_task(obj) {
            Some(t) => t.clone(),
            None => {
                return Err(KernelError::Schema(format!(
                    "object {obj} is base data; it has no producing process to re-fire"
                )))
            }
        };
        // No-op only while the object is both still stored and current; a
        // deleted derived object re-materializes through a fresh firing.
        let stored = self.catalog.class_of_object(obj).is_ok();
        if stored && !self.is_stale(obj) {
            return Ok(TaskRun {
                task: task.id,
                outputs: task.outputs.clone(),
            });
        }
        match task.kind {
            TaskKind::Manual => {
                return Err(KernelError::NotAutoFirable {
                    process: task.process_name.clone(),
                    reason: "non-applicative procedure; record a fresh manual task instead".into(),
                })
            }
            TaskKind::Interpolation => {
                return Err(KernelError::NotAutoFirable {
                    process: task.process_name.clone(),
                    reason: "interpolation is query-driven; re-issue the query to re-interpolate"
                        .into(),
                })
            }
            _ => {}
        }
        // Rebuild the bindings in declared-argument order, refreshing any
        // stale or deleted input first so the chain re-derives
        // root-to-leaf.
        let def = self.catalog.process(task.process)?.clone();
        let mut owned: Vec<(String, Vec<ObjectId>)> = Vec::with_capacity(def.args.len());
        for arg in &def.args {
            let objs = task.inputs.get(&arg.name).cloned().ok_or_else(|| {
                KernelError::Template(format!(
                    "task {} lacks recorded input {:?}",
                    task.id, arg.name
                ))
            })?;
            let mut fresh = Vec::with_capacity(objs.len());
            for o in objs {
                let needs_refresh = self.catalog.class_of_object(o).is_err() || self.is_stale(o);
                if needs_refresh {
                    let run = self.refresh_object_inner(o, refreshed)?;
                    fresh.push(*run.outputs.first().ok_or_else(|| {
                        KernelError::Template(format!(
                            "refresh of input {o} produced no output object"
                        ))
                    })?);
                } else {
                    fresh.push(o);
                }
            }
            owned.push((arg.name.clone(), fresh));
        }
        // Duplicate guard: an identical current derivation may already be
        // on record — e.g. an earlier refresh call re-derived this shared
        // upstream along another path of a diamond. Reuse it instead of
        // re-firing, so each distinct derivation happens exactly once
        // however many refresh calls reach it.
        let run = match self.reuse_current_firing(task.process, &owned) {
            Some(run) => run,
            None => {
                // In-flight guard: a background job may already be
                // computing exactly this re-derivation (submitting a
                // stale goal is the documented background-refresh
                // pattern). Re-firing would repeat the remote round-trip
                // and block the session on it — refuse with the job to
                // await instead, like the query walker does.
                let def = self.catalog.process(task.process)?;
                let key = super::query::dedup_key_for(def, &owned);
                let process = def.name.clone();
                if let Some(job) = self.jobs_in_flight_keys().get(&key) {
                    return Err(KernelError::DerivationPending { process, job: *job });
                }
                self.run_process_owned(task.process, owned)?
            }
        };
        refreshed.insert(obj, run.clone());
        Ok(run)
    }

    // ------------------------------------------------------------------
    // Task execution
    // ------------------------------------------------------------------

    /// Fire a process by name on explicit bindings.
    ///
    /// With memoization enabled ([`Gaea::enable_memoization`]), a firing
    /// whose canonical bindings match a live *and still-valid* cache entry
    /// returns the recorded task and outputs without re-deriving. Validity
    /// is an O(inputs + outputs) MVCC check: every store version the entry
    /// recorded must still match the live counters, and no input may be a
    /// stale derived object. Otherwise the firing executes and (on
    /// success) is memoized with the versions observed now.
    pub fn run_process(
        &mut self,
        process: &str,
        bindings: &[(&str, Vec<ObjectId>)],
    ) -> KernelResult<TaskRun> {
        let pid = self.catalog.process_by_name(process)?.id;
        let owned: Vec<(String, Vec<ObjectId>)> = bindings
            .iter()
            .map(|(n, o)| (n.to_string(), o.clone()))
            .collect();
        self.run_process_owned(pid, owned)
    }

    /// [`Gaea::run_process`] over owned bindings and a resolved process id
    /// (shared with [`Gaea::refresh_object`]).
    pub(crate) fn run_process_owned(
        &mut self,
        pid: ProcessId,
        owned: Vec<(String, Vec<ObjectId>)>,
    ) -> KernelResult<TaskRun> {
        let key = match self.probe_cache(pid, &owned) {
            CacheProbe::Hit(run) => return Ok(run),
            CacheProbe::Miss { hash, canonical } => Some((hash, canonical)),
            CacheProbe::Disabled => None,
        };
        let mark = self.wal_mark();
        let run = executor::run_process(
            &mut self.db,
            &mut self.catalog,
            &self.registry,
            &self.externals,
            pid,
            &owned,
            &self.user.clone(),
        )?;
        if let Some((hash, canonical)) = key {
            self.record_cache(hash, canonical, &owned, &run);
        }
        self.wal_commit_delta(mark)?;
        Ok(run)
    }

    /// An identical *current* prior derivation of `pid` on exactly these
    /// bindings, if [`Gaea::reuse_tasks`] allows reusing it — the
    /// refresh machinery's duplicate guard. Without this check, two
    /// refresh calls whose stale chains share an upstream (the diamond
    /// case split across calls, or a `FRESH` query looping over several
    /// stale hits) would each re-fire the shared derivation once per
    /// path, recording duplicate tasks. Priors whose outputs were
    /// deleted do not count (a refresh must re-materialize them), and
    /// stale priors are history, not answers.
    pub(crate) fn reuse_current_firing(
        &self,
        pid: ProcessId,
        owned: &[(String, Vec<ObjectId>)],
    ) -> Option<TaskRun> {
        if !self.reuse_tasks {
            return None;
        }
        let def = self.catalog.process(pid).ok()?;
        let key = super::query::dedup_key_for(def, owned);
        // Several records can share one key (a stale derivation and its
        // later re-fire bind identically when only input *versions*
        // drifted): any current, still-stored match answers.
        let mut memo = StaleMemo::new();
        let task = self
            .catalog
            .tasks_of_process(pid)
            .filter(|t| t.dedup_key() == key)
            .find(|t| {
                t.outputs
                    .iter()
                    .all(|o| self.catalog.class_of_object(*o).is_ok())
                    && !task_is_stale(&self.db, &self.catalog, t, &mut memo)
            })?;
        Some(TaskRun {
            task: task.id,
            outputs: task.outputs.clone(),
        })
    }

    /// Consult the derived-result cache for a firing of `pid` on `owned`
    /// bindings: a validated hit (every recorded input/output version
    /// still matches the live counters and no input is a stale derived
    /// object), or the canonical key to record under after firing.
    pub(crate) fn probe_cache(
        &self,
        pid: ProcessId,
        owned: &[(String, Vec<ObjectId>)],
    ) -> CacheProbe {
        if !self.cache.enabled() {
            return CacheProbe::Disabled;
        }
        let (hash, canonical) = DerivedCache::canonical_key(pid, owned);
        let db = &self.db;
        let catalog = &self.catalog;
        let hit = self
            .cache
            .lookup_where(hash, &canonical, |inputs, outputs| {
                let mut memo = StaleMemo::new();
                inputs
                    .iter()
                    .chain(outputs)
                    .all(|(o, v)| db.object_version(o.0) == *v)
                    && !inputs
                        .iter()
                        .any(|(o, _)| object_is_stale(db, catalog, *o, &mut memo))
            });
        match hit {
            Some((task, outputs)) => CacheProbe::Hit(TaskRun { task, outputs }),
            None => CacheProbe::Miss { hash, canonical },
        }
    }

    /// Memoize a completed firing under its canonical key, with the
    /// input/output store versions observed now.
    pub(crate) fn record_cache(
        &mut self,
        hash: u64,
        canonical: String,
        owned: &[(String, Vec<ObjectId>)],
        run: &TaskRun,
    ) {
        let inputs: Vec<(ObjectId, u64)> = owned
            .iter()
            .flat_map(|(_, o)| o.iter().copied())
            .map(|o| (o, self.db.object_version(o.0)))
            .collect();
        let outputs: Vec<(ObjectId, u64)> = run
            .outputs
            .iter()
            .map(|o| (*o, self.db.object_version(o.0)))
            .collect();
        self.cache
            .insert(hash, canonical, run.task, inputs, outputs);
    }

    /// Commit a [`PreparedFiring`] computed by a scheduler worker — the
    /// serialized tail of [`Gaea::run_process_owned`]: consult the memo
    /// (an identical *current* derivation recorded meanwhile is reused
    /// instead of duplicated), otherwise materialize the prepared output
    /// and record the firing in the cache.
    pub(crate) fn commit_prepared(&mut self, prepared: PreparedFiring) -> KernelResult<TaskRun> {
        let key = match self.probe_cache(prepared.process, &prepared.bindings) {
            CacheProbe::Hit(run) => return Ok(run),
            CacheProbe::Miss { hash, canonical } => Some((hash, canonical)),
            CacheProbe::Disabled => None,
        };
        let owned = prepared.bindings.clone();
        let mark = self.wal_mark();
        let run = executor::apply_result(
            &mut self.db,
            &mut self.catalog,
            prepared,
            &self.user.clone(),
        )?;
        if let Some((hash, canonical)) = key {
            self.record_cache(hash, canonical, &owned, &run);
        }
        self.wal_commit_delta(mark)?;
        Ok(run)
    }

    /// Record a manual task for a non-applicative process (§5 extension):
    /// the scientist performed the experimental procedure outside the
    /// system and reports the observed output attributes. The derivation
    /// relationship enters the history like any other task; reproduction
    /// reports it as not replayable.
    pub fn record_manual_task(
        &mut self,
        process: &str,
        bindings: &[(&str, Vec<ObjectId>)],
        outputs: Vec<(&str, Value)>,
        notes: &str,
    ) -> KernelResult<TaskRun> {
        let def = self.catalog.process_by_name(process)?.clone();
        let procedure = match &def.kind {
            ProcessKind::NonApplicative { procedure } => procedure.clone(),
            _ => {
                return Err(KernelError::Schema(format!(
                    "process {process} is not non-applicative; fire it instead of recording it"
                )))
            }
        };
        let owned: Vec<(String, Vec<ObjectId>)> = bindings
            .iter()
            .map(|(n, o)| (n.to_string(), o.clone()))
            .collect();
        executor::validate_bindings(&self.catalog, &def, &owned)?;
        let out_class = self.catalog.class(def.output)?.clone();
        let attrs: BTreeMap<String, Value> = outputs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        // The inserted output rides in the task's commit delta below.
        let mark = self.wal_mark();
        let obj = executor::insert_object(&mut self.db, &mut self.catalog, &out_class, &attrs)?;
        let task_id = TaskId(self.db.allocate_oid());
        let seq = self.catalog.next_task_seq();
        let mut params = BTreeMap::new();
        params.insert("notes".to_string(), Value::Text(notes.into()));
        params.insert("procedure".to_string(), Value::Text(procedure));
        let input_versions = executor::input_versions_of(&self.db, &owned);
        self.catalog.add_task(Task {
            id: task_id,
            process: def.id,
            process_name: def.name.clone(),
            inputs: owned.into_iter().collect(),
            input_versions,
            outputs: vec![obj],
            params,
            seq,
            user: self.user.clone(),
            kind: TaskKind::Manual,
            children: vec![],
        });
        self.wal_commit_delta(mark)?;
        Ok(TaskRun {
            task: task_id,
            outputs: vec![obj],
        })
    }

    // ------------------------------------------------------------------
    // Interactive sessions (§4.3 extension)
    // ------------------------------------------------------------------

    /// Open an interactive session for a process with interaction points.
    /// Bindings are validated now; assertions and mappings run at
    /// [`Gaea::finish_interactive`], once every answer is in.
    pub fn begin_interactive(
        &self,
        process: &str,
        bindings: &[(&str, Vec<ObjectId>)],
    ) -> KernelResult<InteractiveSession> {
        let def = self.catalog.process_by_name(process)?.clone();
        if !def.is_interactive() {
            return Err(KernelError::Schema(format!(
                "process {process} declares no interactions; fire it directly"
            )));
        }
        let owned: Vec<(String, Vec<ObjectId>)> = bindings
            .iter()
            .map(|(n, o)| (n.to_string(), o.clone()))
            .collect();
        executor::validate_bindings(&self.catalog, &def, &owned)?;
        Ok(InteractiveSession::new(def, owned))
    }

    /// Render the pending interaction point's preview — "some temporary
    /// result visualized on the screen" — over the session's bindings and
    /// the answers supplied so far. `None` if the point declares no
    /// preview or every point is answered.
    pub fn interaction_preview(&self, session: &InteractiveSession) -> KernelResult<Option<Value>> {
        let Some(point) = session.pending() else {
            return Ok(None);
        };
        let Some(preview) = &point.preview else {
            return Ok(None);
        };
        let bound =
            executor::load_bindings(&self.db, &self.catalog, &session.def, &session.bindings)?;
        let ctx = EvalContext {
            bindings: &bound,
            registry: &self.registry,
            params: &session.supplied,
        };
        ctx.eval(preview).map(Some)
    }

    /// Complete an interactive session: every declared interaction must be
    /// answered. Assertions are checked and mappings evaluated with the
    /// answers bound as parameters; the recorded task carries the answers
    /// in `params`, making the interaction reproducible without the
    /// scientist.
    pub fn finish_interactive(&mut self, session: InteractiveSession) -> KernelResult<TaskRun> {
        if let Some(point) = session.pending() {
            return Err(KernelError::InteractionPending {
                process: session.def.name.clone(),
                param: point.param.clone(),
            });
        }
        let mark = self.wal_mark();
        let run = executor::run_primitive(
            &mut self.db,
            &mut self.catalog,
            &self.registry,
            &session.def,
            &session.bindings,
            &self.user.clone(),
            &session.supplied,
            TaskKind::Interactive,
        )?;
        self.wal_commit_delta(mark)?;
        Ok(run)
    }

    /// Task record by id.
    pub fn task(&self, id: TaskId) -> KernelResult<&Task> {
        self.catalog.task(id)
    }

    /// Dereference a reference attribute (§4.3 extension): the auto-defined
    /// retrieval function for `ObjRef` attributes.
    pub fn deref_attr(&self, obj: ObjectId, attr: &str) -> KernelResult<DataObject> {
        let o = self.object(obj)?;
        let class = self.catalog.class(o.class)?;
        let def = class.attr(attr).ok_or_else(|| {
            KernelError::Schema(format!("class {} has no attribute {attr:?}", class.name))
        })?;
        if !def.is_reference() {
            return Err(KernelError::Schema(format!(
                "attribute {attr:?} of class {} is not a reference",
                class.name
            )));
        }
        let target = o
            .attr(attr)
            .and_then(Value::as_objref)
            .ok_or_else(|| KernelError::NoData(format!("{obj}.{attr} is null")))?;
        self.object(ObjectId(gaea_store::Oid(target)))
    }
}
