use super::*;
use crate::error::KernelError;
use crate::ids::ObjectId;
use crate::object::{SPATIAL_ATTR, TEMPORAL_ATTR};
use crate::query::{Query, QueryMethod, QueryStrategy};
use crate::task::TaskKind;
use crate::template::{Expr, Mapping, Template};
use gaea_adt::{AbsTime, GeoBox, Image, PixType, TimeRange, TypeTag, Value};
use std::collections::BTreeSet;

fn africa() -> GeoBox {
    GeoBox::new(-20.0, -35.0, 55.0, 38.0)
}

fn day(y: i64, m: u32, d: u32) -> AbsTime {
    AbsTime::from_ymd(y, m, d).unwrap()
}

/// A kernel with the Figure 3 schema: tm (base) --P20--> landcover.
fn p20_kernel() -> Gaea {
    let mut g = Gaea::in_memory();
    g.define_class(
        ClassSpec::base("tm")
            .attr("data", TypeTag::Image)
            .doc("Rectified Landsat TM"),
    )
    .unwrap();
    g.define_class(
        ClassSpec::derived("landcover")
            .attr("data", TypeTag::Image)
            .attr("numclass", TypeTag::Int4)
            .doc("Land cover"),
    )
    .unwrap();
    let template = Template {
        assertions: vec![
            Expr::eq(
                Expr::Card(Box::new(Expr::Arg("bands".into()))),
                Expr::int(3),
            ),
            Expr::Common(Box::new(Expr::proj("bands", "spatialextent"))),
            Expr::Common(Box::new(Expr::proj("bands", "timestamp"))),
        ],
        mappings: vec![
            Mapping {
                attr: "data".into(),
                expr: Expr::apply(
                    "unsuperclassify",
                    vec![
                        Expr::apply("composite", vec![Expr::Arg("bands".into())]),
                        Expr::int(12),
                    ],
                ),
            },
            Mapping {
                attr: "numclass".into(),
                expr: Expr::int(12),
            },
            Mapping {
                attr: SPATIAL_ATTR.into(),
                expr: Expr::AnyOf(Box::new(Expr::proj("bands", "spatialextent"))),
            },
            Mapping {
                attr: TEMPORAL_ATTR.into(),
                expr: Expr::AnyOf(Box::new(Expr::proj("bands", "timestamp"))),
            },
        ],
    };
    g.define_process(
        ProcessSpec::new("P20", "landcover")
            .setof_arg("bands", "tm", 3)
            .template(template)
            .doc("unsupervised classification (Figure 3)"),
    )
    .unwrap();
    g
}

fn insert_band(g: &mut Gaea, fill: f64, t: AbsTime) -> ObjectId {
    g.insert_object(
        "tm",
        vec![
            (
                "data",
                Value::image(Image::filled(8, 8, PixType::Float8, fill)),
            ),
            (SPATIAL_ATTR, Value::GeoBox(africa())),
            (TEMPORAL_ATTR, Value::AbsTime(t)),
        ],
    )
    .unwrap()
}

#[test]
fn figure3_process_runs_and_records_task() {
    let mut g = p20_kernel();
    let t0 = day(1986, 1, 15);
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, 10.0 + i as f64 * 50.0, t0))
        .collect();
    let run = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    assert_eq!(run.outputs.len(), 1);
    let out = g.object(run.outputs[0]).unwrap();
    assert_eq!(out.attr("numclass"), Some(&Value::Int4(12)));
    assert_eq!(out.spatial_extent(), Some(africa()));
    assert_eq!(out.timestamp(), Some(t0));
    let task = g.task(run.task).unwrap();
    assert_eq!(task.process_name, "P20");
    assert_eq!(task.inputs["bands"], bands);
    assert_eq!(task.outputs, run.outputs);
}

#[test]
fn assertions_guard_execution() {
    let mut g = p20_kernel();
    let t0 = day(1986, 1, 15);
    let b1 = insert_band(&mut g, 1.0, t0);
    let b2 = insert_band(&mut g, 2.0, t0);
    // card(bands) = 3 fails with two bands (binding validation catches
    // the min_card first).
    assert!(g.run_process("P20", &[("bands", vec![b1, b2])]).is_err());
    // Mixed timestamps fail the common(timestamp) guard.
    let b3 = insert_band(&mut g, 3.0, day(1987, 1, 15));
    let err = g
        .run_process("P20", &[("bands", vec![b1, b2, b3])])
        .unwrap_err();
    assert!(matches!(err, KernelError::AssertionFailed { .. }), "{err}");
}

#[test]
fn query_step1_retrieval() {
    let mut g = p20_kernel();
    let t0 = day(1986, 1, 15);
    for i in 0..3 {
        insert_band(&mut g, i as f64, t0);
    }
    let q = Query::class("tm").over(africa()).at(t0);
    let out = g.query(&q).unwrap();
    assert_eq!(out.method, QueryMethod::Retrieved);
    assert_eq!(out.objects.len(), 3);
    assert!(out.tasks.is_empty());
}

#[test]
fn query_step3_derivation() {
    // The paper's running example: "the derivation of the land use
    // classification for January 1986 for Africa [...] translates into
    // the retrieval of the proper Landsat TM spatio-temporal objects,
    // followed by the application of the unsupervised classification
    // process (P20)."
    let mut g = p20_kernel();
    let t0 = day(1986, 1, 15);
    for i in 0..3 {
        insert_band(&mut g, 10.0 + i as f64 * 40.0, t0);
    }
    let q = Query::class("landcover").over(africa()).at(t0);
    let out = g.query(&q).unwrap();
    assert_eq!(out.method, QueryMethod::Derived);
    assert_eq!(out.objects.len(), 1);
    assert_eq!(out.tasks.len(), 1);
    assert_eq!(out.objects[0].attr("numclass"), Some(&Value::Int4(12)));
    // The derived object is now stored: the same query is a retrieval.
    let again = g.query(&q).unwrap();
    assert_eq!(again.method, QueryMethod::Retrieved);
}

#[test]
fn query_retrieve_only_strategy_fails_without_data() {
    let mut g = p20_kernel();
    let q = Query::class("landcover").with_strategy(QueryStrategy::RetrieveOnly);
    assert!(matches!(g.query(&q), Err(KernelError::NoData(_))));
}

#[test]
fn query_derivation_impossible_without_base_data() {
    let mut g = p20_kernel();
    let t0 = day(1986, 1, 15);
    insert_band(&mut g, 1.0, t0); // only one band; P20 needs 3
    let q = Query::class("landcover").with_strategy(QueryStrategy::PreferDerivation);
    let err = g.query(&q).unwrap_err();
    assert!(err.to_string().contains("tm"), "{err}");
}

#[test]
fn query_step2_interpolation() {
    let mut g = p20_kernel();
    // Two tm snapshots at day 0 and day 10; ask for day 5.
    let t1 = day(1988, 6, 1);
    let t2 = AbsTime(t1.0 + 10 * 86_400);
    let tq = AbsTime(t1.0 + 5 * 86_400);
    insert_band(&mut g, 0.0, t1);
    insert_band(&mut g, 10.0, t2);
    let q = Query::class("tm").over(africa()).at(tq);
    let out = g.query(&q).unwrap();
    assert_eq!(out.method, QueryMethod::Interpolated);
    let img = out.objects[0].attr("data").unwrap().as_image().unwrap();
    assert_eq!(img.get(0, 0), 5.0);
    assert_eq!(out.objects[0].timestamp(), Some(tq));
    // The interpolation was recorded as a task.
    assert_eq!(out.tasks.len(), 1);
    let task = g.task(out.tasks[0]).unwrap();
    assert_eq!(task.kind, TaskKind::Interpolation);
    assert_eq!(task.params["at"], Value::AbsTime(tq));
}

#[test]
fn lineage_tree_and_comparison() {
    let mut g = p20_kernel();
    let t0 = day(1986, 1, 15);
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, 10.0 + i as f64 * 50.0, t0))
        .collect();
    let run = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    let tree = g.lineage(run.outputs[0]).unwrap();
    assert_eq!(tree.depth(), 2);
    assert_eq!(tree.size(), 4); // output + 3 bands
    assert_eq!(tree.via.as_ref().unwrap().1, "P20");
    assert!(tree.inputs.iter().all(|n| n.via.is_none()));
    let sig = tree.signature();
    assert_eq!(sig, "P20(base:tm,base:tm,base:tm)");
    // A base band's lineage is a leaf.
    let leaf = g.lineage(bands[0]).unwrap();
    assert_eq!(leaf.depth(), 1);
    // Ancestors/descendants.
    assert_eq!(g.ancestors(run.outputs[0]).unwrap().len(), 3);
    assert_eq!(g.descendants(bands[0]), run.outputs);
}

#[test]
fn memoization_reuses_identical_derivations() {
    let mut g = p20_kernel();
    let t0 = day(1986, 1, 15);
    for i in 0..3 {
        insert_band(&mut g, 10.0 + i as f64 * 40.0, t0);
    }
    let q = Query::class("landcover")
        .at(t0)
        .with_strategy(QueryStrategy::PreferDerivation);
    let first = g.query(&q).unwrap();
    assert_eq!(first.method, QueryMethod::Derived);
    let tasks_before = g.catalog().tasks.len();
    // Delete nothing; ask again — retrieval answers. Force derivation
    // path by querying a fresh-but-identical binding via run-level API:
    let no_exclude = BTreeSet::new();
    let run1 = g
        .fire_with_chosen_bindings(
            g.catalog.process_by_name("P20").unwrap().id,
            &q,
            &no_exclude,
        )
        .unwrap();
    // Reuse: no new task was created.
    assert_eq!(g.catalog().tasks.len(), tasks_before);
    assert_eq!(first.tasks[0], run1.task);
    // A plan that already consumed this derivation (exclude set) cannot
    // reuse it and finds no alternative binding.
    let mut exclude = BTreeSet::new();
    exclude.insert(g.catalog.task(run1.task).unwrap().dedup_key());
    let err = g
        .fire_with_chosen_bindings(g.catalog.process_by_name("P20").unwrap().id, &q, &exclude)
        .unwrap_err();
    assert!(matches!(err, KernelError::DerivationImpossible(_)));
    // With reuse disabled the kernel refuses to duplicate silently —
    // it looks for a *different* binding and reports there is none.
    g.reuse_tasks = false;
    let err = g
        .fire_with_chosen_bindings(
            g.catalog.process_by_name("P20").unwrap().id,
            &q,
            &no_exclude,
        )
        .unwrap_err();
    assert!(matches!(err, KernelError::DerivationImpossible(_)));
}

#[test]
fn duplicate_task_detection() {
    let mut g = p20_kernel();
    let t0 = day(1986, 1, 15);
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, 10.0 + i as f64 * 50.0, t0))
        .collect();
    g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    assert!(g.duplicate_tasks().is_empty());
    g.run_process("P20", &[("bands", bands)]).unwrap();
    let dups = g.duplicate_tasks();
    assert_eq!(dups.len(), 1);
    assert_eq!(dups[0].len(), 2);
}

#[test]
fn experiment_reproduction_is_faithful() {
    let mut g = p20_kernel();
    let t0 = day(1986, 1, 15);
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, 10.0 + i as f64 * 50.0, t0))
        .collect();
    let run = g.run_process("P20", &[("bands", bands)]).unwrap();
    g.record_experiment("jan86_africa", "land use Jan 1986", vec![run.task])
        .unwrap();
    let rep = g.reproduce_experiment("jan86_africa").unwrap();
    assert!(rep.is_faithful(), "{rep:?}");
    assert_eq!(rep.tasks_rerun, 1);
    // Unknown experiment errors.
    assert!(g.reproduce_experiment("nope").is_err());
}

#[test]
fn concept_queries_fan_out_over_members() {
    let mut g = p20_kernel();
    g.define_concept(
        "land_cover_concept",
        &["landcover"],
        &[],
        "land cover classifications however derived",
    )
    .unwrap();
    let t0 = day(1986, 1, 15);
    for i in 0..3 {
        insert_band(&mut g, 10.0 + i as f64 * 40.0, t0);
    }
    let q = Query::concept("land_cover_concept")
        .at(t0)
        .with_strategy(QueryStrategy::PreferDerivation);
    let out = g.query(&q).unwrap();
    assert_eq!(out.method, QueryMethod::Derived);
    assert_eq!(out.objects.len(), 1);
}

#[test]
fn definition_validation_errors() {
    let mut g = p20_kernel();
    // Unknown output class.
    assert!(g
        .define_process(ProcessSpec::new("bad", "nope").arg("x", "tm"))
        .is_err());
    // Deriving into a base class.
    assert!(g
        .define_process(ProcessSpec::new("bad", "tm").arg("x", "landcover"))
        .is_err());
    // Undeclared template argument.
    let spec = ProcessSpec::new("bad", "landcover")
        .arg("x", "tm")
        .template(Template {
            assertions: vec![],
            mappings: vec![Mapping {
                attr: "numclass".into(),
                expr: Expr::Card(Box::new(Expr::Arg("ghost".into()))),
            }],
        });
    assert!(g.define_process(spec).is_err());
    // Unknown mapped attribute.
    let spec = ProcessSpec::new("bad", "landcover")
        .arg("x", "tm")
        .template(Template {
            assertions: vec![],
            mappings: vec![Mapping {
                attr: "ghost_attr".into(),
                expr: Expr::int(1),
            }],
        });
    assert!(g.define_process(spec).is_err());
    // Duplicate process name.
    assert!(g
        .define_process(ProcessSpec::new("P20", "landcover").arg("x", "tm"))
        .is_err());
}

#[test]
fn interactive_definition_validation() {
    let mut g = p20_kernel();
    // Template references a parameter no interaction declares.
    let spec = ProcessSpec::new("bad", "landcover")
        .arg("x", "tm")
        .template(Template {
            assertions: vec![],
            mappings: vec![Mapping {
                attr: "numclass".into(),
                expr: Expr::param("k"),
            }],
        });
    let err = g.define_process(spec).unwrap_err();
    assert!(err.to_string().contains("undeclared parameter"), "{err}");
    // Duplicate interaction parameter names.
    let spec = ProcessSpec::new("bad", "landcover")
        .arg("x", "tm")
        .interact("k", "pick k", gaea_adt::TypeTag::Int4)
        .interact("k", "pick k again", gaea_adt::TypeTag::Int4);
    let err = g.define_process(spec).unwrap_err();
    assert!(err.to_string().contains("declared twice"), "{err}");
    // Preview referencing an undeclared argument.
    let spec = ProcessSpec::new("bad", "landcover")
        .arg("x", "tm")
        .interact_preview(
            "k",
            "pick",
            gaea_adt::TypeTag::Int4,
            Expr::Arg("ghost".into()),
        );
    let err = g.define_process(spec).unwrap_err();
    assert!(err.to_string().contains("undeclared argument"), "{err}");
    // Preview using a parameter answered only later.
    let spec = ProcessSpec::new("bad", "landcover")
        .arg("x", "tm")
        .interact_preview(
            "first",
            "uses the second answer",
            gaea_adt::TypeTag::Int4,
            Expr::param("second"),
        )
        .interact("second", "too late", gaea_adt::TypeTag::Int4);
    let err = g.define_process(spec).unwrap_err();
    assert!(err.to_string().contains("not answered yet"), "{err}");
    // A preview may use *earlier* answers.
    let spec = ProcessSpec::new("ok_chain", "landcover")
        .arg("x", "tm")
        .interact("first", "a number", gaea_adt::TypeTag::Int4)
        .interact_preview(
            "second",
            "shown the first answer",
            gaea_adt::TypeTag::Int4,
            Expr::param("first"),
        )
        .template(Template {
            assertions: vec![],
            mappings: vec![Mapping {
                attr: "numclass".into(),
                expr: Expr::param("second"),
            }],
        });
    g.define_process(spec).unwrap();
    // Declared-but-unreferenced interactions are allowed: the answer is
    // recorded for reproduction even if no mapping consumes it.
    let spec = ProcessSpec::new("ok_extra", "landcover")
        .arg("x", "tm")
        .interact("ack", "confirm visual check", gaea_adt::TypeTag::Bool)
        .template(Template {
            assertions: vec![],
            mappings: vec![Mapping {
                attr: "numclass".into(),
                expr: Expr::int(1),
            }],
        });
    g.define_process(spec).unwrap();
}

#[test]
fn chained_interactions_preview_earlier_answers() {
    let mut g = p20_kernel();
    let spec = ProcessSpec::new("P_chain", "landcover")
        .arg("x", "tm")
        .interact("first", "a number", gaea_adt::TypeTag::Int4)
        .interact_preview(
            "second",
            "shown the first answer",
            gaea_adt::TypeTag::Int4,
            Expr::param("first"),
        )
        .template(Template {
            assertions: vec![],
            mappings: vec![Mapping {
                attr: "numclass".into(),
                expr: Expr::param("second"),
            }],
        });
    g.define_process(spec).unwrap();
    let t0 = day(1986, 1, 15);
    let b = insert_band(&mut g, 1.0, t0);
    let mut session = g.begin_interactive("P_chain", &[("x", vec![b])]).unwrap();
    // First point has no preview.
    assert!(g.interaction_preview(&session).unwrap().is_none());
    session.supply(Value::Int4(7)).unwrap();
    // Second point previews the first answer.
    assert_eq!(
        g.interaction_preview(&session).unwrap(),
        Some(Value::Int4(7))
    );
    session.supply(Value::Int4(9)).unwrap();
    let run = g.finish_interactive(session).unwrap();
    let out = g.object(run.outputs[0]).unwrap();
    assert_eq!(out.attr("numclass"), Some(&Value::Int4(9)));
    let task = g.task(run.task).unwrap();
    assert_eq!(task.params["first"], Value::Int4(7));
    assert_eq!(task.params["second"], Value::Int4(9));
}

#[test]
fn save_load_round_trip() {
    let mut g = p20_kernel();
    let t0 = day(1986, 1, 15);
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, 10.0 + i as f64 * 50.0, t0))
        .collect();
    let run = g.run_process("P20", &[("bands", bands)]).unwrap();
    g.record_experiment("e1", "classification", vec![run.task])
        .unwrap();
    let dir = std::env::temp_dir().join(format!("gaea-kernel-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    g.save(&dir).unwrap();
    let loaded = Gaea::load(&dir).unwrap();
    // Catalog survived.
    assert!(loaded.catalog().process_by_name("P20").is_ok());
    assert_eq!(loaded.count_objects("tm").unwrap(), 3);
    assert_eq!(loaded.count_objects("landcover").unwrap(), 1);
    // Reproduction still works on the loaded kernel.
    let rep = loaded.reproduce_experiment("e1").unwrap();
    assert!(rep.is_faithful());
    // Lineage survived.
    let out = loaded.objects_of("landcover").unwrap()[0];
    assert_eq!(loaded.lineage(out).unwrap().size(), 4);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn time_window_queries() {
    let mut g = p20_kernel();
    insert_band(&mut g, 1.0, day(1986, 1, 10));
    insert_band(&mut g, 2.0, day(1986, 2, 10));
    insert_band(&mut g, 3.0, day(1987, 1, 10));
    let jan86 = TimeRange::new(day(1986, 1, 1), day(1986, 1, 31));
    let q = Query::class("tm").during(jan86);
    let out = g.query(&q).unwrap();
    assert_eq!(out.objects.len(), 1);
    let y86 = TimeRange::new(day(1986, 1, 1), day(1986, 12, 31));
    let out = g.query(&Query::class("tm").during(y86)).unwrap();
    assert_eq!(out.objects.len(), 2);
}
