//! Provenance services: lineage, experiments, reproduction, DOT export (§2.1.1, §4.2).
//!
//! The history side of managed derived data. Lineage walks the recorded
//! task graph (derivation trees, ancestor/descendant closure, structural
//! comparison, duplicate detection); experiments bundle tasks so a whole
//! analysis can be re-evaluated — [`Gaea::reproduce_experiment`] replays
//! every replayable task against its recorded inputs and parameters and
//! compares regenerated attributes with the stored outputs by value,
//! reporting manual procedures and unreachable external sites as
//! not-replayable rather than divergent. Rendering (`describe`,
//! `lineage_dot`, `derivation_dot`, experiment comparison) also lives
//! here, as the §4.2 browsing surface.

use super::exec::{object_is_stale, task_is_stale, StaleMemo};
use super::Gaea;
use crate::derivation::executor;
use crate::derivation::net::DerivationNet;
use crate::error::{KernelError, KernelResult};
use crate::experiment::{Experiment, Reproduction};
use crate::external::ExternalInputs;
use crate::ids::{ExperimentId, ObjectId, TaskId};
use crate::lineage;
use crate::object::DataObject;
use crate::task::{Task, TaskKind};
use crate::template::{Binding, EvalContext};
use gaea_adt::Value;
use std::collections::BTreeMap;

/// One input of a recorded task whose store version no longer matches the
/// version fingerprinted at derivation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftedInput {
    /// The input object.
    pub object: ObjectId,
    /// Version recorded when the task fired.
    pub recorded: u64,
    /// The object's current store version.
    pub current: u64,
}

/// Currency of one task in a derivation chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskCurrency {
    /// The task.
    pub task: TaskId,
    /// Its process name (stable display handle).
    pub process: String,
    /// False if any input drifted here or upstream.
    pub current: bool,
    /// Inputs whose live version differs from the recorded fingerprint.
    pub drifted_inputs: Vec<DriftedInput>,
}

/// The version-level staleness story of one derived object: its own
/// classification plus the per-task drift along its derivation chain —
/// the lineage report enriched with the MVCC metadata that explains *why*
/// an object is (or is not) current.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StalenessReport {
    /// The object under examination.
    pub object: ObjectId,
    /// True if the object's derivation no longer matches the store.
    pub stale: bool,
    /// Producing task of the object and of each derivation ancestor, in
    /// discovery order (object's own task first). Empty for base data.
    pub chain: Vec<TaskCurrency>,
}

impl Gaea {
    // ------------------------------------------------------------------
    // Lineage (§4.2)
    // ------------------------------------------------------------------

    /// Derivation tree of an object.
    pub fn lineage(&self, obj: ObjectId) -> KernelResult<lineage::DerivationNode> {
        lineage::derivation_tree(&self.catalog, obj, 64)
    }

    /// Structural comparison of two objects' derivations.
    pub fn same_derivation(&self, a: ObjectId, b: ObjectId) -> KernelResult<bool> {
        lineage::same_derivation(&self.catalog, a, b)
    }

    /// Transitive input objects.
    pub fn ancestors(&self, obj: ObjectId) -> KernelResult<Vec<ObjectId>> {
        lineage::ancestors(&self.catalog, obj)
    }

    /// Objects transitively derived from `obj`.
    pub fn descendants(&self, obj: ObjectId) -> Vec<ObjectId> {
        lineage::descendants(&self.catalog, obj)
    }

    /// Duplicate derivations on record.
    pub fn duplicate_tasks(&self) -> Vec<Vec<TaskId>> {
        lineage::duplicate_tasks(&self.catalog)
    }

    // ------------------------------------------------------------------
    // Version metadata / staleness reporting
    // ------------------------------------------------------------------

    /// The staleness story of a derived object: walks its derivation
    /// chain and compares every task's recorded input-version fingerprint
    /// with the live store counters. Base objects report an empty chain
    /// and `stale == false`.
    pub fn staleness_report(&self, obj: ObjectId) -> KernelResult<StalenessReport> {
        // Verify the object exists (errors over silently empty reports).
        self.catalog.class_of_object(obj)?;
        let mut memo = StaleMemo::new();
        let mut chain = Vec::new();
        let mut seen_tasks = std::collections::BTreeSet::new();
        let mut queue = vec![obj];
        while let Some(o) = queue.pop() {
            let Some(task) = self.catalog.producing_task(o) else {
                continue;
            };
            if !seen_tasks.insert(task.id) {
                continue;
            }
            let drifted_inputs: Vec<DriftedInput> = task
                .input_versions
                .iter()
                .filter_map(|(input, recorded)| {
                    let current = self.db.object_version(input.0);
                    (current != *recorded).then_some(DriftedInput {
                        object: *input,
                        recorded: *recorded,
                        current,
                    })
                })
                .collect();
            let current = !task_is_stale(&self.db, &self.catalog, task, &mut memo);
            chain.push(TaskCurrency {
                task: task.id,
                process: task.process_name.clone(),
                current,
                drifted_inputs,
            });
            queue.extend(task.all_inputs());
        }
        Ok(StalenessReport {
            object: obj,
            stale: object_is_stale(&self.db, &self.catalog, obj, &mut memo),
            chain,
        })
    }

    /// Every stored derived object that is currently stale — the impact
    /// set of all mutations since the derivations ran. One pass over the
    /// task records with a shared staleness memo; outputs repeated across
    /// tasks (compound umbrellas re-list their last step's) dedup through
    /// the set.
    ///
    /// The returned order is **deterministic: ascending OID**, and
    /// callers may rely on it — [`Gaea::refresh_all`] seeds its
    /// dependency DAG from this list, so the wave decomposition (and the
    /// whole refresh schedule) is reproducible run to run.
    pub fn stale_objects(&self) -> Vec<ObjectId> {
        let mut memo = StaleMemo::new();
        let mut out = std::collections::BTreeSet::new();
        for task in self.catalog.tasks.values() {
            for output in &task.outputs {
                if object_is_stale(&self.db, &self.catalog, *output, &mut memo) {
                    out.insert(*output);
                }
            }
        }
        out.into_iter().collect()
    }

    // ------------------------------------------------------------------
    // Experiments (§2.1.1)
    // ------------------------------------------------------------------

    /// Record an experiment over existing tasks.
    pub fn record_experiment(
        &mut self,
        name: &str,
        description: &str,
        tasks: Vec<TaskId>,
    ) -> KernelResult<ExperimentId> {
        for t in &tasks {
            self.catalog.task(*t)?;
        }
        let id = ExperimentId(self.db.allocate_oid());
        let experiment = Experiment {
            id,
            name: name.into(),
            description: description.into(),
            user: self.user.clone(),
            tasks,
        };
        self.catalog.add_experiment(experiment.clone())?;
        self.wal_append(super::durability::Event::DefineExperiment { def: experiment })?;
        Ok(id)
    }

    /// Reproduce an experiment: re-evaluate every recorded task against its
    /// recorded inputs and compare the regenerated attributes with the
    /// stored outputs by value identity. Nothing is mutated.
    ///
    /// Interactive tasks replay *without the scientist* — their answers are
    /// on record. External tasks replay only while their site is reachable;
    /// manual (non-applicative) tasks are by definition not replayable.
    /// Both cases are reported in [`Reproduction::not_replayable`] rather
    /// than counted as divergence.
    pub fn reproduce_experiment(&self, name: &str) -> KernelResult<Reproduction> {
        let exp = self.catalog.experiment_by_name(name)?.clone();
        let mut rerun = 0usize;
        let mut matching = 0usize;
        let mut divergences = Vec::new();
        let mut not_replayable = Vec::new();
        for task_id in &exp.tasks {
            let task = self.catalog.task(*task_id)?.clone();
            let tally = |outcome: KernelResult<bool>,
                         rerun: &mut usize,
                         matching: &mut usize,
                         divergences: &mut Vec<String>| {
                *rerun += 1;
                match outcome {
                    Ok(true) => *matching += 1,
                    Ok(false) => {
                        divergences.push(format!("{}: regenerated output differs", task.id))
                    }
                    Err(e) => divergences.push(format!("{}: replay failed: {e}", task.id)),
                }
            };
            match task.kind {
                TaskKind::Compound => {
                    // Children are verified individually when listed; the
                    // umbrella itself computes nothing.
                    continue;
                }
                TaskKind::Primitive | TaskKind::Interactive => {
                    tally(
                        self.replay_primitive(&task),
                        &mut rerun,
                        &mut matching,
                        &mut divergences,
                    );
                }
                TaskKind::Interpolation => {
                    tally(
                        self.replay_interpolation(&task),
                        &mut rerun,
                        &mut matching,
                        &mut divergences,
                    );
                }
                TaskKind::External => {
                    let site_name = task
                        .params
                        .get("site")
                        .and_then(Value::as_str)
                        .unwrap_or("<unrecorded>")
                        .to_string();
                    if self.externals.reachable_site(&site_name).is_some() {
                        tally(
                            self.replay_external(&task, &site_name),
                            &mut rerun,
                            &mut matching,
                            &mut divergences,
                        );
                    } else {
                        not_replayable
                            .push(format!("{}: site {site_name:?} is not available", task.id));
                    }
                }
                TaskKind::Manual => {
                    not_replayable.push(format!(
                        "{}: non-applicative procedure ({})",
                        task.id,
                        task.params
                            .get("procedure")
                            .and_then(Value::as_str)
                            .unwrap_or("unspecified")
                    ));
                }
            }
        }
        Ok(Reproduction {
            tasks_rerun: rerun,
            matching,
            divergences,
            not_replayable,
        })
    }

    fn replay_primitive(&self, task: &Task) -> KernelResult<bool> {
        let def = self.catalog.process(task.process)?;
        let mut bound: BTreeMap<String, Binding> = BTreeMap::new();
        for arg in &def.args {
            let objs = task.inputs.get(&arg.name).ok_or_else(|| {
                KernelError::Template(format!(
                    "task {} lacks recorded input {:?}",
                    task.id, arg.name
                ))
            })?;
            let loaded: KernelResult<Vec<DataObject>> = objs
                .iter()
                .map(|o| executor::load_object(&self.db, &self.catalog, *o))
                .collect();
            let loaded = loaded?;
            bound.insert(
                arg.name.clone(),
                if arg.setof {
                    Binding::Many(loaded)
                } else {
                    Binding::One(loaded.into_iter().next().ok_or_else(|| {
                        KernelError::Template(format!("task {}: empty scalar input", task.id))
                    })?)
                },
            );
        }
        let ctx = EvalContext {
            bindings: &bound,
            registry: &self.registry,
            // Interactive tasks recorded their answers; plain primitives
            // recorded nothing — either way the task knows its parameters.
            params: &task.params,
        };
        ctx.check_assertions(&def.name, &def.template)?;
        let regenerated = ctx.eval_mappings(&def.template)?;
        // Compare against each recorded output.
        for out in &task.outputs {
            let stored = executor::load_object(&self.db, &self.catalog, *out)?;
            for (attr, value) in &regenerated {
                if stored.attr(attr) != Some(value) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Re-dispatch an external task to its (reachable) site and compare.
    fn replay_external(&self, task: &Task, site_name: &str) -> KernelResult<bool> {
        let def = self.catalog.process(task.process)?;
        let mut inputs: ExternalInputs = BTreeMap::new();
        for (name, objs) in &task.inputs {
            let loaded: KernelResult<Vec<DataObject>> = objs
                .iter()
                .map(|o| executor::load_object(&self.db, &self.catalog, *o))
                .collect();
            inputs.insert(name.clone(), loaded?);
        }
        let site = self.externals.reachable_site(site_name).ok_or_else(|| {
            KernelError::SiteUnavailable {
                site: site_name.to_string(),
                process: def.name.clone(),
            }
        })?;
        let regenerated = site.execute(def, &inputs)?;
        for out in &task.outputs {
            let stored = executor::load_object(&self.db, &self.catalog, *out)?;
            for (attr, value) in &regenerated {
                if stored.attr(attr) != Some(value) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    fn replay_interpolation(&self, task: &Task) -> KernelResult<bool> {
        let earlier = task
            .inputs
            .get("earlier")
            .and_then(|v| v.first())
            .ok_or_else(|| KernelError::Template("interp task lacks earlier".into()))?;
        let later = task
            .inputs
            .get("later")
            .and_then(|v| v.first())
            .ok_or_else(|| KernelError::Template("interp task lacks later".into()))?;
        let at = task
            .params
            .get("at")
            .and_then(Value::as_abstime)
            .ok_or_else(|| KernelError::Template("interp task lacks `at` param".into()))?;
        let e = executor::load_object(&self.db, &self.catalog, *earlier)?;
        let l = executor::load_object(&self.db, &self.catalog, *later)?;
        let img = gaea_raster::interp::temporal_interp(
            e.attr("data")
                .and_then(Value::as_image)
                .ok_or_else(|| KernelError::Template("earlier lacks image data".into()))?,
            e.timestamp()
                .ok_or_else(|| KernelError::Template("earlier lacks timestamp".into()))?,
            l.attr("data")
                .and_then(Value::as_image)
                .ok_or_else(|| KernelError::Template("later lacks image data".into()))?,
            l.timestamp()
                .ok_or_else(|| KernelError::Template("later lacks timestamp".into()))?,
            at,
        )?;
        for out in &task.outputs {
            let stored = executor::load_object(&self.db, &self.catalog, *out)?;
            if stored.attr("data") != Some(&Value::image(img.clone())) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Derivation-net access & snapshots
    // ------------------------------------------------------------------

    /// The current derivation diagram.
    pub fn derivation_net(&self) -> DerivationNet {
        DerivationNet::build(&self.catalog)
    }

    /// The whole catalog rendered as DDL text (§4.2 browsing).
    pub fn describe(&self) -> String {
        crate::report::schema_ddl(&self.catalog)
    }

    /// An object's derivation tree as Graphviz DOT, with stale derived
    /// objects (MVCC version drift anywhere in their derivation chain)
    /// highlighted.
    pub fn lineage_dot(&self, obj: ObjectId) -> KernelResult<String> {
        let mut memo = StaleMemo::new();
        let mut stale = std::collections::BTreeSet::new();
        if object_is_stale(&self.db, &self.catalog, obj, &mut memo) {
            stale.insert(obj);
        }
        for ancestor in lineage::ancestors(&self.catalog, obj)? {
            if object_is_stale(&self.db, &self.catalog, ancestor, &mut memo) {
                stale.insert(ancestor);
            }
        }
        crate::report::lineage_dot(&self.catalog, obj, &stale)
    }

    /// The derivation diagram as Graphviz DOT, annotated with current
    /// stored-object counts as the marking.
    pub fn derivation_dot(&self) -> KernelResult<String> {
        let dnet = self.derivation_net();
        let mut counts = BTreeMap::new();
        for (cid, def) in &self.catalog.classes {
            let n = self.db.relation(&def.relation_name())?.len() as u64;
            counts.insert(*cid, n);
        }
        let marking = dnet.marking(&counts);
        Ok(gaea_petri::dot::to_dot(&dnet.net, Some(&marking)))
    }

    /// Structural comparison of two recorded experiments.
    pub fn compare_experiments(
        &self,
        a: &str,
        b: &str,
    ) -> KernelResult<crate::report::ExperimentDiff> {
        let ea = self.catalog.experiment_by_name(a)?.id;
        let eb = self.catalog.experiment_by_name(b)?.id;
        crate::report::compare_experiments(&self.catalog, ea, eb)
    }
}
