//! The scheduled execution layer: dependency-DAG refresh and parallel
//! derivation over the `gaea-sched` worker pool.
//!
//! Two callers feed the scheduler. [`Gaea::refresh_all`] takes the
//! store-wide stale impact set ([`Gaea::stale_objects`]) and re-derives
//! it in dependency order: one DAG node per distinct producing task
//! (so a diamond's shared upstream re-fires exactly once however many
//! paths reach it), one edge per output-feeds-input relationship, and a
//! wave-by-wave execution in which every firing binds against the
//! *replacements* committed by earlier waves. The query pipeline's
//! parallel fire stage ([`Gaea::derive_parallel`], `kernel/query`)
//! builds its DAG from a derivation plan instead.
//!
//! Execution of one wave is the prepare / commit split of
//! `derivation::executor`: workers evaluate templates concurrently on
//! shared read-only borrows of the store and catalog, then the results
//! commit serially in node order. The committed state is therefore
//! independent of the worker count — with one worker (the default) the
//! whole machinery degenerates to an in-order loop.

use super::exec::StaleMemo;
use super::jobs::JobId;
use super::query::dedup_key_for;
use super::Gaea;
use crate::derivation::executor::{self, TaskRun};
use crate::error::{KernelError, KernelResult};
use crate::ids::{ObjectId, TaskId};
use crate::task::Task;
use gaea_sched::{DepGraph, NodeId};
use std::collections::BTreeMap;

/// What [`Gaea::refresh_all`] did: the fresh derivations, the old→new
/// object mapping, the stale objects it could not re-fire, and the shape
/// of the schedule it executed.
#[derive(Debug, Clone, Default)]
pub struct RefreshReport {
    /// One freshly recorded (or reused-current) task per re-fired
    /// derivation, in commit order.
    pub runs: Vec<TaskRun>,
    /// Old stale (or deleted) object → its fresh replacement.
    pub replacements: BTreeMap<ObjectId, ObjectId>,
    /// Stale objects that were *not* re-fired, with the reason: their
    /// producing task is not auto-firable (manual procedures,
    /// query-driven interpolations), or an input could not be brought
    /// current first.
    pub skipped: Vec<(ObjectId, String)>,
    /// Stale objects whose re-derivation is already *in flight* as a
    /// background job ([`Gaea::submit_derivation`]): the wave stage must
    /// not fire a duplicate, so they are reported here with the job to
    /// await. A job that commits before the refresh starts is instead
    /// picked up as a reused current derivation (it appears in
    /// [`RefreshReport::runs`]).
    pub pending: Vec<(ObjectId, JobId)>,
    /// Number of dependency waves the schedule executed.
    pub waves: usize,
}

impl RefreshReport {
    /// Number of derivations re-fired.
    pub fn refreshed(&self) -> usize {
        self.runs.len()
    }
}

/// A wave node's resolved execution mode, decided serially at the start
/// of its wave (bindings depend on earlier waves' replacements).
enum Staged {
    /// Read-only prepare may run on a worker.
    Prepare(Vec<(String, Vec<ObjectId>)>),
    /// Compound processes expand into steps with intermediate
    /// materialization: fired whole on the committing thread.
    Serial(Vec<(String, Vec<ObjectId>)>),
    /// An identical current derivation is already on record (a prior
    /// refresh re-fired it): reused, not duplicated.
    Reused(TaskRun),
    /// The identical re-derivation is already in flight as a background
    /// job; recorded in [`RefreshReport::pending`], never re-fired.
    Pending(JobId),
    /// Cannot be re-fired; recorded in [`RefreshReport::skipped`].
    Blocked(String),
}

impl Gaea {
    /// Re-derive every stale derived object in the store, in dependency
    /// order, each derivation re-fired exactly once — the
    /// `refresh_all` surface the PR-2 follow-on asked for.
    ///
    /// The stale impact set is grouped by producing task and levelled
    /// into a dependency DAG (an edge wherever one stale derivation's
    /// output feeds another's input), so shared upstreams of diamond
    /// graphs re-fire once and every consumer rebinds to the single
    /// fresh replacement. Inputs that are themselves current are reused
    /// as they are, exactly like [`Gaea::refresh_object`]. Derivations
    /// the system cannot re-fire on its own (manual procedures,
    /// query-driven interpolations) are skipped and reported, along
    /// with any dependents their staleness blocks.
    ///
    /// With [`Gaea::set_workers`] above one, the independent firings of
    /// each wave prepare concurrently; commits are serialized in node
    /// order, so the resulting store, catalog and lineage are identical
    /// for every worker count. The refresh is incremental, not atomic:
    /// an executor error aborts the remaining schedule but leaves the
    /// waves already committed in place (each is a complete, current
    /// derivation).
    pub fn refresh_all(&mut self) -> KernelResult<RefreshReport> {
        // Commit finished background jobs first: a job that already
        // produced a fresh derivation turns its stale object into a
        // reuse, not a re-fire.
        self.pump_jobs();
        let mut report = RefreshReport::default();
        let (graph, skipped) = self.build_refresh_graph()?;
        report.skipped = skipped;
        if graph.is_empty() {
            return Ok(report);
        }
        let waves = graph.waves().map_err(|c| {
            KernelError::Schema(format!(
                "refresh_all: recorded derivations are not acyclic ({c}); the catalog is corrupt"
            ))
        })?;
        report.waves = waves.len();
        for wave in &waves {
            self.run_refresh_wave(&graph, wave, &mut report)?;
        }
        Ok(report)
    }

    /// Group the stale impact set by producing task into a dependency
    /// DAG. Also pulls in *deleted* derived inputs of stale tasks (their
    /// counters outlive them, so consumers classify stale; re-firing the
    /// consumer needs the input re-materialized first, exactly as
    /// [`Gaea::refresh_object`] would). Returns the DAG plus the objects
    /// excluded because their producing task cannot be re-fired.
    #[allow(clippy::type_complexity)]
    fn build_refresh_graph(&self) -> KernelResult<(DepGraph<Task>, Vec<(ObjectId, String)>)> {
        let mut graph: DepGraph<Task> = DepGraph::new();
        let mut node_of_task: BTreeMap<TaskId, NodeId> = BTreeMap::new();
        let mut skipped: Vec<(ObjectId, String)> = Vec::new();
        // Worklist over objects needing a fresh derivation: the stale
        // set, plus deleted derived inputs discovered along the way.
        let mut pending: Vec<ObjectId> = self.stale_objects();
        pending.reverse(); // pop() walks the OID-sorted set front to back
        let mut seen: std::collections::BTreeSet<ObjectId> = pending.iter().copied().collect();
        while let Some(obj) = pending.pop() {
            let Some(task) = self.catalog.producing_task(obj) else {
                // Deleted *base* input: nothing to re-fire; consumers
                // report the blockage when they try to bind.
                continue;
            };
            if node_of_task.contains_key(&task.id) {
                continue;
            }
            if !task.kind.auto_firable() {
                skipped.push((obj, not_auto_firable_reason(task)));
                continue;
            }
            node_of_task.insert(task.id, graph.add_node(task.clone()));
            for input in task.all_inputs() {
                let gone = self.catalog.class_of_object(input).is_err();
                if (gone || self.is_stale(input)) && seen.insert(input) {
                    pending.push(input);
                }
            }
        }
        // Edges: producer node → consumer node wherever a node's input
        // is an output of another node.
        let output_node: BTreeMap<ObjectId, NodeId> = node_of_task
            .iter()
            .flat_map(|(tid, node)| {
                self.catalog
                    .task(*tid)
                    .map(|t| t.outputs.iter().map(|o| (*o, *node)).collect::<Vec<_>>())
                    .unwrap_or_default()
            })
            .collect();
        for (tid, consumer) in &node_of_task {
            for input in self.catalog.task(*tid)?.all_inputs() {
                if let Some(producer) = output_node.get(&input) {
                    if producer != consumer {
                        graph
                            .add_edge(*producer, *consumer)
                            .expect("distinct nodes cannot form a self-edge");
                    }
                }
            }
        }
        Ok((graph, skipped))
    }

    /// Execute one wave: resolve bindings against the replacements map,
    /// prepare the preparable firings (concurrently when the scheduler
    /// has workers), then commit serially in node order.
    fn run_refresh_wave(
        &mut self,
        graph: &DepGraph<Task>,
        wave: &[NodeId],
        report: &mut RefreshReport,
    ) -> KernelResult<()> {
        // Phase 1 (serial): bind each node — replacements first, current
        // inputs as they are. Derivations already in flight as background
        // jobs stage as Pending and never reach a worker.
        let in_flight = self.jobs_in_flight_keys();
        let mut staged: Vec<(NodeId, Staged)> = Vec::with_capacity(wave.len());
        for node in wave {
            let task = graph.payload(*node);
            let stage = self.stage_refresh_node(task, &report.replacements, &in_flight)?;
            staged.push((*node, stage));
        }
        // Phase 2 (parallel): read-only prepares on the worker pool.
        let to_prepare: Vec<(usize, executor::Bindings)> = staged
            .iter()
            .enumerate()
            .filter_map(|(i, (node, stage))| match stage {
                Staged::Prepare(bindings) => {
                    let _ = node;
                    Some((i, bindings.clone()))
                }
                _ => None,
            })
            .collect();
        let db = &self.db;
        let catalog = &self.catalog;
        let registry = &self.registry;
        let externals = &self.externals;
        let prepared = self.scheduler.map(to_prepare, |_, (i, bindings)| {
            let pid = graph.payload(staged[i].0).process;
            (
                i,
                executor::prepare_firing(db, catalog, registry, externals, pid, &bindings),
            )
        });
        let mut prepared_by_index: BTreeMap<usize, KernelResult<executor::PreparedFiring>> =
            prepared.into_iter().collect();
        // Phase 3 (serial): commit in node order.
        for (i, (node, stage)) in staged.iter().enumerate() {
            let task = graph.payload(*node);
            let run = match stage {
                Staged::Blocked(reason) => {
                    for out in &task.outputs {
                        report.skipped.push((*out, reason.clone()));
                    }
                    continue;
                }
                Staged::Pending(job) => {
                    for out in &task.outputs {
                        report.pending.push((*out, *job));
                    }
                    continue;
                }
                Staged::Prepare(_) => {
                    let prep = prepared_by_index
                        .remove(&i)
                        .expect("every prepared index committed once")?;
                    self.commit_prepared(prep)?
                }
                Staged::Serial(bindings) => {
                    self.run_process_owned(task.process, bindings.clone())?
                }
                Staged::Reused(run) => run.clone(),
            };
            for (old, new) in task.outputs.iter().zip(&run.outputs) {
                report.replacements.insert(*old, *new);
            }
            report.runs.push(run);
        }
        Ok(())
    }

    /// Resolve one refresh node's bindings: inputs replaced by this
    /// run's fresh derivations where available, reused as they are when
    /// still current, and blocking the node when neither holds (the
    /// input's producer was skipped or is base data that disappeared).
    /// A node whose resolved bindings match an in-flight background job
    /// stages as [`Staged::Pending`] — the job owns that derivation.
    fn stage_refresh_node(
        &self,
        task: &Task,
        replacements: &BTreeMap<ObjectId, ObjectId>,
        in_flight: &BTreeMap<String, JobId>,
    ) -> KernelResult<Staged> {
        let def = self.catalog.process(task.process)?;
        let mut owned: Vec<(String, Vec<ObjectId>)> = Vec::with_capacity(def.args.len());
        let mut memo = StaleMemo::new();
        for arg in &def.args {
            let objs = task.inputs.get(&arg.name).ok_or_else(|| {
                KernelError::Template(format!(
                    "task {} lacks recorded input {:?}",
                    task.id, arg.name
                ))
            })?;
            let mut fresh = Vec::with_capacity(objs.len());
            for o in objs {
                if let Some(new) = replacements.get(o) {
                    fresh.push(*new);
                    continue;
                }
                let gone = self.catalog.class_of_object(*o).is_err();
                if gone || super::exec::object_is_stale(&self.db, &self.catalog, *o, &mut memo) {
                    return Ok(Staged::Blocked(format!(
                        "input {o} of process {} is {} and could not be re-derived",
                        def.name,
                        if gone { "deleted" } else { "stale" }
                    )));
                }
                fresh.push(*o);
            }
            owned.push((arg.name.clone(), fresh));
        }
        if let Some(run) = self.reuse_current_firing(task.process, &owned) {
            return Ok(Staged::Reused(run));
        }
        // Checked regardless of `reuse_tasks`: re-firing a derivation a
        // background job is about to commit would always duplicate it.
        if let Some(job) = in_flight.get(&dedup_key_for(def, &owned)) {
            return Ok(Staged::Pending(*job));
        }
        Ok(if executor::is_preparable(def) {
            Staged::Prepare(owned)
        } else {
            Staged::Serial(owned)
        })
    }
}

/// Why a recorded task cannot be re-fired by the system.
fn not_auto_firable_reason(task: &Task) -> String {
    match task.kind {
        crate::task::TaskKind::Manual => format!(
            "producing process {} is a non-applicative procedure; record a fresh manual task",
            task.process_name
        ),
        crate::task::TaskKind::Interpolation => format!(
            "{} is query-driven; re-issue the query to re-interpolate",
            task.process_name
        ),
        _ => unreachable!("auto-firable kinds are never skipped"),
    }
}
