//! Definition-time semantics: classes, concepts, processes (§2.1.2–§2.1.4).
//!
//! The paper's `CLASS` / `DEFINE PROCESS` statements land here.
//! [`ClassSpec`] and [`ProcessSpec`] are the builder forms the definition
//! language (`gaea-lang`) lowers into; `define_*` validate everything the
//! paper requires at definition time — output classes must be derived,
//! template references must be declared, compound step wiring must be
//! class-compatible, interaction previews may only use earlier answers —
//! and then write catalog records. Nothing here executes: execution
//! belongs to [`super::exec`], planning to [`super::query`].

use super::durability::Event;
use super::Gaea;
use crate::error::{KernelError, KernelResult};
use crate::ids::{ClassId, ConceptId, ProcessId};
use crate::query::CostHint;
use crate::schema::{
    AttrDef, ClassDef, ClassKind, CompoundStep, Concept, InteractionPoint, ProcessArg, ProcessDef,
    ProcessKind, StepSource,
};
use crate::template::{Expr, Template};
use gaea_adt::TypeTag;
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Class name.
    pub name: String,
    /// Base or derived.
    pub kind: ClassKind,
    /// Ordinary attributes.
    pub attrs: Vec<AttrDef>,
    /// Reference attributes, as (attr name, referenced class name) pairs,
    /// resolved against the catalog at definition time (§4.3 extension).
    pub ref_attrs: Vec<(String, String)>,
    /// Carry a spatial extent?
    pub spatial: bool,
    /// Carry a temporal extent?
    pub temporal: bool,
    /// Documentation.
    pub doc: String,
}

impl ClassSpec {
    /// A base class with both extents (the common case for scenes).
    pub fn base(name: &str) -> ClassSpec {
        ClassSpec {
            name: name.into(),
            kind: ClassKind::Base,
            attrs: vec![],
            ref_attrs: vec![],
            spatial: true,
            temporal: true,
            doc: String::new(),
        }
    }

    /// A derived class with both extents.
    pub fn derived(name: &str) -> ClassSpec {
        ClassSpec {
            kind: ClassKind::Derived,
            ..ClassSpec::base(name)
        }
    }

    /// Add an attribute.
    pub fn attr(mut self, name: &str, tag: gaea_adt::TypeTag) -> ClassSpec {
        self.attrs.push(AttrDef::new(name, tag));
        self
    }

    /// Add a reference attribute pointing at objects of `class` (§4.3
    /// extension: non-primitive classes as attribute types).
    pub fn ref_attr(mut self, name: &str, class: &str) -> ClassSpec {
        self.ref_attrs.push((name.into(), class.into()));
        self
    }

    /// Disable extents (for aspatial classes).
    pub fn no_extents(mut self) -> ClassSpec {
        self.spatial = false;
        self.temporal = false;
        self
    }

    /// Attach documentation.
    pub fn doc(mut self, d: &str) -> ClassSpec {
        self.doc = d.into();
        self
    }
}

/// Specification for a new primitive process.
#[derive(Debug, Clone)]
pub struct ProcessSpec {
    /// Process name.
    pub name: String,
    /// Output class name.
    pub output: String,
    /// Arguments: (name, class name, setof, min_card).
    pub args: Vec<(String, String, bool, u64)>,
    /// The TEMPLATE.
    pub template: Template,
    /// Interaction points (§4.3 extension), in consultation order.
    pub interactions: Vec<InteractionPoint>,
    /// Declared cost hint for the bind stage (`COST oldest` / `COST
    /// newest`); `None` keeps the built-in binding heuristic.
    pub cost: Option<CostHint>,
    /// Documentation.
    pub doc: String,
}

impl ProcessSpec {
    /// Start a spec.
    pub fn new(name: &str, output: &str) -> ProcessSpec {
        ProcessSpec {
            name: name.into(),
            output: output.into(),
            args: vec![],
            template: Template::default(),
            interactions: vec![],
            cost: None,
            doc: String::new(),
        }
    }

    /// Scalar argument.
    pub fn arg(mut self, name: &str, class: &str) -> ProcessSpec {
        self.args.push((name.into(), class.into(), false, 1));
        self
    }

    /// `SETOF` argument.
    pub fn setof_arg(mut self, name: &str, class: &str, min_card: u64) -> ProcessSpec {
        self.args.push((name.into(), class.into(), true, min_card));
        self
    }

    /// Attach the template.
    pub fn template(mut self, t: Template) -> ProcessSpec {
        self.template = t;
        self
    }

    /// Declare an interaction point: the task will suspend, show nothing,
    /// and wait for a `param` of type `expected` (§4.3 extension).
    pub fn interact(mut self, param: &str, prompt: &str, expected: TypeTag) -> ProcessSpec {
        self.interactions.push(InteractionPoint {
            param: param.into(),
            prompt: prompt.into(),
            preview: None,
            expected,
        });
        self
    }

    /// Declare an interaction point with a preview expression — the
    /// "temporary result visualized on the screen" the scientist inspects
    /// before answering.
    pub fn interact_preview(
        mut self,
        param: &str,
        prompt: &str,
        expected: TypeTag,
        preview: Expr,
    ) -> ProcessSpec {
        self.interactions.push(InteractionPoint {
            param: param.into(),
            prompt: prompt.into(),
            preview: Some(preview),
            expected,
        });
        self
    }

    /// Declare the bind-stage cost hint queries fall back to when they do
    /// not carry a `DERIVE COST …` of their own.
    pub fn cost_hint(mut self, hint: CostHint) -> ProcessSpec {
        self.cost = Some(hint);
        self
    }

    /// Attach documentation.
    pub fn doc(mut self, d: &str) -> ProcessSpec {
        self.doc = d.into();
        self
    }
}

impl Gaea {
    // ------------------------------------------------------------------
    // Definitions
    // ------------------------------------------------------------------

    /// Define a non-primitive class and create its extension relation.
    /// Reference attributes are resolved against already-defined classes
    /// (self-references are permitted: the class may reference itself).
    pub fn define_class(&mut self, spec: ClassSpec) -> KernelResult<ClassId> {
        let id = ClassId(self.db.allocate_oid());
        let mut attrs = spec.attrs;
        for (attr_name, class_name) in &spec.ref_attrs {
            let target = if *class_name == spec.name {
                id // self-reference (e.g. a scene derived from a prior scene)
            } else {
                self.catalog.class_by_name(class_name)?.id
            };
            attrs.push(AttrDef::reference(attr_name, target));
        }
        let def = ClassDef {
            id,
            name: spec.name,
            kind: spec.kind,
            attrs,
            has_spatial: spec.spatial,
            has_temporal: spec.temporal,
            derived_by: vec![],
            doc: spec.doc,
        };
        self.db
            .create_relation(&def.relation_name(), def.storage_schema())?;
        let rel = def.relation_name();
        let logged = def.clone();
        match self.catalog.add_class(def) {
            Ok(()) => {
                self.wal_append(Event::DefineClass { def: logged })?;
                Ok(id)
            }
            Err(e) => {
                // Roll the relation back so a failed definition leaves no junk.
                let _ = self.db.drop_relation(&rel);
                Err(e)
            }
        }
    }

    /// Define an access path on one class attribute (`DEFINE INDEX attr
    /// ON class`): GeoBox-tagged attributes get a spatial grid, everything
    /// else an ordered index. Explicit definition ignores the
    /// auto-indexing size threshold and is idempotent — re-defining an
    /// existing path is a no-op, matching the auto-indexer's behaviour.
    pub fn define_index(&mut self, class: &str, attr: &str) -> KernelResult<()> {
        let def = self.catalog.class_by_name(class)?.clone();
        let Some(adef) = def.attr(attr) else {
            return Err(KernelError::Schema(format!(
                "DEFINE INDEX names unknown attribute {attr:?} of class {class}"
            )));
        };
        if adef.tag == gaea_adt::TypeTag::GeoBox {
            self.ensure_grid(&def, attr)?;
        } else {
            self.ensure_index(&def, attr)?;
        }
        Ok(())
    }

    /// Define a concept over existing classes with optional ISA parents.
    pub fn define_concept(
        &mut self,
        name: &str,
        members: &[&str],
        parents: &[&str],
        doc: &str,
    ) -> KernelResult<ConceptId> {
        let mut member_ids = BTreeSet::new();
        for m in members {
            member_ids.insert(self.catalog.class_by_name(m)?.id);
        }
        let mut parent_ids = Vec::new();
        for p in parents {
            parent_ids.push(self.catalog.concept_by_name(p)?.id);
        }
        let id = ConceptId(self.db.allocate_oid());
        let concept = Concept {
            id,
            name: name.into(),
            members: member_ids,
            parents: parent_ids,
            doc: doc.into(),
        };
        self.catalog.add_concept(concept.clone())?;
        self.wal_append(Event::DefineConcept { def: concept })?;
        Ok(id)
    }

    /// Define a primitive process. Validates that the output class exists
    /// and is derived, argument classes exist, template argument references
    /// are declared, and mapped attributes exist on the output class.
    pub fn define_process(&mut self, spec: ProcessSpec) -> KernelResult<ProcessId> {
        let id = self.define_process_unlogged(spec)?;
        self.wal_append(Event::DefineProcess {
            def: self.catalog.process(id)?.clone(),
        })?;
        Ok(id)
    }

    /// [`Gaea::define_process`] without the event-log append — the
    /// external-process path rewrites the definition's kind after this
    /// and must journal the *final* definition exactly once.
    fn define_process_unlogged(&mut self, spec: ProcessSpec) -> KernelResult<ProcessId> {
        let output = self.catalog.class_by_name(&spec.output)?;
        if !output.is_derived() {
            return Err(KernelError::Schema(format!(
                "process {} outputs into base class {} — base data cannot be derived",
                spec.name, output.name
            )));
        }
        let output_id = output.id;
        let mut args = Vec::new();
        for (name, class, setof, min_card) in &spec.args {
            let class_id = self.catalog.class_by_name(class)?.id;
            args.push(ProcessArg {
                name: name.clone(),
                class: class_id,
                setof: *setof,
                min_card: if *setof { *min_card } else { 1 },
            });
        }
        // Template validation.
        let declared: BTreeSet<&str> = args.iter().map(|a| a.name.as_str()).collect();
        let mut referenced = Vec::new();
        for a in &spec.template.assertions {
            a.referenced_args(&mut referenced);
        }
        for m in &spec.template.mappings {
            m.expr.referenced_args(&mut referenced);
        }
        for r in &referenced {
            if !declared.contains(r.as_str()) {
                return Err(KernelError::Schema(format!(
                    "process {}: template references undeclared argument {r:?}",
                    spec.name
                )));
            }
        }
        let out_class = self.catalog.class(output_id)?.clone();
        for m in &spec.template.mappings {
            if out_class.attr(&m.attr).is_none() {
                return Err(KernelError::Schema(format!(
                    "process {}: mapping targets unknown attribute {:?} of class {}",
                    spec.name, m.attr, out_class.name
                )));
            }
        }
        // Interaction validation (§4.3 extension): every PARAM the template
        // references must be declared; declared names must be unique; a
        // preview may only use declared arguments and *earlier* answers.
        let mut declared_params: BTreeSet<&str> = BTreeSet::new();
        for point in &spec.interactions {
            if !declared_params.insert(point.param.as_str()) {
                return Err(KernelError::Schema(format!(
                    "process {}: interaction {:?} declared twice",
                    spec.name, point.param
                )));
            }
        }
        let mut referenced_params = Vec::new();
        for a in &spec.template.assertions {
            a.referenced_params(&mut referenced_params);
        }
        for m in &spec.template.mappings {
            m.expr.referenced_params(&mut referenced_params);
        }
        for p in &referenced_params {
            if !declared_params.contains(p.as_str()) {
                return Err(KernelError::Schema(format!(
                    "process {}: template references undeclared parameter {p:?} \
                     (declare it as an interaction point)",
                    spec.name
                )));
            }
        }
        for (i, point) in spec.interactions.iter().enumerate() {
            let Some(preview) = &point.preview else {
                continue;
            };
            let mut args_used = Vec::new();
            preview.referenced_args(&mut args_used);
            for a in &args_used {
                if !declared.contains(a.as_str()) {
                    return Err(KernelError::Schema(format!(
                        "process {}: preview of {:?} references undeclared argument {a:?}",
                        spec.name, point.param
                    )));
                }
            }
            let mut params_used = Vec::new();
            preview.referenced_params(&mut params_used);
            for p in &params_used {
                let earlier = spec.interactions[..i].iter().any(|q| q.param == *p);
                if !earlier {
                    return Err(KernelError::Schema(format!(
                        "process {}: preview of {:?} uses parameter {p:?} which is \
                         not answered yet at that point",
                        spec.name, point.param
                    )));
                }
            }
        }
        let id = ProcessId(self.db.allocate_oid());
        self.catalog.add_process(ProcessDef {
            id,
            name: spec.name,
            output: output_id,
            args,
            template: spec.template,
            kind: ProcessKind::Primitive,
            interactions: spec.interactions,
            cost: spec.cost,
            doc: spec.doc,
        })?;
        Ok(id)
    }

    /// Define an external process (§5 extension): the guard assertions run
    /// locally, the mapping runs at `site`. External templates are
    /// assertions-only — the remote site computes the output attributes.
    /// The site does not need to be registered yet; registration is an
    /// environment concern, definition a catalog one.
    pub fn define_external_process(
        &mut self,
        spec: ProcessSpec,
        site: &str,
    ) -> KernelResult<ProcessId> {
        if !spec.template.mappings.is_empty() {
            return Err(KernelError::Schema(format!(
                "external process {}: mappings are computed by the site; \
                 the local template may only carry assertions",
                spec.name
            )));
        }
        if !spec.interactions.is_empty() {
            return Err(KernelError::Schema(format!(
                "external process {}: interactions are not supported remotely",
                spec.name
            )));
        }
        // Reuse the primitive validation, then rewrite the kind. The
        // journal append happens after the rewrite, so replay sees the
        // final (external) definition.
        let site = site.to_string();
        let name = spec.name.clone();
        let id = self.define_process_unlogged(spec)?;
        let def = self
            .catalog
            .processes
            .get_mut(&id)
            .unwrap_or_else(|| unreachable!("process {name} was just defined"));
        def.kind = ProcessKind::External { site };
        self.wal_append(Event::DefineProcess {
            def: self.catalog.process(id)?.clone(),
        })?;
        Ok(id)
    }

    /// Define a non-applicative process (§5 extension): the mapping "is
    /// described by experimental procedures that do not follow a well
    /// known algorithm". Its tasks can only be recorded via
    /// [`Gaea::record_manual_task`], never fired.
    pub fn define_nonapplicative_process(
        &mut self,
        name: &str,
        output: &str,
        args: &[(String, String, bool, u64)],
        procedure: &str,
        doc: &str,
    ) -> KernelResult<ProcessId> {
        let output_class = self.catalog.class_by_name(output)?;
        if !output_class.is_derived() {
            return Err(KernelError::Schema(format!(
                "process {name} outputs into base class {output} — base data cannot be derived"
            )));
        }
        let output_id = output_class.id;
        let mut arg_defs = Vec::new();
        for (aname, class, setof, min_card) in args {
            let class_id = self.catalog.class_by_name(class)?.id;
            arg_defs.push(ProcessArg {
                name: aname.clone(),
                class: class_id,
                setof: *setof,
                min_card: if *setof { *min_card } else { 1 },
            });
        }
        let id = ProcessId(self.db.allocate_oid());
        let def = ProcessDef {
            id,
            name: name.into(),
            output: output_id,
            args: arg_defs,
            template: Template::default(),
            kind: ProcessKind::NonApplicative {
                procedure: procedure.into(),
            },
            interactions: vec![],
            cost: None,
            doc: doc.into(),
        };
        self.catalog.add_process(def.clone())?;
        self.wal_append(Event::DefineProcess { def })?;
        Ok(id)
    }

    /// Define a compound process from named steps (§2.1.4, Figure 5).
    /// `steps` wire each child process's arguments to outer arguments or
    /// earlier step outputs; class compatibility is checked statically.
    pub fn define_compound_process(
        &mut self,
        name: &str,
        output: &str,
        args: &[(String, String, bool, u64)],
        steps: &[(String, Vec<StepSource>)],
        doc: &str,
    ) -> KernelResult<ProcessId> {
        let output_class = self.catalog.class_by_name(output)?;
        if !output_class.is_derived() {
            return Err(KernelError::Schema(format!(
                "compound {name} outputs into base class {output}"
            )));
        }
        let output_id = output_class.id;
        let mut arg_defs = Vec::new();
        for (aname, class, setof, min_card) in args {
            let class_id = self.catalog.class_by_name(class)?.id;
            arg_defs.push(ProcessArg {
                name: aname.clone(),
                class: class_id,
                setof: *setof,
                min_card: if *setof { *min_card } else { 1 },
            });
        }
        // Validate wiring and collect step output classes.
        let mut step_defs: Vec<CompoundStep> = Vec::new();
        let mut step_outputs: Vec<ClassId> = Vec::new();
        for (i, (pname, sources)) in steps.iter().enumerate() {
            let child = self.catalog.process_by_name(pname)?;
            if sources.len() != child.args.len() {
                return Err(KernelError::Schema(format!(
                    "compound {name}: step {i} wires {} source(s) into {pname} which declares {}",
                    sources.len(),
                    child.args.len()
                )));
            }
            for (arg, src) in child.args.iter().zip(sources) {
                let src_class = match src {
                    StepSource::OuterArg(k) => {
                        arg_defs
                            .get(*k)
                            .ok_or_else(|| {
                                KernelError::Schema(format!(
                                    "compound {name}: step {i} references outer arg {k}"
                                ))
                            })?
                            .class
                    }
                    StepSource::StepOutput(k) => {
                        if *k >= i {
                            return Err(KernelError::Schema(format!(
                                "compound {name}: step {i} references later/own step {k}"
                            )));
                        }
                        step_outputs[*k]
                    }
                };
                if src_class != arg.class {
                    let want = self.catalog.class(arg.class)?.name.clone();
                    let got = self.catalog.class(src_class)?.name.clone();
                    return Err(KernelError::Schema(format!(
                        "compound {name}: step {i} feeds class {got} into {pname}.{} which expects {want}",
                        arg.name
                    )));
                }
            }
            step_outputs.push(child.output);
            step_defs.push(CompoundStep {
                process: child.id,
                inputs: sources.clone(),
            });
        }
        if let Some(last) = step_outputs.last() {
            if *last != output_id {
                return Err(KernelError::Schema(format!(
                    "compound {name}: final step produces {} but the declared output is {output}",
                    self.catalog.class(*last)?.name
                )));
            }
        } else {
            return Err(KernelError::Schema(format!("compound {name} has no steps")));
        }
        let id = ProcessId(self.db.allocate_oid());
        let def = ProcessDef {
            id,
            name: name.into(),
            output: output_id,
            args: arg_defs,
            template: Template::default(),
            kind: ProcessKind::Compound(step_defs),
            interactions: vec![],
            cost: None,
            doc: doc.into(),
        };
        self.catalog.add_process(def.clone())?;
        self.wal_append(Event::DefineProcess { def })?;
        Ok(id)
    }
}
