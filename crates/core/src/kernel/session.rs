//! The session-safe kernel facade: one serialized commit path, many
//! non-blocking snapshot readers.
//!
//! A [`SharedKernel`] wraps one [`Gaea`] for concurrent use by server
//! sessions (or any multi-threaded embedder):
//!
//! * **Writes** go through [`SharedKernel::exec`], which serializes them
//!   on the kernel mutex — the same single commit path the WAL and the
//!   job pump already assume.
//! * **Reads** go through [`SharedKernel::pin`], which hands back an
//!   `Arc<ReadView>` of a committed state. The fast path is a clock
//!   comparison plus an `Arc` clone under a short view lock — readers
//!   never wait for the kernel mutex, so they never block behind a
//!   commit in progress or behind each other.
//!
//! Freshness protocol: each `exec` epilogue publishes a new view when
//! the commit clock moved and a reader has asked for one (a reader that
//! sees a stale cached view sets `refresh_wanted` and is served the
//! cached — still fully consistent — state). Publication happens on the
//! writer's thread under the kernel lock, so a published view is always
//! a committed prefix: readers get snapshot isolation, writers pay the
//! copy, and an idle kernel publishes nothing.
//!
//! Panic policy mirrors the repo's poison-absorbing locks: a statement
//! that panics inside `exec` is caught, the locks are released clean
//! (never poisoned), and the panic is rethrown to the calling session —
//! one session's crash must not wedge every other session.

use super::readonly::ReadView;
use super::Gaea;
use crate::error::KernelResult;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Thread-shareable facade over one [`Gaea`]: serialized mutators,
/// snapshot-pinned readers. See the module docs for the protocol.
pub struct SharedKernel {
    kernel: Mutex<Gaea>,
    /// The most recently published view (always a committed prefix).
    view: Mutex<Arc<ReadView>>,
    /// Commit clock as of the last `exec`/publish — readers compare
    /// without touching the kernel mutex.
    clock: AtomicU64,
    /// A reader observed the cached view lagging `clock`; the next
    /// commit epilogue republishes.
    refresh_wanted: AtomicBool,
}

impl SharedKernel {
    /// Wrap a kernel and publish its current state as the first view.
    pub fn new(kernel: Gaea) -> Arc<SharedKernel> {
        let clock = kernel.store_clock();
        let view = Arc::new(kernel.read_view());
        Arc::new(SharedKernel {
            kernel: Mutex::new(kernel),
            view: Mutex::new(view),
            clock: AtomicU64::new(clock),
            refresh_wanted: AtomicBool::new(false),
        })
    }

    /// Run a statement on the serialized commit path. Exclusive: one
    /// `exec` at a time, exactly like single-caller `&mut Gaea` use.
    ///
    /// The epilogue publishes a fresh [`ReadView`] when the commit clock
    /// moved and a reader asked for one, then updates the shared clock.
    /// A panic inside `f` is caught so the locks are released unpoisoned,
    /// then rethrown on this thread — and nothing is published on that
    /// path: a panicked statement may have half-applied state, and a
    /// published view must only ever be a committed prefix. The previous
    /// view and clock stay in place until the next successful statement.
    pub fn exec<R>(&self, f: impl FnOnce(&mut Gaea) -> R) -> R {
        gaea_obs::metrics().kernel_execs.inc();
        let mut g = self.kernel.lock().unwrap_or_else(PoisonError::into_inner);
        let out = catch_unwind(AssertUnwindSafe(|| f(&mut g)));
        match out {
            Ok(r) => {
                // Fold a finished background log compaction back in while
                // the commit lock is already held — server sessions have
                // no other single-writer point to hand the truncation to.
                if let Err(e) = g.poll_compaction() {
                    eprintln!("gaea: deferred log compaction finish failed: {e}");
                }
                self.publish_if_wanted(&g);
                drop(g);
                r
            }
            Err(panic) => {
                drop(g);
                resume_unwind(panic)
            }
        }
    }

    /// Pin the latest published committed state. Never blocks on the
    /// kernel mutex: the served view may lag an in-flight (or just
    /// landed) commit by one publish cycle, but it is always *some*
    /// committed prefix — exactly the snapshot-isolation contract.
    pub fn pin(&self) -> Arc<ReadView> {
        gaea_obs::metrics().kernel_pins.inc();
        let view = {
            let guard = self.view.lock().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(&guard)
        };
        if view.clock() < self.clock.load(Ordering::Acquire) {
            // Commits landed since this view was published: ask the next
            // exec epilogue for a fresh one. If the kernel is idle right
            // now, publish immediately so the staleness window is one
            // pin, not forever.
            self.refresh_wanted.store(true, Ordering::Release);
            if let Ok(g) = self.kernel.try_lock() {
                self.publish_if_wanted(&g);
                drop(g);
                let guard = self.view.lock().unwrap_or_else(PoisonError::into_inner);
                return Arc::clone(&guard);
            }
        }
        view
    }

    /// Publish the kernel's current state when a reader asked for a
    /// fresher view (or the caller is the first to see a moved clock).
    /// Called with the kernel lock held.
    fn publish_if_wanted(&self, g: &Gaea) {
        let live = g.store_clock();
        self.clock.store(live, Ordering::Release);
        let wanted = self.refresh_wanted.swap(false, Ordering::AcqRel);
        let view_stale = {
            let guard = self.view.lock().unwrap_or_else(PoisonError::into_inner);
            guard.clock() < live
        };
        if view_stale && wanted {
            let fresh = Arc::new(g.read_view());
            let mut guard = self.view.lock().unwrap_or_else(PoisonError::into_inner);
            *guard = fresh;
        }
    }

    /// Tear the facade down with a *checked* WAL flush: unlike `Drop`'s
    /// best-effort flush, an fsync failure here surfaces to the caller
    /// so an operator-facing shutdown can exit nonzero instead of
    /// silently discarding the durable tail.
    ///
    /// Callers must hold the only remaining handle; a facade still
    /// shared returns `Err` with itself untouched.
    pub fn close(self: Arc<Self>) -> Result<KernelResult<()>, Arc<SharedKernel>> {
        let shared = Arc::try_unwrap(self)?;
        let mut kernel = shared
            .kernel
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        Ok(kernel.flush_wal())
    }
}

impl std::fmt::Debug for SharedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedKernel")
            .field("clock", &self.clock.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ClassSpec;
    use crate::query::{Query, QueryStrategy};
    use gaea_adt::Value;

    fn shared() -> Arc<SharedKernel> {
        let mut g = Gaea::in_memory();
        g.define_class(ClassSpec::base("obs").attr("v", gaea_adt::TypeTag::Int4))
            .unwrap();
        g.insert_object("obs", vec![("v", Value::Int4(1))]).unwrap();
        SharedKernel::new(g)
    }

    fn q_obs() -> Query {
        Query::class("obs").with_strategy(QueryStrategy::RetrieveOnly)
    }

    #[test]
    fn readers_see_committed_prefixes_and_catch_up() {
        let k = shared();
        let before = k.pin();
        assert_eq!(before.query(&q_obs()).unwrap().objects.len(), 1);

        k.exec(|g| g.insert_object("obs", vec![("v", Value::Int4(2))]).unwrap());
        // The pre-commit pin still answers the old state.
        assert_eq!(before.query(&q_obs()).unwrap().objects.len(), 1);
        // A new pin catches up (idle kernel: refresh happens inline).
        let after = k.pin();
        assert_eq!(after.query(&q_obs()).unwrap().objects.len(), 2);
        assert!(after.clock() > before.clock());
    }

    #[test]
    fn a_panicking_statement_neither_poisons_nor_wedges() {
        let k = shared();
        let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
            k.exec(|_| panic!("statement blew up"));
        }));
        assert!(panicked.is_err());
        // Both paths still work.
        k.exec(|g| g.insert_object("obs", vec![("v", Value::Int4(3))]).unwrap());
        assert_eq!(k.pin().query(&q_obs()).unwrap().objects.len(), 2);
    }

    #[test]
    fn a_panic_mid_statement_never_publishes_the_partial_state() {
        let k = shared();
        let before = k.pin();
        let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
            k.exec(|g| {
                // Half a statement lands, then the statement dies: the
                // store clock moved, but nothing committed logically.
                g.insert_object("obs", vec![("v", Value::Int4(99))])
                    .unwrap();
                panic!("mid-statement");
            });
        }));
        assert!(panicked.is_err());
        // The partial state was not published: a fresh pin still serves
        // the last committed prefix, at the same clock.
        let after = k.pin();
        assert_eq!(after.clock(), before.clock());
        assert_eq!(after.query(&q_obs()).unwrap().objects.len(), 1);
    }

    #[test]
    fn close_is_checked_and_exclusive() {
        let k = shared();
        let extra = Arc::clone(&k);
        let back = k.close().unwrap_err();
        drop(extra);
        assert!(back.close().unwrap().is_ok());
    }

    #[test]
    fn concurrent_readers_with_a_writer_stream_stay_consistent() {
        let k = shared();
        let writer = {
            let k = Arc::clone(&k);
            std::thread::spawn(move || {
                for i in 0..50 {
                    k.exec(|g| {
                        g.insert_object("obs", vec![("v", Value::Int4(100 + i))])
                            .unwrap()
                    });
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let k = Arc::clone(&k);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let view = k.pin();
                        let got = view.query(&q_obs()).unwrap();
                        // Every answer is one committed prefix: the pinned
                        // clock fixes the count exactly.
                        assert!(!got.objects.is_empty() && got.objects.len() <= 51);
                        let again = view.query(&q_obs()).unwrap();
                        assert_eq!(got.objects.len(), again.objects.len());
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        let final_view = k.pin();
        assert_eq!(final_view.query(&q_obs()).unwrap().objects.len(), 51);
    }
}
