//! Durability: the kernel's write-ahead event log and crash recovery.
//!
//! A kernel opened with [`Gaea::open`] records every committed mutation
//! as one logged event in a [`gaea_store::wal`] file before the call
//! that made it returns:
//!
//! * DDL — class/concept/process/experiment definitions, plus the
//!   access paths the optimizer creates mid-query (index, grid, grid
//!   re-tune): queries mutate physical state, so they log too;
//! * object CRUD — insert/update/delete with the full tuple;
//! * task commits — every way a task enters the history (firing,
//!   compound wave, manual record, interactive finish, interpolation)
//!   logs one `TaskCommit` carrying the new task records and the output
//!   objects they materialized;
//! * job lifecycle — background submissions (`JobSubmit`, with the
//!   recorded bindings) and their resolution (`JobResolved`), so
//!   in-flight derivations survive a restart and re-stage.
//!
//! Every event envelope also carries the version-clock ticks since the
//! previous event (drained from the store's bump journal — including
//! ticks from *failed* operations, which have no event of their own)
//! and the OID allocator high-water mark. Replay therefore restores
//! store, catalog, version counters and allocator to serde-identical
//! state: reopen-after-crash equals the last logged event, and a clean
//! drop (which flushes residual ticks as a `VersionAdvance`) equals the
//! live kernel exactly.
//!
//! Records are encoded by `kernel/wal_codec.rs` — binary v1
//! by default, with per-record format dispatch so pre-codec JSON logs
//! (and logs that switch codecs mid-stream) replay unchanged.
//!
//! Periodic snapshots (`manifest v4`, carrying the log watermark) fold
//! the log into a `snap-<seq>/` directory, flip the `CURRENT` pointer
//! atomically, and truncate the log; unresolved job submissions ride in
//! the snapshot's `jobs.json`. By default the fold runs *off* the
//! commit path: the committing thread clones the database state
//! ([`gaea_store::snapshot::capture_with_wal_seq`]) and hands it to a
//! detached compactor thread that writes the snapshot to a `snap-*.tmp`
//! side directory and flips `CURRENT`, while commits keep appending;
//! the committing thread later truncates exactly the covered log prefix
//! ([`WalWriter::truncate_prefix`] — an atomic stage-and-rename clip,
//! never an in-place rewrite) when it observes the fold finished
//! ([`Gaea::poll_compaction`]). [`Gaea::checkpoint`] remains the
//! synchronous fallback, and every flush/close boundary settles an
//! in-flight fold first.
//!
//! Crashing anywhere in either sequence is safe: before the pointer
//! flip the old snapshot + full log recover (half-written `snap-*.tmp`
//! directories are swept on open), after it the watermark makes
//! re-replaying the untruncated log a no-op. See
//! `scripts/crash_matrix.sh` for the fault-injection lane that drives
//! aborts through every boundary, background ones included.

use super::{jobs, Gaea, SharedCache};
use crate::catalog::Catalog;
use crate::error::{KernelError, KernelResult};
use crate::experiment::Experiment;
use crate::external::ExternalRegistry;
use crate::ids::{ClassId, ObjectId, ProcessId, TaskId};
use crate::schema::{ClassDef, Concept, ProcessDef};
use crate::task::Task;
use gaea_adt::OperatorRegistry;
use gaea_sched::{JobId, Scheduler};
use gaea_store::snapshot::Capture;
use gaea_store::wal::WalWriter;
use gaea_store::{CrashPoint, CrashSwitch, Oid, StoreError, Tuple};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;
use std::time::Instant;

/// A firing's recorded bindings: argument name → input objects, as
/// journaled with job submissions and replayed at recovery.
pub(crate) type RecordedBindings = Vec<(String, Vec<ObjectId>)>;

/// Journaled submissions awaiting resolution, keyed by job id —
/// accumulated from the snapshot's `jobs.json` plus replayed
/// `JobSubmit`/`JobResolved` events.
type PendingJobs = BTreeMap<u64, (ProcessId, RecordedBindings)>;

fn codec_err(e: impl std::fmt::Display) -> KernelError {
    KernelError::Store(StoreError::Codec(e.to_string()))
}

fn io_err(e: impl std::fmt::Display) -> KernelError {
    KernelError::Store(StoreError::Io(e.to_string()))
}

/// Record encoding for new log appends ([`DurabilityOptions::codec`]).
///
/// Decoding never consults this knob — every record carries its format
/// in its first byte, so a log written under one codec (or several,
/// across reopens) replays identically under any setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalCodec {
    /// Bare `serde_json` envelopes, byte-identical to logs written
    /// before the binary codec existed — the compatibility setting.
    Json,
    /// Versioned binary records (format byte 1): varint envelope,
    /// raw little-endian runs for raster/matrix payloads. Smaller and
    /// several times faster to replay; the default.
    #[default]
    Binary,
}

/// Tuning knobs for a durable kernel ([`Gaea::open_with`]).
#[derive(Debug, Clone, Copy)]
pub struct DurabilityOptions {
    /// Fsync the log every N events (group commit). 1 — the default —
    /// syncs every event: nothing acknowledged is lost even to a power
    /// cut. Larger values batch the sync; a *process* crash still loses
    /// nothing (the OS holds every appended byte), a machine crash may
    /// lose up to N-1 tail events — never a torn prefix.
    pub fsync_every: u64,
    /// Take a snapshot (and truncate the log) every N events; 0 disables
    /// automatic snapshots ([`Gaea::checkpoint`] remains available).
    pub snapshot_every: u64,
    /// Encoding for newly appended records (replay handles any mix).
    pub codec: WalCodec,
    /// Run cadence-triggered snapshots on a background compactor thread
    /// (the default): the committing call pays a state clone, not the
    /// serialization and I/O, and the log prefix the snapshot covers is
    /// truncated once the fold is observed complete. `false` folds
    /// synchronously on the committing thread, exactly like an explicit
    /// [`Gaea::checkpoint`].
    pub background_compaction: bool,
}

impl Default for DurabilityOptions {
    fn default() -> DurabilityOptions {
        DurabilityOptions {
            fsync_every: 1,
            snapshot_every: 1024,
            codec: WalCodec::Binary,
            background_compaction: true,
        }
    }
}

/// What recovery did when a durable kernel opened ([`Gaea::recovery_stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Log events replayed on top of the snapshot.
    pub events_replayed: u64,
    /// Journaled in-flight job submissions recovered for re-staging.
    pub jobs_restaged: u64,
    /// The snapshot's truncation watermark (sequence number of the last
    /// event already folded into it; 0 = no snapshot, full replay).
    pub snapshot_seq: u64,
    /// Bytes dropped from the log tail (a record torn by the crash).
    pub wal_dropped_bytes: u64,
    /// True when the drop was a checksum/length failure rather than a
    /// clean torn tail.
    pub wal_corrupt: bool,
}

/// Mirror durable-state facts into the global metrics registry, so live
/// introspection (the server's `Stats` request) sees the current
/// truncation watermark without a kernel handle. Called when a durable
/// kernel opens and again whenever [`Gaea::checkpoint`] moves the
/// watermark.
fn publish_recovery_gauges(stats: &RecoveryStats) {
    let m = gaea_obs::metrics();
    m.recovery_events_replayed.set(stats.events_replayed);
    m.recovery_jobs_restaged.set(stats.jobs_restaged);
    m.recovery_snapshot_seq.set(stats.snapshot_seq);
    m.recovery_wal_dropped_bytes.set(stats.wal_dropped_bytes);
    m.recovery_wal_corrupt.set(stats.wal_corrupt as u64);
}

/// One committed mutation, as recorded in the log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum Event {
    DefineClass {
        def: ClassDef,
    },
    DefineConcept {
        def: Concept,
    },
    DefineProcess {
        def: ProcessDef,
    },
    DefineExperiment {
        def: Experiment,
    },
    /// Ordered index created (DDL or the optimizer's auto-indexer).
    CreateIndex {
        rel: String,
        attr: String,
    },
    /// Spatial grid created, with the cell size chosen live — replay
    /// reuses it rather than re-sampling, for determinism.
    CreateGrid {
        rel: String,
        attr: String,
        cell: f64,
    },
    /// Grid rebuilt at a new cell size.
    RetuneGrid {
        rel: String,
        pos: usize,
        cell: f64,
    },
    InsertObject {
        rel: String,
        class: ClassId,
        oid: u64,
        tuple: Tuple,
    },
    UpdateObject {
        rel: String,
        oid: u64,
        tuple: Tuple,
    },
    DeleteObject {
        rel: String,
        oid: u64,
    },
    /// One commit's worth of new history: the task records (compound
    /// steps and their umbrella together) plus the output objects they
    /// materialized.
    TaskCommit {
        objects: Vec<NewObject>,
        tasks: Vec<Task>,
    },
    /// A background derivation was submitted; the bindings re-stage it
    /// after a restart.
    JobSubmit {
        job: u64,
        process: ProcessId,
        bindings: Vec<(String, Vec<ObjectId>)>,
    },
    /// The submission committed, failed its commit, or was cancelled —
    /// either way it must not re-stage.
    JobResolved {
        job: u64,
    },
    /// No content — carries version ticks left over from failed or
    /// rolled-back operations (see the envelope's `bumps`).
    VersionAdvance,
}

/// An object materialized by a task commit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct NewObject {
    pub(crate) rel: String,
    pub(crate) class: ClassId,
    pub(crate) oid: u64,
    pub(crate) tuple: Tuple,
}

/// The envelope around each logged event: its sequence number, the OID
/// allocator high-water mark after the event, and every version-clock
/// tick since the previous event (in order — including ticks from
/// failed operations that no event accounts for).
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct LoggedEvent {
    pub(crate) seq: u64,
    pub(crate) next_oid: u64,
    pub(crate) bumps: Vec<(String, Vec<u64>)>,
    pub(crate) event: Event,
}

/// An unresolved job submission as persisted in a snapshot's
/// `jobs.json` — checkpoint truncates the log, so pending submissions
/// must ride in the snapshot to survive it.
#[derive(Debug, Serialize, Deserialize)]
struct JournaledJob {
    job: u64,
    process: ProcessId,
    bindings: Vec<(String, Vec<ObjectId>)>,
}

/// A background snapshot fold in flight: the compactor thread owns the
/// captured state and writes/flips on its own; the committing thread
/// keeps what it needs to finish — the watermark, the log prefix the
/// capture covered, and the handle to join.
struct InflightCompaction {
    handle: JoinHandle<Result<(), String>>,
    /// Watermark sequence the snapshot will carry (`snap-<seq>`).
    seq: u64,
    /// Log length at capture time — the prefix to truncate on success.
    covered: u64,
    /// When the fold was submitted (total fold latency metric).
    started: Instant,
}

/// The durable half of an open kernel: log writer, directory layout,
/// event sequencing and snapshot cadence.
pub(crate) struct Durability {
    dir: PathBuf,
    wal: WalWriter,
    /// Sequence number of the last logged event (monotone across
    /// truncations; snapshots record it as their watermark).
    seq: u64,
    /// Events appended since the last snapshot.
    since_snapshot: u64,
    options: DurabilityOptions,
    /// At most one background fold runs at a time.
    inflight: Option<InflightCompaction>,
}

/// High-water marks captured before a multi-object commit
/// ([`Gaea::wal_mark`]): everything in the catalog beyond them when the
/// commit succeeds is that commit's delta, logged as one `TaskCommit`
/// (plus `DefineProcess` for lazily-registered processes).
pub(crate) struct WalMark {
    task_high: Option<TaskId>,
    process_high: Option<ProcessId>,
}

impl Gaea {
    /// Open (or create) a durable kernel rooted at `dir` with default
    /// [`DurabilityOptions`]. Recovery replays the log over the latest
    /// snapshot; [`Gaea::recovery_stats`] reports what it did.
    pub fn open(dir: &Path) -> KernelResult<Gaea> {
        Self::open_with(dir, DurabilityOptions::default())
    }

    /// [`Gaea::open`] with explicit group-commit and snapshot cadence.
    pub fn open_with(dir: &Path, options: DurabilityOptions) -> KernelResult<Gaea> {
        fs::create_dir_all(dir).map_err(io_err)?;
        // 0. Sweep wreckage of a fold that crashed mid-write: half-built
        //    `snap-*.tmp` side directories, an unrenamed `CURRENT.tmp`,
        //    and complete `snap-*` directories `CURRENT` never flipped
        //    to (a crash between the directory rename and the pointer
        //    flip). None of them are authoritative — `CURRENT` is.
        sweep_stale_snapshots(dir);
        // 1. The latest durable snapshot, if any. CURRENT names the
        //    snapshot directory and is flipped atomically by checkpoint,
        //    so whatever it points at is complete.
        let mut pending = PendingJobs::new();
        let (db, mut catalog, watermark) = match fs::read_to_string(dir.join("CURRENT")) {
            Ok(name) => {
                let snap = dir.join(name.trim());
                let (db, wal_seq) = gaea_store::snapshot::load_with_wal_seq(&snap)?;
                let raw = fs::read_to_string(snap.join("catalog.json")).map_err(io_err)?;
                let catalog: Catalog = serde_json::from_str(&raw).map_err(codec_err)?;
                if let Ok(raw) = fs::read_to_string(snap.join("jobs.json")) {
                    let jobs: Vec<JournaledJob> = serde_json::from_str(&raw).map_err(codec_err)?;
                    for j in jobs {
                        pending.insert(j.job, (j.process, j.bindings));
                    }
                }
                (db, catalog, wal_seq)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                (gaea_store::Database::new(), Catalog::default(), 0)
            }
            Err(e) => return Err(io_err(e)),
        };
        catalog.rebuild_task_index();
        let mut registry = OperatorRegistry::with_builtins();
        gaea_raster::register_raster_ops(&mut registry)
            .expect("raster operator registration is internally consistent");
        let mut g = Gaea {
            db,
            catalog,
            registry,
            externals: ExternalRegistry::new(),
            user: "scientist".into(),
            cache: SharedCache::new(),
            scheduler: Scheduler::from_env(),
            jobs: jobs::JobManager::new(),
            reuse_tasks: true,
            binding_budget: 32,
            durability: None,
            recovery: None,
        };
        // 2. Replay the log's valid prefix over the snapshot, skipping
        //    events the snapshot already contains (a crash during
        //    truncation leaves them in the log; the watermark makes the
        //    second application a no-op by never running it).
        let wal_path = dir.join("wal.log");
        let scan = gaea_store::wal::read_wal(&wal_path).map_err(io_err)?;
        let mut last_seq = watermark;
        let mut events_replayed = 0u64;
        let mut max_job = pending.keys().next_back().copied().unwrap_or(0);
        for record in &scan.records {
            let logged = super::wal_codec::decode_logged(record)?;
            if logged.seq <= watermark {
                continue;
            }
            replay_event(&mut g, &logged.event, &mut pending, &mut max_job)?;
            g.db.replay_bumps(&logged.bumps);
            g.db.resume_oids(logged.next_oid);
            last_seq = logged.seq;
            events_replayed += 1;
        }
        // 3. Recovered in-flight submissions become job records again,
        //    queued for re-staging (their sites are not registered yet;
        //    `register_site` and the job pump retry).
        let jobs_restaged = pending.len() as u64;
        for (job, (pid, bindings)) in pending {
            let def = g.catalog.process(pid)?;
            let record = jobs::JobRecord {
                output_class: g.catalog.class(def.output)?.name.clone(),
                dedup_key: super::query::dedup_key_for(def, &bindings),
                committed: None,
                commit_error: None,
                process: pid,
                bindings,
                cancelled: false,
            };
            g.jobs.records.insert(JobId(job), record);
            g.jobs.recovered.insert(JobId(job));
        }
        g.jobs.resume_ids(max_job);
        // 4. Arm the log for new events: version ticks journal from here
        //    on, and the writer opens at the valid prefix (dropping any
        //    torn tail).
        g.db.enable_version_journal();
        let wal =
            WalWriter::open(&wal_path, scan.valid_len, options.fsync_every).map_err(io_err)?;
        g.durability = Some(Durability {
            dir: dir.to_path_buf(),
            wal,
            seq: last_seq,
            since_snapshot: events_replayed,
            options,
            inflight: None,
        });
        g.restage_recovered_jobs();
        let stats = RecoveryStats {
            events_replayed,
            jobs_restaged,
            snapshot_seq: watermark,
            wal_dropped_bytes: scan.dropped_bytes,
            wal_corrupt: scan.corrupt,
        };
        publish_recovery_gauges(&stats);
        g.recovery = Some(stats);
        Ok(g)
    }

    /// What recovery did when this kernel opened; `None` for in-memory
    /// and snapshot-loaded kernels.
    pub fn recovery_stats(&self) -> Option<&RecoveryStats> {
        self.recovery.as_ref()
    }

    /// Is this kernel writing a log?
    pub(crate) fn wal_enabled(&self) -> bool {
        self.durability.is_some()
    }

    /// Append one event (no-op for non-durable kernels), draining the
    /// version-tick journal into its envelope and snapshotting when the
    /// cadence says so.
    pub(crate) fn wal_append(&mut self, event: Event) -> KernelResult<()> {
        self.wal_append_inner(event, true)
    }

    fn wal_append_inner(&mut self, event: Event, may_snapshot: bool) -> KernelResult<()> {
        if self.durability.is_none() {
            return Ok(());
        }
        let bumps = self.db.take_version_journal();
        let next_oid = self.db.next_oid();
        let d = self.durability.as_mut().expect("checked above");
        d.seq += 1;
        let logged = LoggedEvent {
            seq: d.seq,
            next_oid,
            bumps,
            event,
        };
        let payload = super::wal_codec::encode_logged(&logged, d.options.codec)?;
        d.wal.append(&payload).map_err(io_err)?;
        d.since_snapshot += 1;
        if may_snapshot {
            // A finished background fold hands its prefix truncation back
            // to this (the committing) thread before the cadence check,
            // so a due snapshot never queues behind a completed one.
            self.poll_compaction()?;
            let d = self.durability.as_ref().expect("checked above");
            let opts = d.options;
            if opts.snapshot_every > 0 && d.since_snapshot >= opts.snapshot_every {
                if opts.background_compaction {
                    self.begin_background_compaction()?;
                } else {
                    self.checkpoint()?;
                }
            }
        }
        Ok(())
    }

    /// Capture the catalog high-water marks before a commit that may add
    /// tasks (and lazily-registered processes). `None` when not durable.
    pub(crate) fn wal_mark(&self) -> Option<WalMark> {
        self.durability.as_ref()?;
        Some(WalMark {
            task_high: self.catalog.tasks.keys().next_back().copied(),
            process_high: self.catalog.processes.keys().next_back().copied(),
        })
    }

    /// Log everything the catalog gained past `mark`: new processes as
    /// `DefineProcess`, new tasks plus their (deduplicated) output
    /// objects as one `TaskCommit`. Failed commits never reach here, and
    /// compensated compound steps were removed from the catalog before
    /// this runs — only surviving history is logged.
    pub(crate) fn wal_commit_delta(&mut self, mark: Option<WalMark>) -> KernelResult<()> {
        let Some(mark) = mark else {
            return Ok(());
        };
        let new_procs: Vec<ProcessDef> = match mark.process_high {
            Some(high) => self
                .catalog
                .processes
                .range((Bound::Excluded(high), Bound::Unbounded))
                .map(|(_, d)| d.clone())
                .collect(),
            None => self.catalog.processes.values().cloned().collect(),
        };
        for def in new_procs {
            self.wal_append(Event::DefineProcess { def })?;
        }
        let new_tasks: Vec<Task> = match mark.task_high {
            Some(high) => self
                .catalog
                .tasks
                .range((Bound::Excluded(high), Bound::Unbounded))
                .map(|(_, t)| t.clone())
                .collect(),
            None => self.catalog.tasks.values().cloned().collect(),
        };
        if new_tasks.is_empty() {
            return Ok(());
        }
        // A compound umbrella re-lists its last step's outputs; dedup so
        // each object is materialized once on replay.
        let mut seen = BTreeSet::new();
        let mut objects = Vec::new();
        for task in &new_tasks {
            for out in &task.outputs {
                if !seen.insert(*out) {
                    continue;
                }
                let class = self.catalog.class_of_object(*out)?;
                let rel = self.catalog.class(class)?.relation_name();
                let tuple = self.db.get(&rel, out.0)?.clone();
                objects.push(NewObject {
                    rel,
                    class,
                    oid: out.raw(),
                    tuple,
                });
            }
        }
        self.wal_append(Event::TaskCommit {
            objects,
            tasks: new_tasks,
        })
    }

    /// Flush pending version ticks and serialize the sidecar state every
    /// snapshot needs: the catalog and the unresolved job submissions.
    fn snapshot_sidecars(&mut self) -> KernelResult<(String, String)> {
        // Ticks from failed operations must not sit in the journal across
        // the snapshot boundary: the snapshot's counters already include
        // them, so attaching them to a later event would double-apply on
        // replay. Flush them as their own event first.
        if self.db.version_journal_pending() {
            self.wal_append_inner(Event::VersionAdvance, false)?;
        }
        let catalog_json = serde_json::to_string(&self.catalog).map_err(codec_err)?;
        let jobs: Vec<JournaledJob> = self
            .jobs
            .unresolved_submissions()
            .into_iter()
            .map(|(job, process, bindings)| JournaledJob {
                job,
                process,
                bindings,
            })
            .collect();
        let jobs_json = serde_json::to_string(&jobs).map_err(codec_err)?;
        Ok((catalog_json, jobs_json))
    }

    /// The truncation watermark moved: recovery-era stats that kept
    /// reporting the *open-time* snapshot would be stale from here on,
    /// so refresh the durable-state view (and its gauges) in place. The
    /// torn-tail fields describe a log segment the truncation just
    /// retired, so they reset alongside the watermark.
    fn refresh_watermark_stats(&mut self, snap_seq: u64) {
        let stats = self.recovery.get_or_insert_with(RecoveryStats::default);
        stats.snapshot_seq = snap_seq;
        stats.wal_dropped_bytes = 0;
        stats.wal_corrupt = false;
        publish_recovery_gauges(stats);
    }

    /// Take a snapshot now, synchronously, and truncate the log — the
    /// explicit fallback to background compaction (any fold already in
    /// flight is settled first, so at most one runs at a time). The
    /// sequence is crash-safe at every boundary: residual version ticks
    /// are flushed into the log first; the snapshot directory (store
    /// manifest with the log watermark, catalog, unresolved job
    /// submissions) is written completely and renamed into place before
    /// the `CURRENT` pointer flips to it in one atomic rename; and a
    /// crash after the flip but before the truncation just re-skips the
    /// already-folded events on reopen.
    pub fn checkpoint(&mut self) -> KernelResult<()> {
        if self.durability.is_none() {
            return Ok(());
        }
        self.settle_compaction()?;
        let (catalog_json, jobs_json) = self.snapshot_sidecars()?;
        let d = self.durability.as_mut().expect("checked above");
        d.wal.sync().map_err(io_err)?;
        let snap_seq = d.seq;
        let started = Instant::now();
        let capture = gaea_store::snapshot::capture_with_wal_seq(&self.db, snap_seq);
        let d = self.durability.as_mut().expect("checked above");
        write_snapshot(
            &d.dir,
            snap_seq,
            &capture,
            &catalog_json,
            &jobs_json,
            d.wal.crash_switch(),
        )
        .map_err(io_err)?;
        // Fault-injection boundaries: the snapshot is authoritative but
        // the log still holds its events.
        d.wal.crash_point(CrashPoint::PostFlipPreTruncate);
        d.wal.crash_point(CrashPoint::Truncate);
        d.wal.truncate().map_err(io_err)?;
        d.since_snapshot = 0;
        let m = gaea_obs::metrics();
        m.wal_compactions.inc();
        m.wal_compaction_us
            .record(started.elapsed().as_micros() as u64);
        gc_snapshots(&d.dir, snap_seq);
        self.refresh_watermark_stats(snap_seq);
        Ok(())
    }

    /// Start folding the log into a snapshot on a background compactor
    /// thread. The committing thread pays a state clone; the worker
    /// writes the snapshot to a `snap-<seq>.tmp` side directory, renames
    /// it into place and flips `CURRENT`. The log is *not* touched here —
    /// [`Gaea::poll_compaction`] truncates the covered prefix once the
    /// fold is observed complete. No-op while a fold is already running.
    pub(crate) fn begin_background_compaction(&mut self) -> KernelResult<()> {
        let Some(d) = self.durability.as_ref() else {
            return Ok(());
        };
        if d.inflight.is_some() {
            return Ok(());
        }
        let (catalog_json, jobs_json) = self.snapshot_sidecars()?;
        let d = self.durability.as_mut().expect("checked above");
        // Everything the snapshot will claim must be durable before the
        // pointer can flip to it.
        d.wal.sync().map_err(io_err)?;
        let seq = d.seq;
        let covered = d.wal.log_len();
        let capture = gaea_store::snapshot::capture_with_wal_seq(&self.db, seq);
        let d = self.durability.as_mut().expect("checked above");
        let dir = d.dir.clone();
        let switch = d.wal.crash_switch();
        let started = Instant::now();
        let handle = std::thread::Builder::new()
            .name("gaea-compactor".into())
            .spawn(move || {
                write_snapshot(&dir, seq, &capture, &catalog_json, &jobs_json, switch)
                    .map_err(|e| e.to_string())
            })
            .map_err(io_err)?;
        d.inflight = Some(InflightCompaction {
            handle,
            seq,
            covered,
            started,
        });
        d.since_snapshot = 0;
        Ok(())
    }

    /// Finish a *completed* background fold, if any: truncate the log
    /// prefix its snapshot covers and retire superseded snapshots.
    /// Returns immediately (without blocking) while the fold is still
    /// running — safe to call from any commit or idle point; the session
    /// layer calls it after every statement.
    pub fn poll_compaction(&mut self) -> KernelResult<()> {
        let finished = self
            .durability
            .as_ref()
            .and_then(|d| d.inflight.as_ref())
            .is_some_and(|i| i.handle.is_finished());
        if finished {
            self.finish_compaction()?;
        }
        Ok(())
    }

    /// Block until any in-flight fold is finished and folded into the
    /// log — the settling barrier before a synchronous checkpoint, a
    /// flush, or shutdown (which also makes armed snapshot-side crash
    /// points deterministic: the abort fires before a clean exit).
    fn settle_compaction(&mut self) -> KernelResult<()> {
        if self
            .durability
            .as_ref()
            .is_some_and(|d| d.inflight.is_some())
        {
            self.finish_compaction()?;
        }
        Ok(())
    }

    /// Join the in-flight fold (blocking if needed) and complete it on
    /// this thread: prefix truncation, snapshot GC, watermark refresh. A
    /// failed fold is reported and absorbed — the log simply keeps
    /// growing until the next cadence point or an explicit checkpoint.
    fn finish_compaction(&mut self) -> KernelResult<()> {
        let d = self.durability.as_mut().expect("caller checked");
        let Some(inflight) = d.inflight.take() else {
            return Ok(());
        };
        let InflightCompaction {
            handle,
            seq,
            covered,
            started,
        } = inflight;
        let result = handle
            .join()
            .unwrap_or_else(|_| Err("compactor thread panicked".into()));
        let m = gaea_obs::metrics();
        if let Err(e) = result {
            m.wal_compactions_failed.inc();
            eprintln!(
                "gaea: background log compaction (snap-{seq}) failed: {e}; \
                 log retained, checkpoint() remains available"
            );
            return Ok(());
        }
        // The snapshot is authoritative; the log still holds the covered
        // prefix plus everything committed while the fold ran. Drop
        // exactly the prefix. The legacy `truncate` point names the same
        // boundary (snapshot durable, log not yet clipped), so it fires
        // here too — the crash matrix's truncate lanes cover whichever
        // fold path the kernel is configured for.
        d.wal.crash_point(CrashPoint::PostFlipPreTruncate);
        d.wal.crash_point(CrashPoint::Truncate);
        d.wal.truncate_prefix(covered).map_err(io_err)?;
        m.wal_compactions.inc();
        m.wal_compaction_us
            .record(started.elapsed().as_micros() as u64);
        gc_snapshots(&d.dir, seq);
        self.refresh_watermark_stats(seq);
        Ok(())
    }

    /// Flush residual version ticks into the log and fsync it — the
    /// clean-shutdown tail, also called by `Drop`. Settles any in-flight
    /// background fold first. After this, replay reconstructs the
    /// version counters *exactly* (not just up to the last logged
    /// event).
    pub fn flush_wal(&mut self) -> KernelResult<()> {
        if self.durability.is_none() {
            return Ok(());
        }
        self.settle_compaction()?;
        if self.db.version_journal_pending() {
            self.wal_append_inner(Event::VersionAdvance, false)?;
        }
        let d = self.durability.as_mut().expect("checked above");
        d.wal.sync().map_err(io_err)
    }
}

/// Write one complete snapshot — store manifest (from a pre-cloned
/// [`Capture`]), catalog, unresolved jobs — into `snap-<seq>.tmp`,
/// rename it to `snap-<seq>`, and flip `CURRENT` to it. Runs on the
/// committing thread (synchronous [`Gaea::checkpoint`]) or the
/// background compactor; the crash switch fires the snapshot-side
/// fault-injection points in whichever thread that is.
fn write_snapshot(
    dir: &Path,
    seq: u64,
    capture: &Capture,
    catalog_json: &str,
    jobs_json: &str,
    switch: CrashSwitch,
) -> Result<(), String> {
    let io = |e: &dyn std::fmt::Display| format!("snapshot write: {e}");
    let snap_name = format!("snap-{seq}");
    let tmp = dir.join(format!("{snap_name}.tmp"));
    let _ = fs::remove_dir_all(&tmp);
    gaea_store::snapshot::write_capture(capture, &tmp).map_err(|e| io(&e))?;
    // Fault-injection boundary: the side directory holds the manifest
    // but not yet the sidecars — recovery must ignore it wholesale.
    switch.fire_if_armed(CrashPoint::SnapshotWrite, seq);
    fs::write(tmp.join("catalog.json"), catalog_json).map_err(|e| io(&e))?;
    fs::write(tmp.join("jobs.json"), jobs_json).map_err(|e| io(&e))?;
    let fin = dir.join(&snap_name);
    let _ = fs::remove_dir_all(&fin);
    fs::rename(&tmp, &fin).map_err(|e| io(&e))?;
    // Fault-injection boundary: the snapshot directory is complete but
    // `CURRENT` still names the old one.
    switch.fire_if_armed(CrashPoint::ManifestFlip, seq);
    let cur_tmp = dir.join("CURRENT.tmp");
    fs::write(&cur_tmp, &snap_name).map_err(|e| io(&e))?;
    fs::rename(&cur_tmp, dir.join("CURRENT")).map_err(|e| io(&e))?;
    Ok(())
}

/// Remove snapshot directories superseded once `CURRENT` names
/// `snap-<keep_seq>` (and any stale `snap-*.tmp` side directories).
fn gc_snapshots(dir: &Path, keep_seq: u64) {
    let keep = format!("snap-{keep_seq}");
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("snap-") && name != keep {
                let _ = fs::remove_dir_all(entry.path());
            }
        }
    }
}

/// Open-time sweep: delete every snapshot artifact `CURRENT` does not
/// name — half-written `snap-*.tmp` side directories, an unrenamed
/// `CURRENT.tmp`, and complete-but-never-flipped `snap-*` directories
/// left by a crash inside a fold.
///
/// Only a *missing* `CURRENT` means "no authoritative snapshot". Any
/// other read failure (permissions, I/O error) is transient doubt —
/// sweeping then could delete the snapshot the pointer still names, so
/// the sweep skips entirely and lets open surface the real error when
/// it reads `CURRENT` itself.
fn sweep_stale_snapshots(dir: &Path) {
    let current = match fs::read_to_string(dir.join("CURRENT")) {
        Ok(s) => s.trim().to_string(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(_) => return,
    };
    let _ = fs::remove_file(dir.join("CURRENT.tmp"));
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("snap-") && name != current {
                let _ = fs::remove_dir_all(entry.path());
            }
        }
    }
}

impl Gaea {
    /// Consume the kernel with a **checked** clean shutdown: flush the
    /// residual version ticks and fsync the log, surfacing any error.
    ///
    /// `Drop` performs the same flush best-effort (an error there has no
    /// one to report to); operator-facing shutdown paths — the server's
    /// graceful stop in particular — must use `close` instead so an
    /// fsync failure reaches the operator and the process can exit
    /// nonzero rather than silently discarding the durable tail.
    pub fn close(mut self) -> KernelResult<()> {
        self.flush_wal()
        // Drop re-flushes; with the journal drained and the log synced
        // that is a no-op sync.
    }
}

impl Drop for Gaea {
    fn drop(&mut self) {
        // Best-effort clean-shutdown flush; a crash skips this and
        // recovery still lands on the last logged event.
        let _ = self.flush_wal();
    }
}

/// Apply one replayed event to the reconstructing kernel. Content goes
/// through the store's non-bumping replay entry points — the version
/// history is replayed separately from each envelope's tick journal.
fn replay_event(
    g: &mut Gaea,
    event: &Event,
    pending: &mut PendingJobs,
    max_job: &mut u64,
) -> KernelResult<()> {
    match event {
        Event::DefineClass { def } => {
            g.db.create_relation(&def.relation_name(), def.storage_schema())?;
            g.catalog.add_class(def.clone())?;
        }
        Event::DefineConcept { def } => g.catalog.add_concept(def.clone())?,
        Event::DefineProcess { def } => g.catalog.add_process(def.clone())?,
        Event::DefineExperiment { def } => g.catalog.add_experiment(def.clone())?,
        Event::CreateIndex { rel, attr } => {
            g.db.relation_mut(rel)?.create_index(attr)?;
        }
        Event::CreateGrid { rel, attr, cell } => {
            g.db.relation_mut(rel)?.create_grid(attr, *cell)?;
        }
        Event::RetuneGrid { rel, pos, cell } => {
            g.db.relation_mut(rel)?.retune_grid(*pos, *cell)?;
        }
        Event::InsertObject {
            rel,
            class,
            oid,
            tuple,
        } => {
            g.db.replay_insert(rel, Oid(*oid), tuple.clone())?;
            g.catalog.object_class.insert(ObjectId(Oid(*oid)), *class);
        }
        Event::UpdateObject { rel, oid, tuple } => {
            g.db.replay_update(rel, Oid(*oid), tuple.clone())?;
        }
        Event::DeleteObject { rel, oid } => {
            g.db.replay_delete(rel, Oid(*oid))?;
            g.catalog.object_class.remove(&ObjectId(Oid(*oid)));
        }
        Event::TaskCommit { objects, tasks } => {
            for obj in objects {
                g.db.replay_insert(&obj.rel, Oid(obj.oid), obj.tuple.clone())?;
                g.catalog
                    .object_class
                    .insert(ObjectId(Oid(obj.oid)), obj.class);
            }
            for task in tasks {
                g.catalog.add_task(task.clone());
            }
        }
        Event::JobSubmit {
            job,
            process,
            bindings,
        } => {
            pending.insert(*job, (*process, bindings.clone()));
            *max_job = (*max_job).max(*job);
        }
        Event::JobResolved { job } => {
            pending.remove(job);
            *max_job = (*max_job).max(*job);
        }
        Event::VersionAdvance => {}
    }
    Ok(())
}
