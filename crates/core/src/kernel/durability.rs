//! Durability: the kernel's write-ahead event log and crash recovery.
//!
//! A kernel opened with [`Gaea::open`] records every committed mutation
//! as one logged event in a [`gaea_store::wal`] file before the call
//! that made it returns:
//!
//! * DDL — class/concept/process/experiment definitions, plus the
//!   access paths the optimizer creates mid-query (index, grid, grid
//!   re-tune): queries mutate physical state, so they log too;
//! * object CRUD — insert/update/delete with the full tuple;
//! * task commits — every way a task enters the history (firing,
//!   compound wave, manual record, interactive finish, interpolation)
//!   logs one `TaskCommit` carrying the new task records and the output
//!   objects they materialized;
//! * job lifecycle — background submissions (`JobSubmit`, with the
//!   recorded bindings) and their resolution (`JobResolved`), so
//!   in-flight derivations survive a restart and re-stage.
//!
//! Every event envelope also carries the version-clock ticks since the
//! previous event (drained from the store's bump journal — including
//! ticks from *failed* operations, which have no event of their own)
//! and the OID allocator high-water mark. Replay therefore restores
//! store, catalog, version counters and allocator to serde-identical
//! state: reopen-after-crash equals the last logged event, and a clean
//! drop (which flushes residual ticks as a `VersionAdvance`) equals the
//! live kernel exactly.
//!
//! Periodic snapshots (`manifest v4`, carrying the log watermark) fold
//! the log into a `snap-<seq>/` directory, flip the `CURRENT` pointer
//! atomically, and truncate the log; unresolved job submissions ride in
//! the snapshot's `jobs.json`. Crashing anywhere in that sequence is
//! safe: before the pointer flip the old snapshot + full log recover,
//! after it the watermark makes re-replaying the untruncated log a
//! no-op. See `scripts/crash_matrix.sh` for the fault-injection lane
//! that drives aborts through all three boundaries.

use super::{jobs, Gaea, SharedCache};
use crate::catalog::Catalog;
use crate::error::{KernelError, KernelResult};
use crate::experiment::Experiment;
use crate::external::ExternalRegistry;
use crate::ids::{ClassId, ObjectId, ProcessId, TaskId};
use crate::schema::{ClassDef, Concept, ProcessDef};
use crate::task::Task;
use gaea_adt::OperatorRegistry;
use gaea_sched::{JobId, Scheduler};
use gaea_store::wal::WalWriter;
use gaea_store::{Oid, StoreError, Tuple};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::ops::Bound;
use std::path::{Path, PathBuf};

/// A firing's recorded bindings: argument name → input objects, as
/// journaled with job submissions and replayed at recovery.
pub(crate) type RecordedBindings = Vec<(String, Vec<ObjectId>)>;

/// Journaled submissions awaiting resolution, keyed by job id —
/// accumulated from the snapshot's `jobs.json` plus replayed
/// `JobSubmit`/`JobResolved` events.
type PendingJobs = BTreeMap<u64, (ProcessId, RecordedBindings)>;

fn codec_err(e: impl std::fmt::Display) -> KernelError {
    KernelError::Store(StoreError::Codec(e.to_string()))
}

fn io_err(e: impl std::fmt::Display) -> KernelError {
    KernelError::Store(StoreError::Io(e.to_string()))
}

/// Tuning knobs for a durable kernel ([`Gaea::open_with`]).
#[derive(Debug, Clone, Copy)]
pub struct DurabilityOptions {
    /// Fsync the log every N events (group commit). 1 — the default —
    /// syncs every event: nothing acknowledged is lost even to a power
    /// cut. Larger values batch the sync; a *process* crash still loses
    /// nothing (the OS holds every appended byte), a machine crash may
    /// lose up to N-1 tail events — never a torn prefix.
    pub fsync_every: u64,
    /// Take a snapshot (and truncate the log) every N events; 0 disables
    /// automatic snapshots ([`Gaea::checkpoint`] remains available).
    pub snapshot_every: u64,
}

impl Default for DurabilityOptions {
    fn default() -> DurabilityOptions {
        DurabilityOptions {
            fsync_every: 1,
            snapshot_every: 1024,
        }
    }
}

/// What recovery did when a durable kernel opened ([`Gaea::recovery_stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Log events replayed on top of the snapshot.
    pub events_replayed: u64,
    /// Journaled in-flight job submissions recovered for re-staging.
    pub jobs_restaged: u64,
    /// The snapshot's truncation watermark (sequence number of the last
    /// event already folded into it; 0 = no snapshot, full replay).
    pub snapshot_seq: u64,
    /// Bytes dropped from the log tail (a record torn by the crash).
    pub wal_dropped_bytes: u64,
    /// True when the drop was a checksum/length failure rather than a
    /// clean torn tail.
    pub wal_corrupt: bool,
}

/// Mirror durable-state facts into the global metrics registry, so live
/// introspection (the server's `Stats` request) sees the current
/// truncation watermark without a kernel handle. Called when a durable
/// kernel opens and again whenever [`Gaea::checkpoint`] moves the
/// watermark.
fn publish_recovery_gauges(stats: &RecoveryStats) {
    let m = gaea_obs::metrics();
    m.recovery_events_replayed.set(stats.events_replayed);
    m.recovery_jobs_restaged.set(stats.jobs_restaged);
    m.recovery_snapshot_seq.set(stats.snapshot_seq);
    m.recovery_wal_dropped_bytes.set(stats.wal_dropped_bytes);
    m.recovery_wal_corrupt.set(stats.wal_corrupt as u64);
}

/// One committed mutation, as recorded in the log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum Event {
    DefineClass {
        def: ClassDef,
    },
    DefineConcept {
        def: Concept,
    },
    DefineProcess {
        def: ProcessDef,
    },
    DefineExperiment {
        def: Experiment,
    },
    /// Ordered index created (DDL or the optimizer's auto-indexer).
    CreateIndex {
        rel: String,
        attr: String,
    },
    /// Spatial grid created, with the cell size chosen live — replay
    /// reuses it rather than re-sampling, for determinism.
    CreateGrid {
        rel: String,
        attr: String,
        cell: f64,
    },
    /// Grid rebuilt at a new cell size.
    RetuneGrid {
        rel: String,
        pos: usize,
        cell: f64,
    },
    InsertObject {
        rel: String,
        class: ClassId,
        oid: u64,
        tuple: Tuple,
    },
    UpdateObject {
        rel: String,
        oid: u64,
        tuple: Tuple,
    },
    DeleteObject {
        rel: String,
        oid: u64,
    },
    /// One commit's worth of new history: the task records (compound
    /// steps and their umbrella together) plus the output objects they
    /// materialized.
    TaskCommit {
        objects: Vec<NewObject>,
        tasks: Vec<Task>,
    },
    /// A background derivation was submitted; the bindings re-stage it
    /// after a restart.
    JobSubmit {
        job: u64,
        process: ProcessId,
        bindings: Vec<(String, Vec<ObjectId>)>,
    },
    /// The submission committed, failed its commit, or was cancelled —
    /// either way it must not re-stage.
    JobResolved {
        job: u64,
    },
    /// No content — carries version ticks left over from failed or
    /// rolled-back operations (see the envelope's `bumps`).
    VersionAdvance,
}

/// An object materialized by a task commit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct NewObject {
    rel: String,
    class: ClassId,
    oid: u64,
    tuple: Tuple,
}

/// The envelope around each logged event: its sequence number, the OID
/// allocator high-water mark after the event, and every version-clock
/// tick since the previous event (in order — including ticks from
/// failed operations that no event accounts for).
#[derive(Debug, Serialize, Deserialize)]
struct LoggedEvent {
    seq: u64,
    next_oid: u64,
    bumps: Vec<(String, Vec<u64>)>,
    event: Event,
}

/// An unresolved job submission as persisted in a snapshot's
/// `jobs.json` — checkpoint truncates the log, so pending submissions
/// must ride in the snapshot to survive it.
#[derive(Debug, Serialize, Deserialize)]
struct JournaledJob {
    job: u64,
    process: ProcessId,
    bindings: Vec<(String, Vec<ObjectId>)>,
}

/// The durable half of an open kernel: log writer, directory layout,
/// event sequencing and snapshot cadence.
pub(crate) struct Durability {
    dir: PathBuf,
    wal: WalWriter,
    /// Sequence number of the last logged event (monotone across
    /// truncations; snapshots record it as their watermark).
    seq: u64,
    /// Events appended since the last snapshot.
    since_snapshot: u64,
    options: DurabilityOptions,
}

/// High-water marks captured before a multi-object commit
/// ([`Gaea::wal_mark`]): everything in the catalog beyond them when the
/// commit succeeds is that commit's delta, logged as one `TaskCommit`
/// (plus `DefineProcess` for lazily-registered processes).
pub(crate) struct WalMark {
    task_high: Option<TaskId>,
    process_high: Option<ProcessId>,
}

impl Gaea {
    /// Open (or create) a durable kernel rooted at `dir` with default
    /// [`DurabilityOptions`]. Recovery replays the log over the latest
    /// snapshot; [`Gaea::recovery_stats`] reports what it did.
    pub fn open(dir: &Path) -> KernelResult<Gaea> {
        Self::open_with(dir, DurabilityOptions::default())
    }

    /// [`Gaea::open`] with explicit group-commit and snapshot cadence.
    pub fn open_with(dir: &Path, options: DurabilityOptions) -> KernelResult<Gaea> {
        fs::create_dir_all(dir).map_err(io_err)?;
        // 1. The latest durable snapshot, if any. CURRENT names the
        //    snapshot directory and is flipped atomically by checkpoint,
        //    so whatever it points at is complete.
        let mut pending = PendingJobs::new();
        let (db, mut catalog, watermark) = match fs::read_to_string(dir.join("CURRENT")) {
            Ok(name) => {
                let snap = dir.join(name.trim());
                let (db, wal_seq) = gaea_store::snapshot::load_with_wal_seq(&snap)?;
                let raw = fs::read_to_string(snap.join("catalog.json")).map_err(io_err)?;
                let catalog: Catalog = serde_json::from_str(&raw).map_err(codec_err)?;
                if let Ok(raw) = fs::read_to_string(snap.join("jobs.json")) {
                    let jobs: Vec<JournaledJob> = serde_json::from_str(&raw).map_err(codec_err)?;
                    for j in jobs {
                        pending.insert(j.job, (j.process, j.bindings));
                    }
                }
                (db, catalog, wal_seq)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                (gaea_store::Database::new(), Catalog::default(), 0)
            }
            Err(e) => return Err(io_err(e)),
        };
        catalog.rebuild_task_index();
        let mut registry = OperatorRegistry::with_builtins();
        gaea_raster::register_raster_ops(&mut registry)
            .expect("raster operator registration is internally consistent");
        let mut g = Gaea {
            db,
            catalog,
            registry,
            externals: ExternalRegistry::new(),
            user: "scientist".into(),
            cache: SharedCache::new(),
            scheduler: Scheduler::from_env(),
            jobs: jobs::JobManager::new(),
            reuse_tasks: true,
            binding_budget: 32,
            durability: None,
            recovery: None,
        };
        // 2. Replay the log's valid prefix over the snapshot, skipping
        //    events the snapshot already contains (a crash during
        //    truncation leaves them in the log; the watermark makes the
        //    second application a no-op by never running it).
        let wal_path = dir.join("wal.log");
        let scan = gaea_store::wal::read_wal(&wal_path).map_err(io_err)?;
        let mut last_seq = watermark;
        let mut events_replayed = 0u64;
        let mut max_job = pending.keys().next_back().copied().unwrap_or(0);
        for record in &scan.records {
            let logged: LoggedEvent = serde_json::from_slice(record).map_err(codec_err)?;
            if logged.seq <= watermark {
                continue;
            }
            replay_event(&mut g, &logged.event, &mut pending, &mut max_job)?;
            g.db.replay_bumps(&logged.bumps);
            g.db.resume_oids(logged.next_oid);
            last_seq = logged.seq;
            events_replayed += 1;
        }
        // 3. Recovered in-flight submissions become job records again,
        //    queued for re-staging (their sites are not registered yet;
        //    `register_site` and the job pump retry).
        let jobs_restaged = pending.len() as u64;
        for (job, (pid, bindings)) in pending {
            let def = g.catalog.process(pid)?;
            let record = jobs::JobRecord {
                output_class: g.catalog.class(def.output)?.name.clone(),
                dedup_key: super::query::dedup_key_for(def, &bindings),
                committed: None,
                commit_error: None,
                process: pid,
                bindings,
                cancelled: false,
            };
            g.jobs.records.insert(JobId(job), record);
            g.jobs.recovered.insert(JobId(job));
        }
        g.jobs.resume_ids(max_job);
        // 4. Arm the log for new events: version ticks journal from here
        //    on, and the writer opens at the valid prefix (dropping any
        //    torn tail).
        g.db.enable_version_journal();
        let wal =
            WalWriter::open(&wal_path, scan.valid_len, options.fsync_every).map_err(io_err)?;
        g.durability = Some(Durability {
            dir: dir.to_path_buf(),
            wal,
            seq: last_seq,
            since_snapshot: events_replayed,
            options,
        });
        g.restage_recovered_jobs();
        let stats = RecoveryStats {
            events_replayed,
            jobs_restaged,
            snapshot_seq: watermark,
            wal_dropped_bytes: scan.dropped_bytes,
            wal_corrupt: scan.corrupt,
        };
        publish_recovery_gauges(&stats);
        g.recovery = Some(stats);
        Ok(g)
    }

    /// What recovery did when this kernel opened; `None` for in-memory
    /// and snapshot-loaded kernels.
    pub fn recovery_stats(&self) -> Option<&RecoveryStats> {
        self.recovery.as_ref()
    }

    /// Is this kernel writing a log?
    pub(crate) fn wal_enabled(&self) -> bool {
        self.durability.is_some()
    }

    /// Append one event (no-op for non-durable kernels), draining the
    /// version-tick journal into its envelope and snapshotting when the
    /// cadence says so.
    pub(crate) fn wal_append(&mut self, event: Event) -> KernelResult<()> {
        self.wal_append_inner(event, true)
    }

    fn wal_append_inner(&mut self, event: Event, may_snapshot: bool) -> KernelResult<()> {
        if self.durability.is_none() {
            return Ok(());
        }
        let bumps = self.db.take_version_journal();
        let next_oid = self.db.next_oid();
        let d = self.durability.as_mut().expect("checked above");
        d.seq += 1;
        let logged = LoggedEvent {
            seq: d.seq,
            next_oid,
            bumps,
            event,
        };
        let payload = serde_json::to_vec(&logged).map_err(codec_err)?;
        d.wal.append(&payload).map_err(io_err)?;
        d.since_snapshot += 1;
        if may_snapshot
            && d.options.snapshot_every > 0
            && d.since_snapshot >= d.options.snapshot_every
        {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Capture the catalog high-water marks before a commit that may add
    /// tasks (and lazily-registered processes). `None` when not durable.
    pub(crate) fn wal_mark(&self) -> Option<WalMark> {
        self.durability.as_ref()?;
        Some(WalMark {
            task_high: self.catalog.tasks.keys().next_back().copied(),
            process_high: self.catalog.processes.keys().next_back().copied(),
        })
    }

    /// Log everything the catalog gained past `mark`: new processes as
    /// `DefineProcess`, new tasks plus their (deduplicated) output
    /// objects as one `TaskCommit`. Failed commits never reach here, and
    /// compensated compound steps were removed from the catalog before
    /// this runs — only surviving history is logged.
    pub(crate) fn wal_commit_delta(&mut self, mark: Option<WalMark>) -> KernelResult<()> {
        let Some(mark) = mark else {
            return Ok(());
        };
        let new_procs: Vec<ProcessDef> = match mark.process_high {
            Some(high) => self
                .catalog
                .processes
                .range((Bound::Excluded(high), Bound::Unbounded))
                .map(|(_, d)| d.clone())
                .collect(),
            None => self.catalog.processes.values().cloned().collect(),
        };
        for def in new_procs {
            self.wal_append(Event::DefineProcess { def })?;
        }
        let new_tasks: Vec<Task> = match mark.task_high {
            Some(high) => self
                .catalog
                .tasks
                .range((Bound::Excluded(high), Bound::Unbounded))
                .map(|(_, t)| t.clone())
                .collect(),
            None => self.catalog.tasks.values().cloned().collect(),
        };
        if new_tasks.is_empty() {
            return Ok(());
        }
        // A compound umbrella re-lists its last step's outputs; dedup so
        // each object is materialized once on replay.
        let mut seen = BTreeSet::new();
        let mut objects = Vec::new();
        for task in &new_tasks {
            for out in &task.outputs {
                if !seen.insert(*out) {
                    continue;
                }
                let class = self.catalog.class_of_object(*out)?;
                let rel = self.catalog.class(class)?.relation_name();
                let tuple = self.db.get(&rel, out.0)?.clone();
                objects.push(NewObject {
                    rel,
                    class,
                    oid: out.raw(),
                    tuple,
                });
            }
        }
        self.wal_append(Event::TaskCommit {
            objects,
            tasks: new_tasks,
        })
    }

    /// Take a snapshot now and truncate the log. The sequence is
    /// crash-safe at every boundary: residual version ticks are flushed
    /// into the log first; the snapshot directory (store manifest with
    /// the log watermark, catalog, unresolved job submissions) is
    /// written completely before the `CURRENT` pointer flips to it in
    /// one atomic rename; and a crash after the flip but before the
    /// truncation just re-skips the already-folded events on reopen.
    pub fn checkpoint(&mut self) -> KernelResult<()> {
        if self.durability.is_none() {
            return Ok(());
        }
        // Ticks from failed operations must not sit in the journal across
        // the snapshot boundary: the snapshot's counters already include
        // them, so attaching them to a later event would double-apply on
        // replay. Flush them as their own event first.
        if self.db.version_journal_pending() {
            self.wal_append_inner(Event::VersionAdvance, false)?;
        }
        let catalog_json = serde_json::to_string(&self.catalog).map_err(codec_err)?;
        let jobs: Vec<JournaledJob> = self
            .jobs
            .unresolved_submissions()
            .into_iter()
            .map(|(job, process, bindings)| JournaledJob {
                job,
                process,
                bindings,
            })
            .collect();
        let jobs_json = serde_json::to_string(&jobs).map_err(codec_err)?;
        let d = self.durability.as_mut().expect("checked above");
        d.wal.sync().map_err(io_err)?;
        let snap_name = format!("snap-{}", d.seq);
        let snap_dir = d.dir.join(&snap_name);
        gaea_store::snapshot::save_with_wal_seq(&self.db, &snap_dir, d.seq)?;
        fs::write(snap_dir.join("catalog.json"), catalog_json).map_err(io_err)?;
        fs::write(snap_dir.join("jobs.json"), jobs_json).map_err(io_err)?;
        let tmp = d.dir.join("CURRENT.tmp");
        fs::write(&tmp, &snap_name).map_err(io_err)?;
        fs::rename(&tmp, d.dir.join("CURRENT")).map_err(io_err)?;
        // Fault-injection boundary: the snapshot is authoritative but the
        // log still holds its events.
        d.wal.crash_before_truncate();
        d.wal.truncate().map_err(io_err)?;
        d.since_snapshot = 0;
        let snap_seq = d.seq;
        // Superseded snapshots are garbage once CURRENT moved on.
        if let Ok(entries) = fs::read_dir(&d.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("snap-") && name != snap_name {
                    let _ = fs::remove_dir_all(entry.path());
                }
            }
        }
        // The truncation watermark moved: recovery-era stats that kept
        // reporting the *open-time* snapshot would be stale from here on,
        // so refresh the durable-state view (and its gauges) in place.
        // The torn-tail fields describe a log segment the truncation just
        // retired, so they reset alongside the watermark.
        let stats = self.recovery.get_or_insert_with(RecoveryStats::default);
        stats.snapshot_seq = snap_seq;
        stats.wal_dropped_bytes = 0;
        stats.wal_corrupt = false;
        publish_recovery_gauges(stats);
        Ok(())
    }

    /// Flush residual version ticks into the log and fsync it — the
    /// clean-shutdown tail, also called by `Drop`. After this, replay
    /// reconstructs the version counters *exactly* (not just up to the
    /// last logged event).
    pub fn flush_wal(&mut self) -> KernelResult<()> {
        if self.durability.is_none() {
            return Ok(());
        }
        if self.db.version_journal_pending() {
            self.wal_append_inner(Event::VersionAdvance, false)?;
        }
        let d = self.durability.as_mut().expect("checked above");
        d.wal.sync().map_err(io_err)
    }
}

impl Gaea {
    /// Consume the kernel with a **checked** clean shutdown: flush the
    /// residual version ticks and fsync the log, surfacing any error.
    ///
    /// `Drop` performs the same flush best-effort (an error there has no
    /// one to report to); operator-facing shutdown paths — the server's
    /// graceful stop in particular — must use `close` instead so an
    /// fsync failure reaches the operator and the process can exit
    /// nonzero rather than silently discarding the durable tail.
    pub fn close(mut self) -> KernelResult<()> {
        self.flush_wal()
        // Drop re-flushes; with the journal drained and the log synced
        // that is a no-op sync.
    }
}

impl Drop for Gaea {
    fn drop(&mut self) {
        // Best-effort clean-shutdown flush; a crash skips this and
        // recovery still lands on the last logged event.
        let _ = self.flush_wal();
    }
}

/// Apply one replayed event to the reconstructing kernel. Content goes
/// through the store's non-bumping replay entry points — the version
/// history is replayed separately from each envelope's tick journal.
fn replay_event(
    g: &mut Gaea,
    event: &Event,
    pending: &mut PendingJobs,
    max_job: &mut u64,
) -> KernelResult<()> {
    match event {
        Event::DefineClass { def } => {
            g.db.create_relation(&def.relation_name(), def.storage_schema())?;
            g.catalog.add_class(def.clone())?;
        }
        Event::DefineConcept { def } => g.catalog.add_concept(def.clone())?,
        Event::DefineProcess { def } => g.catalog.add_process(def.clone())?,
        Event::DefineExperiment { def } => g.catalog.add_experiment(def.clone())?,
        Event::CreateIndex { rel, attr } => {
            g.db.relation_mut(rel)?.create_index(attr)?;
        }
        Event::CreateGrid { rel, attr, cell } => {
            g.db.relation_mut(rel)?.create_grid(attr, *cell)?;
        }
        Event::RetuneGrid { rel, pos, cell } => {
            g.db.relation_mut(rel)?.retune_grid(*pos, *cell)?;
        }
        Event::InsertObject {
            rel,
            class,
            oid,
            tuple,
        } => {
            g.db.replay_insert(rel, Oid(*oid), tuple.clone())?;
            g.catalog.object_class.insert(ObjectId(Oid(*oid)), *class);
        }
        Event::UpdateObject { rel, oid, tuple } => {
            g.db.replay_update(rel, Oid(*oid), tuple.clone())?;
        }
        Event::DeleteObject { rel, oid } => {
            g.db.replay_delete(rel, Oid(*oid))?;
            g.catalog.object_class.remove(&ObjectId(Oid(*oid)));
        }
        Event::TaskCommit { objects, tasks } => {
            for obj in objects {
                g.db.replay_insert(&obj.rel, Oid(obj.oid), obj.tuple.clone())?;
                g.catalog
                    .object_class
                    .insert(ObjectId(Oid(obj.oid)), obj.class);
            }
            for task in tasks {
                g.catalog.add_task(task.clone());
            }
        }
        Event::JobSubmit {
            job,
            process,
            bindings,
        } => {
            pending.insert(*job, (*process, bindings.clone()));
            *max_job = (*max_job).max(*job);
        }
        Event::JobResolved { job } => {
            pending.remove(job);
            *max_job = (*max_job).max(*job);
        }
        Event::VersionAdvance => {}
    }
    Ok(())
}
