//! Cost-based access-path selection for class-extent scans.
//!
//! Every step-1 retrieval, planner marking count and bind-stage pool
//! walk ultimately scans one class extent under a conjunctive predicate.
//! This module is the optimizer between that predicate and the store:
//! it prices each indexable conjunct against the relation's maintained
//! [`gaea_store::TableStats`] (equality → rows/distinct, ranges →
//! min/max interpolation, spatial windows → grid-cell occupancy), drives
//! the scan from the cheapest candidate, and re-applies the *full*
//! compiled predicate to every candidate tuple — the driving path only
//! narrows, so indexed and heap scans return identical answers by
//! construction. The chosen path is surfaced as a
//! [`crate::query::ScanPlan`] on the outcome (EXPLAIN output).
//!
//! Indexes are created on demand: once a class extent crosses
//! [`AUTO_INDEX_THRESHOLD`] rows, the predicate-hot attributes of an
//! incoming query get ordered indexes (spatial extents get a uniform
//! grid, tuned by `gaea_raster::suggest_cell_size`) — or explicitly, via
//! the `DEFINE INDEX attr ON class` DDL.

use super::durability::Event;
use super::Gaea;
use crate::error::KernelResult;
use crate::query::{AccessPath, Query, ScanPlan};
use crate::schema::ClassDef;
use gaea_adt::{GeoBox, Value};
use gaea_store::{Oid, Predicate, Relation};

/// Extents smaller than this stay full-scan even for predicate-hot
/// attributes: below it a heap walk beats index maintenance, and the
/// seed suite's small fixtures keep their storage-order answers.
pub const AUTO_INDEX_THRESHOLD: u64 = 256;

/// How many extents the auto-grid samples to tune its cell size.
const GRID_SAMPLE: usize = 512;

/// One scan the optimizer planned: the EXPLAIN record plus the driving
/// candidate set (`None` = walk the heap).
pub(crate) struct PlannedScan {
    /// The chosen path and its cost estimate.
    pub plan: ScanPlan,
    /// Driving candidate OIDs. May over-approximate; the caller must
    /// re-filter every candidate with the full predicate.
    pub oids: Option<Vec<Oid>>,
}

/// A priced driving-path candidate, cheap to enumerate (no OID lists
/// are materialized until one wins).
enum Candidate {
    Eq {
        pos: usize,
        attr: String,
        value: Value,
    },
    Range {
        pos: usize,
        attr: String,
        lo: Option<Value>,
        hi: Option<Value>,
    },
    Grid {
        pos: usize,
        attr: String,
        window: GeoBox,
    },
}

impl Candidate {
    fn cost(&self, rel: &Relation) -> u64 {
        match self {
            Candidate::Eq { pos, .. } => rel.stats().eq_estimate(*pos),
            Candidate::Range { pos, lo, hi, .. } => {
                rel.stats().range_estimate(*pos, lo.as_ref(), hi.as_ref())
            }
            Candidate::Grid { pos, window, .. } => rel
                .grid_for(*pos)
                .map_or(rel.stats().rows, |g| g.probe_estimate(window) as u64),
        }
    }

    fn path(&self) -> AccessPath {
        match self {
            Candidate::Eq { attr, .. } => AccessPath::IndexEq { attr: attr.clone() },
            Candidate::Range { attr, .. } => AccessPath::IndexRange { attr: attr.clone() },
            Candidate::Grid { attr, .. } => AccessPath::GridProbe { attr: attr.clone() },
        }
    }

    fn materialize(&self, rel: &Relation) -> Vec<Oid> {
        match self {
            Candidate::Eq { pos, value, .. } => rel
                .index_for(*pos)
                .map(|idx| idx.lookup(value).to_vec())
                .unwrap_or_default(),
            Candidate::Range { pos, lo, hi, .. } => rel
                .index_for(*pos)
                .map(|idx| idx.range(lo.as_ref(), hi.as_ref()))
                .unwrap_or_default(),
            Candidate::Grid { pos, window, .. } => rel
                .grid_for(*pos)
                .map(|g| g.probe(window))
                .unwrap_or_default(),
        }
    }
}

/// Enumerate the indexable driving-path candidates of a conjunctive
/// predicate against one relation. Only conjuncts whose column carries
/// an index (or grid) qualify; everything else stays residual.
fn candidates(rel: &Relation, pred: &Predicate) -> Vec<Candidate> {
    let mut out = Vec::new();
    for conjunct in pred.conjuncts() {
        match conjunct {
            Predicate::Eq(col, v) => {
                if let Ok(pos) = rel.schema().position(col) {
                    if rel.index_for(pos).is_some() {
                        out.push(Candidate::Eq {
                            pos,
                            attr: col.clone(),
                            value: v.clone(),
                        });
                    }
                }
            }
            // Inclusive index ranges over-approximate the strict Lt/Gt
            // (and may sweep in Null keys, which sort first); the
            // residual re-check makes the answer exact.
            Predicate::Lt(col, v) => {
                if let Ok(pos) = rel.schema().position(col) {
                    if rel.index_for(pos).is_some() {
                        out.push(Candidate::Range {
                            pos,
                            attr: col.clone(),
                            lo: None,
                            hi: Some(v.clone()),
                        });
                    }
                }
            }
            Predicate::Gt(col, v) => {
                if let Ok(pos) = rel.schema().position(col) {
                    if rel.index_for(pos).is_some() {
                        out.push(Candidate::Range {
                            pos,
                            attr: col.clone(),
                            lo: Some(v.clone()),
                            hi: None,
                        });
                    }
                }
            }
            Predicate::TimeIn(col, range) => {
                if let Ok(pos) = rel.schema().position(col) {
                    if rel.index_for(pos).is_some() {
                        out.push(Candidate::Range {
                            pos,
                            attr: col.clone(),
                            lo: Some(Value::AbsTime(range.start)),
                            hi: Some(Value::AbsTime(range.end)),
                        });
                    }
                }
            }
            Predicate::BoxOverlaps(col, window) => {
                if let Ok(pos) = rel.schema().position(col) {
                    if rel.grid_for(pos).is_some() {
                        out.push(Candidate::Grid {
                            pos,
                            attr: col.clone(),
                            window: *window,
                        });
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Plan one relation scan: price every indexable conjunct, drive from
/// the cheapest, fall back to the heap. Exposed on the relation level so
/// retrieval, marking counts and bind pools all share it.
pub(crate) fn plan_relation_scan(rel: &Relation, class: &str, pred: &Predicate) -> PlannedScan {
    let rows = rel.stats().rows;
    let best = candidates(rel, pred)
        .into_iter()
        .map(|c| (c.cost(rel), c))
        .min_by_key(|(cost, _)| *cost);
    match best {
        Some((cost, cand)) if cost < rows => PlannedScan {
            plan: ScanPlan {
                class: class.to_string(),
                path: cand.path(),
                estimated_rows: cost,
            },
            oids: Some(cand.materialize(rel)),
        },
        _ => PlannedScan {
            plan: ScanPlan {
                class: class.to_string(),
                path: AccessPath::FullScan,
                estimated_rows: rows,
            },
            oids: None,
        },
    }
}

/// Plan and run one class-extent scan against any database — the live
/// store or a [`gaea_store::PinnedStore`] view — returning matching OIDs
/// in ascending order plus the EXPLAIN record. Indexed paths re-filter
/// every candidate with the full compiled predicate, so the answer set
/// is identical to a heap scan's.
pub(crate) fn scan_class_in(
    db: &gaea_store::Database,
    def: &ClassDef,
    pred: &Predicate,
) -> KernelResult<(Vec<Oid>, ScanPlan)> {
    let rel = db.relation(&def.relation_name())?;
    let planned = plan_relation_scan(rel, &def.name, pred);
    let oids = match planned.oids {
        Some(cands) => {
            let compiled = pred.compile(rel.schema())?;
            let mut out: Vec<Oid> = cands
                .into_iter()
                .filter(|oid| rel.get(*oid).map(|t| compiled.matches(t)).unwrap_or(false))
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        }
        None => {
            let mut out = rel.scan_oids(pred)?;
            // Heap order is storage order; normalize to OID order so
            // every path answers identically.
            out.sort_unstable();
            out
        }
    };
    Ok((oids, planned.plan))
}

impl Gaea {
    /// Plan and run one class-extent scan over the live store. See
    /// [`scan_class_in`].
    pub(crate) fn scan_class(
        &self,
        def: &ClassDef,
        pred: &Predicate,
    ) -> KernelResult<(Vec<Oid>, ScanPlan)> {
        scan_class_in(&self.db, def, pred)
    }

    /// Count a class extent under a predicate through the planned access
    /// path — the cardinality primitive behind the planner's marking
    /// (no tuples are materialized or cloned).
    pub(crate) fn count_class(&self, def: &ClassDef, pred: &Predicate) -> KernelResult<u64> {
        let rel = self.db.relation(&def.relation_name())?;
        let planned = plan_relation_scan(rel, &def.name, pred);
        match planned.oids {
            Some(cands) => {
                let compiled = pred.compile(rel.schema())?;
                let mut seen = cands;
                seen.sort_unstable();
                seen.dedup();
                Ok(seen
                    .into_iter()
                    .filter(|oid| rel.get(*oid).map(|t| compiled.matches(t)).unwrap_or(false))
                    .count() as u64)
            }
            None => Ok(rel.count(pred)?),
        }
    }

    /// Auto-create access paths for a query's predicate-hot attributes
    /// on every large-enough target class: ordered indexes for
    /// equality/range/temporal conjuncts and `ORDER BY`, a uniform grid
    /// for the spatial extent. Small extents are left alone (see
    /// [`AUTO_INDEX_THRESHOLD`]); explicit `DEFINE INDEX` ignores the
    /// threshold.
    pub(crate) fn ensure_access_paths(
        &mut self,
        classes: &[String],
        q: &Query,
    ) -> KernelResult<()> {
        for name in classes {
            let def = self.catalog.class_by_name(name)?.clone();
            let rel_name = def.relation_name();
            self.retune_stale_grids(&def)?;
            if self.db.relation(&rel_name)?.stats().rows < AUTO_INDEX_THRESHOLD {
                continue;
            }
            let mut hot: Vec<String> = q.attr_preds.iter().map(|p| p.attr.clone()).collect();
            if q.time.is_some() && def.has_temporal {
                hot.push(crate::object::TEMPORAL_ATTR.into());
            }
            if let Some(ob) = &q.order_by {
                hot.push(ob.attr.clone());
            }
            for attr in hot {
                self.ensure_index(&def, &attr)?;
            }
            if q.spatial.is_some() && def.has_spatial {
                self.ensure_grid(&def, crate::object::SPATIAL_ATTR)?;
            }
        }
        Ok(())
    }

    /// Re-tune any grid whose cell size has gone stale. A grid created
    /// by `DEFINE INDEX` on a then-empty extent keeps the fallback cell;
    /// once real extents arrive they can dwarf it, overflow the
    /// per-insert cell cap, and pile up on the oversize list — where
    /// every probe degenerates to a full scan. When most of a grid's
    /// entries are oversize and the extents suggest a meaningfully
    /// different cell, rebuild it at the data's scale.
    pub(crate) fn retune_stale_grids(&mut self, def: &ClassDef) -> KernelResult<()> {
        let rel = self.db.relation(&def.relation_name())?;
        let rows = rel.stats().rows;
        if rows == 0 {
            return Ok(());
        }
        let stale: Vec<(usize, f64)> = rel
            .grids()
            .filter(|g| g.oversize_len() as u64 * 2 > rows)
            .map(|g| (g.column, g.cell))
            .collect();
        for (pos, old_cell) in stale {
            let rel = self.db.relation(&def.relation_name())?;
            let sample: Vec<GeoBox> = rel
                .iter()
                .take(GRID_SAMPLE)
                .filter_map(|(_, t)| t.get(pos).as_geobox())
                .collect();
            let cell = gaea_raster::suggest_cell_size(&sample);
            // Genuinely-oversize data re-suggests the same cell; only
            // rebuild when the scale actually moved, so this converges.
            if cell > old_cell * 2.0 || cell < old_cell * 0.5 {
                self.db
                    .relation_mut(&def.relation_name())?
                    .retune_grid(pos, cell)?;
                self.wal_append(Event::RetuneGrid {
                    rel: def.relation_name(),
                    pos,
                    cell,
                })?;
            }
        }
        Ok(())
    }

    /// Idempotently create an ordered index on one class attribute.
    pub(crate) fn ensure_index(&mut self, def: &ClassDef, attr: &str) -> KernelResult<bool> {
        let rel = self.db.relation_mut(&def.relation_name())?;
        let pos = rel.schema().position(attr)?;
        if rel.index_for(pos).is_some() {
            return Ok(false);
        }
        rel.create_index(attr)?;
        // Access paths are physical state a snapshot carries but the log
        // must re-create — queries create them, so queries journal too.
        self.wal_append(Event::CreateIndex {
            rel: def.relation_name(),
            attr: attr.to_string(),
        })?;
        Ok(true)
    }

    /// Idempotently create a spatial grid on one GeoBox attribute, cell
    /// size tuned to a sample of the stored extents.
    pub(crate) fn ensure_grid(&mut self, def: &ClassDef, attr: &str) -> KernelResult<bool> {
        let rel = self.db.relation(&def.relation_name())?;
        let pos = rel.schema().position(attr)?;
        if rel.grid_for(pos).is_some() {
            return Ok(false);
        }
        let sample: Vec<GeoBox> = rel
            .iter()
            .take(GRID_SAMPLE)
            .filter_map(|(_, t)| t.get(pos).as_geobox())
            .collect();
        let cell = gaea_raster::suggest_cell_size(&sample);
        self.db
            .relation_mut(&def.relation_name())?
            .create_grid(attr, cell)?;
        // The journal records the cell chosen from the live sample, so
        // replay rebuilds the identical grid instead of re-sampling.
        self.wal_append(Event::CreateGrid {
            rel: def.relation_name(),
            attr: attr.to_string(),
            cell,
        })?;
        Ok(true)
    }
}
